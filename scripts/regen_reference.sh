#!/bin/sh
# Regenerates the committed Paper-scale sweep transcript that CI compares
# fresh runs against. Run from the repository root after any intentional
# change to experiment output; stdout only — cargo's progress chatter goes
# to stderr and must never end up in the reference.
set -eu
cargo run --release -p fac-bench --bin all_experiments -- "$@" \
    > bench_output_reference.txt
echo "wrote bench_output_reference.txt" >&2
