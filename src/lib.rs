#![warn(missing_docs)]

//! # fac — fast address calculation, end to end
//!
//! Umbrella crate for the reproduction of Austin, Pnevmatikatos & Sohi,
//! **"Streamlining Data Cache Access with Fast Address Calculation"**
//! (ISCA 1995). It re-exports the workspace crates under one roof so
//! examples and downstream users need a single dependency:
//!
//! * [`core`] — the prediction circuit itself ([`fac_core`]);
//! * [`isa`] — the extended-MIPS instruction set ([`fac_isa`]);
//! * [`mem`] — caches, memory, store buffer, TLB ([`fac_mem`]);
//! * [`asm`] — program builder + linker with the §4 alignment support
//!   ([`fac_asm`]);
//! * [`sim`] — the 4-way superscalar timing simulator ([`fac_sim`]);
//! * [`workloads`] — the 19 benchmark kernels ([`fac_workloads`]).
//!
//! ```
//! use fac::core::{AddrFields, Offset, Predictor, PredictorConfig};
//!
//! let p = Predictor::new(
//!     AddrFields::for_direct_mapped(16 * 1024, 32),
//!     PredictorConfig::default(),
//! );
//! assert!(p.predict(0x7fff_5b84, Offset::Const(0x66)).is_correct());
//! ```

pub use fac_asm as asm;
pub use fac_core as core;
pub use fac_isa as isa;
pub use fac_mem as mem;
pub use fac_sim as sim;
pub use fac_workloads as workloads;
