//! The shim tests itself with its own macros: generation stays in range,
//! `prop_oneof!` unions clone, helper fns can early-return via `?`, and a
//! failing property actually fails the test.

use proptest::prelude::*;

fn check_small(x: u32) -> Result<(), TestCaseError> {
    prop_assert!(x < 100, "helper saw {}", x);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tuples_ranges_vecs_and_any(
        (a, b) in (0u32..100, 10i16..=20),
        v in proptest::collection::vec(any::<u8>(), 1..8),
        flag in any::<bool>(),
        wide in any::<i32>(),
    ) {
        prop_assert!(a < 100);
        prop_assert!((10..=20).contains(&b));
        prop_assert!(!v.is_empty() && v.len() < 8);
        prop_assert_eq!(flag, flag);
        prop_assert_eq!(wide, wide, "identity {}", wide);
        check_small(a)?;
    }

    #[test]
    fn oneof_unions_are_cloneable(x in arb_small().clone(), y in arb_small()) {
        prop_assert!([1u8, 2, 5, 6].contains(&x));
        prop_assert!([1u8, 2, 5, 6].contains(&y));
        prop_assert_ne!(0u8, 1u8);
    }

    #[test]
    fn mapped_strategies(r in (0u8..32).prop_map(|v| v * 2)) {
        prop_assert!(r % 2 == 0 && r < 64);
    }
}

fn arb_small() -> proptest::strategy::Union<u8> {
    prop_oneof![Just(1u8), Just(2u8), 5u8..7]
}

// A property that must fail: defined *without* `#[test]` so we can invoke it
// under `catch_unwind` and assert it panics with the case report.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    fn deliberately_failing(x in 0u32..10) {
        prop_assert!(x > 100, "x was {}", x);
    }
}

#[test]
fn failing_property_panics_with_report() {
    let err = std::panic::catch_unwind(deliberately_failing)
        .expect_err("property should have failed");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deliberately_failing"), "unexpected panic payload: {msg}");
}

#[test]
fn generation_is_deterministic_per_name() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;
    let strat = (0u32..1000, any::<i16>());
    let mut a = TestRng::for_test("stable");
    let mut b = TestRng::for_test("stable");
    for _ in 0..32 {
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }
}
