//! Value-generation strategies.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Something that can produce random values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite doubles spanning a wide dynamic range, never NaN/inf.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mantissa * 2f64.powi(exp)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Object-safe strategy used inside [`Union`] so `prop_oneof!` can mix
/// heterogeneous strategy types that share a `Value`.
pub trait DynStrategy {
    type Value;

    fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S> DynStrategy for S
where
    S: Strategy + 'static,
{
    type Value = S::Value;

    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Result of `prop_oneof!`: picks one arm uniformly per generated value.
///
/// Arms are reference-counted so the union is `Clone` (tests clone the
/// result of `prop_oneof!`) without demanding `Clone` of every arm — arms
/// are often opaque `impl Strategy` returns.
pub struct Union<V> {
    arms: Vec<std::rc::Rc<dyn DynStrategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<std::rc::Rc<dyn DynStrategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Wraps one `prop_oneof!` arm.
    pub fn arm<S>(strategy: S) -> std::rc::Rc<dyn DynStrategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        std::rc::Rc::new(strategy)
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Union<V> {
        Union { arms: self.arms.clone() }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len());
        self.arms[pick].dyn_new_value(rng)
    }
}
