//! Deterministic RNG and the error type property bodies return.

use core::fmt;

/// Why a single generated case did not pass.
///
/// `Fail` aborts the whole property; `Reject` discards the case (this shim
/// simply moves on to the next one without counting rejections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// splitmix64 stream, seeded from the test's name so every run of a given
/// test binary explores the same inputs (reproducibility by construction).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn name_seeding_is_stable() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
