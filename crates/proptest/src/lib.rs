//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! subset of proptest's API its test-suite uses: `Strategy` + `prop_map`,
//! `Just`, integer range strategies, tuple strategies, `any::<T>()`,
//! `prop_oneof!`, `proptest::collection::vec`, `ProptestConfig::with_cases`,
//! the `proptest!` macro and the `prop_assert*` family.
//!
//! Semantics match real proptest where it matters for these tests: each
//! `#[test]` fn runs its body for `cases` randomly generated inputs and
//! reports the failing input. Two deliberate simplifications:
//!
//! * **No shrinking.** A failure reports the raw generated case.
//! * **Deterministic seeding.** The RNG is seeded from the test's name, so
//!   runs are reproducible by construction (like setting `PROPTEST_RNG_SEED`).
//!   Set `PROPTEST_CASES` to override the case count at runtime.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds for a generated collection's length.
    pub trait SizeRange: Clone {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below(hi - lo + 1)
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test usually needs, mirroring
    //! `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::TestCaseError;

/// Runner configuration. Only `cases` is honoured by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` overrides the configured value.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Declares property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by any number of test fns of
/// the form `fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.effective_cases() {
                $(let $pat = $crate::Strategy::new_value(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Union of strategies: picks one arm uniformly at random per case.
/// (Real proptest supports weighted arms; this shim is unweighted, which is
/// all the workspace uses.)
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Union::arm($arm)),+])
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l == __r,
            "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)*), __l, __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            __l != __r,
            "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)*), __l, __r
        );
    }};
}
