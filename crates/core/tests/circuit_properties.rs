//! Property tests for the fast-address-calculation circuit.
//!
//! These check the invariants the paper's design rests on:
//!
//! * **soundness** — if no failure signal fires, the speculatively accessed
//!   address equals the true effective address (for every geometry and
//!   configuration);
//! * **genuineness of the carry signals** — `overflow`/`gen_carry` almost
//!   always indicate a genuinely wrong address (the hardware replays either
//!   way, but the signals should not be vacuous);
//! * **OR ≈ XOR** (paper footnote 1) — the two carry-free compositions only
//!   differ when the prediction fails.

use fac_core::{AddrFields, IndexCompose, Offset, Predictor, PredictorConfig};
use proptest::prelude::*;

fn arb_fields() -> impl Strategy<Value = AddrFields> {
    // Block offset 2..=6 bits (4..64-byte blocks), index 4..=12 bits.
    (2u32..=6, 4u32..=12).prop_map(|(b, i)| AddrFields::new(b, i))
}

fn arb_offset() -> impl Strategy<Value = Offset> {
    prop_oneof![
        any::<i16>().prop_map(Offset::Const),
        // Small constants dominate real programs; bias toward them too.
        (-64i16..=64).prop_map(Offset::Const),
        any::<u32>().prop_map(Offset::Reg),
        (0u32..4096).prop_map(Offset::Reg),
    ]
}

fn arb_config() -> impl Strategy<Value = PredictorConfig> {
    (any::<bool>(), any::<bool>()).prop_map(|(full_tag_add, xor)| PredictorConfig {
        full_tag_add,
        compose: if xor { IndexCompose::Xor } else { IndexCompose::Or },
        ..PredictorConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// Soundness: no failure signal ⇒ the speculative address is the true
    /// effective address. This is the invariant that makes the speculative
    /// cache access safe to consume.
    #[test]
    fn no_signal_implies_correct_address(
        fields in arb_fields(),
        config in arb_config(),
        base in any::<u32>(),
        offset in arb_offset(),
    ) {
        let p = Predictor::new(fields, config);
        let pr = p.predict(base, offset);
        if pr.is_correct() {
            prop_assert_eq!(
                pr.predicted, pr.actual,
                "fields {} cfg {:?} base {:#x} ofs {:?}", fields, config, base, offset
            );
        }
    }

    /// The pure-carry signals are genuine for non-negative offsets: when
    /// only `overflow`/`gen_carry` fire (no conservative signal), the
    /// predicted address really is wrong, except for the known wrap-around
    /// corner where the generated carry re-enters through the modulo.
    #[test]
    fn carry_signals_rarely_spurious(
        fields in arb_fields(),
        base in any::<u32>(),
        ofs in 0i16..=i16::MAX,
    ) {
        let p = Predictor::new(fields, PredictorConfig::default());
        let pr = p.predict(base, Offset::Const(ofs));
        let s = pr.signals;
        if (s.overflow || s.gen_carry) && !s.large_neg_const && !s.neg_index_reg {
            // A spurious signal requires the index overlap plus carry-in to
            // sum to exactly 2^index_bits (wrap). Anything else must be a
            // genuine mismatch.
            let idx_bits = fields.index_bits();
            let overlap = fields.index(base) & fields.index(ofs as i32 as u32);
            let wrap = overlap != 0
                && (fields.index(base) as u64 + fields.index(ofs as i32 as u32) as u64
                    + s.overflow as u64)
                    >> idx_bits
                    != 0;
            if !wrap {
                prop_assert_ne!(pr.predicted, pr.actual);
            }
        }
    }

    /// Footnote 1: OR and XOR composition agree whenever prediction
    /// succeeds (they only differ when the access replays anyway).
    #[test]
    fn or_equals_xor_on_success(
        fields in arb_fields(),
        base in any::<u32>(),
        offset in arb_offset(),
    ) {
        let or_p = Predictor::new(fields, PredictorConfig::default());
        let xor_p = Predictor::new(
            fields,
            PredictorConfig { compose: IndexCompose::Xor, ..PredictorConfig::default() },
        );
        let a = or_p.predict(base, offset);
        let b = xor_p.predict(base, offset);
        prop_assert_eq!(a.signals, b.signals);
        if a.is_correct() {
            prop_assert_eq!(a.predicted, b.predicted);
        }
    }

    /// Negative register offsets always fail; zero offsets always succeed.
    #[test]
    fn boundary_offsets(fields in arb_fields(), base in any::<u32>(), v in any::<u32>()) {
        let p = Predictor::new(fields, PredictorConfig::default());
        prop_assert!(p.predict(base, Offset::Const(0)).is_correct());
        if (v as i32) < 0 {
            prop_assert!(!p.predict(base, Offset::Reg(v)).is_correct());
        }
    }

    /// Sufficient alignment guarantees success: if the base is aligned to
    /// 2^(B+I) (so its index and block-offset bits are zero) and the offset
    /// is a non-negative constant smaller than 2^(B+I), carry-free addition
    /// always succeeds. This is the property the software support of §4
    /// engineers for the global pointer.
    #[test]
    fn aligned_base_with_small_offset_succeeds(
        fields in arb_fields(),
        base_hi in any::<u32>(),
        ofs in 0i16..=i16::MAX,
    ) {
        let span = fields.block_offset_bits() + fields.index_bits();
        let base = if span >= 32 { 0 } else { base_hi << span };
        let p = Predictor::new(fields, PredictorConfig::default());
        if span < 32 && (ofs as u32) < (1u32 << span.min(31)) {
            let pr = p.predict(base, Offset::Const(ofs));
            prop_assert!(pr.is_correct(), "{}", pr.signals);
            prop_assert_eq!(pr.predicted, base + ofs as u32);
        }
    }

    /// Same-block accesses always predict correctly, regardless of sign:
    /// if base and base+offset share a cache block, every signal stays low.
    #[test]
    fn same_block_always_succeeds(
        fields in arb_fields(),
        base in any::<u32>(),
        ofs in -64i16..=64,
    ) {
        let p = Predictor::new(fields, PredictorConfig::default());
        let actual = base.wrapping_add(ofs as i32 as u32);
        let block = |a: u32| a >> fields.block_offset_bits();
        if block(actual) == block(base) {
            let pr = p.predict(base, Offset::Const(ofs));
            prop_assert!(pr.is_correct(), "{} base {:#x} ofs {}", pr.signals, base, ofs);
        }
    }

    /// Field-boundary offsets: displacements of exactly ± one block and
    /// ± one index-field span (`1 << index_bits` blocks' worth of bytes,
    /// clamped into i16 range) are the values that flip exactly one field
    /// at a time. For every one of them:
    ///
    /// * split/compose round-trips both the base and the true effective
    ///   address through `AddrFields` exactly;
    /// * the verification path (`Prediction::actual`) is the full-adder
    ///   sum, whatever combination of failure signals fired;
    /// * the signals stay sound — `is_correct()` (no signal) implies
    ///   `predicted == actual`, so the only escape from a wrong
    ///   speculation is a raised signal. (The converse does not hold:
    ///   the signals are conservative and may fire on a coincidentally
    ///   correct address, which merely costs a replay.)
    #[test]
    fn field_boundary_offsets_round_trip_and_agree_with_the_full_adder(
        fields in arb_fields(),
        config in arb_config(),
        base in any::<u32>(),
        negate in any::<bool>(),
        span_not_block in any::<bool>(),
    ) {
        let block = 1i32 << fields.block_offset_bits();
        let span = 1i64 << (fields.block_offset_bits() + fields.index_bits());
        let magnitude = if span_not_block {
            span.clamp(i16::MIN as i64, i16::MAX as i64) as i32
        } else {
            block
        };
        let ofs = (if negate { -magnitude } else { magnitude })
            .clamp(i16::MIN as i32, i16::MAX as i32) as i16;

        // Split/compose is exact on both ends of the access.
        let actual = base.wrapping_add(ofs as i32 as u32);
        for addr in [base, actual] {
            prop_assert_eq!(
                fields.compose(fields.tag(addr), fields.index(addr), fields.block_offset(addr)),
                addr,
                "fields {} do not round-trip {:#x}", fields, addr
            );
        }

        let p = Predictor::new(fields, config);
        let pr = p.predict(base, Offset::Const(ofs));
        // The verification circuit is a full adder: its result is the
        // architectural effective address no matter what the prediction
        // circuit signalled.
        prop_assert_eq!(
            pr.actual, actual,
            "verification adder wrong: fields {} base {:#x} ofs {}", fields, base, ofs
        );
        // Soundness under every signal combination this corner generates:
        // silence means the speculative address is the architectural one.
        if pr.is_correct() {
            prop_assert_eq!(
                pr.predicted, pr.actual,
                "no signal but wrong address: fields {} base {:#x} ofs {}", fields, base, ofs
            );
        }
    }

    /// The same boundary offsets through the *register* lane: an index
    /// register holding exactly ± a block or ± a set span. The negative
    /// cases must always raise a signal (the OR wipes the borrow), the
    /// verification adder must stay exact either way.
    #[test]
    fn field_boundary_register_offsets(
        fields in arb_fields(),
        base in any::<u32>(),
        negate in any::<bool>(),
        span_not_block in any::<bool>(),
    ) {
        let magnitude: u32 = if span_not_block {
            1u32 << (fields.block_offset_bits() + fields.index_bits()).min(31)
        } else {
            1u32 << fields.block_offset_bits()
        };
        let v = if negate { magnitude.wrapping_neg() } else { magnitude };
        let p = Predictor::new(fields, PredictorConfig::default());
        let pr = p.predict(base, Offset::Reg(v));
        prop_assert_eq!(pr.actual, base.wrapping_add(v));
        if pr.is_correct() {
            prop_assert_eq!(pr.predicted, pr.actual, "no signal but wrong address");
        }
        if negate {
            prop_assert!(!pr.is_correct(), "negative register offset must replay");
            prop_assert!(pr.signals.neg_index_reg, "{}", pr.signals);
        }
    }
}
