//! Load target buffer — the related-work comparator (§6, Golden & Mudge).
//!
//! Where fast address calculation predicts from the *operands* of the
//! effective-address computation, an LTB predicts from the *PC* of the load:
//! a table indexed by instruction address remembers the last effective
//! address (plus its stride) and guesses the next one. It needs a real
//! table (the cost the paper argues against) and is less accurate, because
//! it only works for loads whose address stream is stable or strided.

/// One LTB entry: last address and last stride for a load PC.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    last_addr: u32,
    stride: i32,
    /// 2-bit confidence; predictions are made at ≥ 2.
    confidence: u8,
}

/// Statistics for an LTB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LtbStats {
    /// Lookups that produced a prediction.
    pub predictions: u64,
    /// Predictions that matched the true effective address.
    pub correct: u64,
    /// Lookups that declined to predict (cold, low confidence).
    pub no_prediction: u64,
}

impl LtbStats {
    /// Accuracy over issued predictions.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// A direct-mapped load target buffer with stride prediction and 2-bit
/// confidence counters.
///
/// ```
/// use fac_core::Ltb;
///
/// let mut ltb = Ltb::new(64);
/// // A strided load: the stride locks in once it repeats with confidence.
/// assert_eq!(ltb.predict(0x400100), None);
/// for i in 0..4 {
///     ltb.update(0x400100, 0x1000 + i * 4, None);
/// }
/// assert_eq!(ltb.predict(0x400100), Some(0x1010));
/// ```
#[derive(Debug, Clone)]
pub struct Ltb {
    entries: Vec<Entry>,
    stats: LtbStats,
}

impl Ltb {
    /// Creates an empty LTB with `entries` slots (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: u32) -> Ltb {
        assert!(entries.is_power_of_two(), "LTB size must be a power of two");
        Ltb { entries: vec![Entry::default(); entries as usize], stats: LtbStats::default() }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &LtbStats {
        &self.stats
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Predicted effective address for the load at `pc`, if the entry is
    /// confident. Records prediction statistics.
    pub fn predict(&mut self, pc: u32) -> Option<u32> {
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == pc && e.confidence >= 2 {
            self.stats.predictions += 1;
            Some(e.last_addr.wrapping_add(e.stride as u32))
        } else {
            self.stats.no_prediction += 1;
            None
        }
    }

    /// Trains the entry with the resolved effective address. `issued` is
    /// the prediction [`Ltb::predict`] returned for this access (if it was
    /// consulted), so accuracy counts only real predictions.
    pub fn update(&mut self, pc: u32, actual: u32, issued: Option<u32>) {
        if issued == Some(actual) {
            self.stats.correct += 1;
        }
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != pc {
            *e = Entry { valid: true, tag: pc, last_addr: actual, stride: 0, confidence: 0 };
            return;
        }
        let new_stride = actual.wrapping_sub(e.last_addr) as i32;
        if new_stride == e.stride {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = new_stride;
        }
        e.last_addr = actual;
    }

    /// Serializes the full table state (entries and statistics) for a
    /// machine checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        w.len_of(self.entries.len());
        for e in &self.entries {
            w.bool(e.valid);
            w.u32(e.tag);
            w.u32(e.last_addr);
            w.i32(e.stride);
            w.u8(e.confidence);
        }
        w.u64(self.stats.predictions);
        w.u64(self.stats.correct);
        w.u64(self.stats.no_prediction);
    }

    /// Restores [`Ltb::save_state`] into a table of the same geometry.
    ///
    /// # Errors
    ///
    /// [`crate::snap::SnapError`] when the entry count differs from this
    /// table's or the buffer is corrupt.
    pub fn load_state(&mut self, r: &mut crate::snap::SnapReader<'_>) -> Result<(), crate::snap::SnapError> {
        let n = r.len_of(self.entries.len(), "ltb entries")?;
        if n != self.entries.len() {
            return Err(crate::snap::SnapError::new(format!(
                "ltb geometry mismatch: snapshot has {n} entries, table has {}",
                self.entries.len()
            )));
        }
        for e in &mut self.entries {
            e.valid = r.bool("ltb entry valid")?;
            e.tag = r.u32("ltb entry tag")?;
            e.last_addr = r.u32("ltb entry last_addr")?;
            e.stride = r.i32("ltb entry stride")?;
            e.confidence = r.u8("ltb entry confidence")?;
        }
        self.stats.predictions = r.u64("ltb stats predictions")?;
        self.stats.correct = r.u64("ltb stats correct")?;
        self.stats.no_prediction = r.u64("ltb stats no_prediction")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_declines() {
        let mut ltb = Ltb::new(16);
        assert_eq!(ltb.predict(0x1000), None);
        assert_eq!(ltb.stats().no_prediction, 1);
    }

    #[test]
    fn constant_address_locks_quickly() {
        let mut ltb = Ltb::new(16);
        for _ in 0..3 {
            ltb.update(0x1000, 0x2000, None);
        }
        assert_eq!(ltb.predict(0x1000), Some(0x2000));
    }

    #[test]
    fn stride_prediction() {
        let mut ltb = Ltb::new(16);
        for i in 0..4u32 {
            ltb.update(0x1000, 0x8000 + i * 16, None);
        }
        assert_eq!(ltb.predict(0x1000), Some(0x8040));
    }

    #[test]
    fn irregular_stream_stays_quiet() {
        let mut ltb = Ltb::new(16);
        for &a in &[0x1000u32, 0x5230, 0x2914, 0x8fc4, 0x1204] {
            ltb.update(0x1000, a, None);
        }
        assert_eq!(ltb.predict(0x1000), None, "confidence must stay low");
    }

    #[test]
    fn aliasing_replaces() {
        let mut ltb = Ltb::new(4);
        for _ in 0..3 {
            ltb.update(0x1000, 0x2000, None);
        }
        // 0x1010 maps to the same slot (4 entries).
        ltb.update(0x1010, 0x3000, None);
        assert_eq!(ltb.predict(0x1000), None, "evicted by the alias");
    }

    #[test]
    fn accuracy_accounting() {
        let mut ltb = Ltb::new(16);
        for i in 0..10u32 {
            let issued = ltb.predict(0x1000);
            ltb.update(0x1000, 0x2000 + i * 4, issued);
        }
        let s = ltb.stats();
        assert!(s.predictions > 0);
        assert!(s.accuracy() > 0.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = Ltb::new(48);
    }
}
