//! A tiny self-describing byte codec for machine state snapshots.
//!
//! The crash-safety layer (`fac-sim`'s checkpoint files, `fac-bench`'s
//! campaign manifests) needs to persist simulator state without pulling in
//! an external serialization crate. This module is the shared primitive:
//! a length-checked little-endian writer/reader pair plus the FNV-1a hash
//! used both as an integrity checksum over snapshot payloads and as the
//! result digest recorded in campaign manifests.
//!
//! Every `read_*` call is bounds-checked: a truncated or corrupted buffer
//! surfaces as a typed [`SnapError`] naming what was being decoded, never
//! as a panic or a silently wrong value.
//!
//! ```
//! use fac_core::snap::{SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! w.u32(0xdead_beef);
//! w.bytes(b"payload");
//! let buf = w.into_bytes();
//!
//! let mut r = SnapReader::new(&buf);
//! assert_eq!(r.u32("word").unwrap(), 0xdead_beef);
//! assert_eq!(r.bytes("blob").unwrap(), b"payload");
//! r.finish().unwrap();
//! ```

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state` (seed with
/// [`FNV_OFFSET`]). Chain calls to hash discontiguous data.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A decode failure: the buffer was truncated, oversized, or held a value
/// the decoder cannot honour. Carries a human-readable reason naming the
/// field being decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// What went wrong, and on which field.
    pub reason: String,
}

impl SnapError {
    /// A decode error with the given reason.
    pub fn new(reason: impl Into<String>) -> SnapError {
        SnapError { reason: reason.into() }
    }
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for SnapError {}

/// Appends little-endian scalars and length-prefixed byte strings to a
/// growable buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length as a `u64`.
    pub fn len_of(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.len_of(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Decodes a [`SnapWriter`] buffer, bounds-checking every read.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::new(format!(
                "truncated while decoding {what}: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, SnapError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a bool; any byte other than 0 or 1 is an error (corruption
    /// must never decode to a valid value).
    pub fn bool(&mut self, what: &str) -> Result<bool, SnapError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::new(format!("bad bool byte {b:#04x} decoding {what}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self, what: &str) -> Result<i32, SnapError> {
        Ok(i32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    /// Reads a collection length and checks it against `max` (a corrupt
    /// length must not trigger a huge allocation).
    pub fn len_of(&mut self, max: usize, what: &str) -> Result<usize, SnapError> {
        let n = self.u64(what)?;
        if n > max as u64 {
            return Err(SnapError::new(format!(
                "implausible length {n} decoding {what} (limit {max})"
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self, what: &str) -> Result<&'a [u8], SnapError> {
        let n = self.len_of(self.remaining(), what)?;
        self.take(n, what)
    }

    /// Asserts the buffer was consumed exactly — trailing garbage is
    /// corruption, not padding.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::new(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.i32(-42);
        w.u64(u64::MAX);
        w.bytes(b"hello");
        let buf = w.into_bytes();
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.i32("d").unwrap(), -42);
        assert_eq!(r.u64("e").unwrap(), u64::MAX);
        assert_eq!(r.bytes("f").unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let buf = w.into_bytes();
        let mut r = SnapReader::new(&buf[..3]);
        let err = r.u64("field").unwrap_err();
        assert!(err.reason.contains("field"), "{err}");
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = SnapReader::new(&[2]);
        assert!(r.bool("flag").is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let buf = w.into_bytes();
        assert!(SnapReader::new(&buf).len_of(1024, "entries").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let r = SnapReader::new(&[0]);
        assert!(r.finish().is_err());
    }

    #[test]
    fn fnv1a_is_stable_and_chainable() {
        let whole = fnv1a(FNV_OFFSET, b"hello world");
        let split = fnv1a(fnv1a(FNV_OFFSET, b"hello "), b"world");
        assert_eq!(whole, split);
        // Pinned value: the checksum lives in committed artifacts.
        assert_eq!(fnv1a(FNV_OFFSET, b""), FNV_OFFSET);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
