//! Gate-level critical-path model for the §3.1 timing argument.
//!
//! The paper's case for fast address calculation rests on a circuit claim:
//! the prediction mechanism adds **one OR-gate delay** before cache access
//! can commence, while a conventional address generation stage needs a full
//! 32-bit add before the set index exists. This module makes that claim
//! checkable: it estimates critical-path depth (in equivalent 2-input gate
//! delays) for ripple-carry and carry-lookahead adders, for the carry-free
//! index composition, and for the decoupled verification network of
//! Figure 4.
//!
//! The numbers are textbook logic-depth estimates, not a technology
//! library; their purpose is the *relative* comparison the paper makes.

/// Critical-path depth in equivalent 2-input gate delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GateDelays(pub u32);

impl core::fmt::Display for GateDelays {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} gate delays", self.0)
    }
}

/// Depth of a balanced tree of 2-input gates over `n` inputs.
fn tree_depth(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// Critical path of an `n`-bit ripple-carry adder: one full adder is ~2
/// gate delays of carry path (majority + propagate), plus sum formation.
pub fn ripple_adder_depth(bits: u32) -> GateDelays {
    if bits == 0 {
        return GateDelays(0);
    }
    GateDelays(2 * bits + 1)
}

/// Critical path of an `n`-bit carry-lookahead adder built from 4-bit
/// groups: generate/propagate (1), log₄ levels of group lookahead (2 gate
/// delays each, up and down the tree), final sum XOR (1).
pub fn cla_adder_depth(bits: u32) -> GateDelays {
    if bits == 0 {
        return GateDelays(0);
    }
    let groups = bits.div_ceil(4).max(1);
    let levels = if groups <= 1 { 1 } else { tree_depth(groups) };
    GateDelays(1 + 4 * levels + 1)
}

/// Depth added *before the cache row decode can begin* by the fast-address-
/// calculation index path: the single OR (or XOR) of the base and offset
/// index bits — one gate, exactly as the paper claims.
pub fn fac_index_depth() -> GateDelays {
    GateDelays(1)
}

/// Depth of the block-offset full adder (`bits` = B, 4–5 in the paper):
/// a small ripple adder is fine because the result is needed *late* (at the
/// column multiplexor), not before row decode.
pub fn fac_block_offset_depth(block_offset_bits: u32) -> GateDelays {
    ripple_adder_depth(block_offset_bits)
}

/// Depth of the verification network of Figure 4: the carry out of the
/// block-offset adder (condition 1), the AND-OR reduction over the index
/// bits for generated carries (condition 2), the inverted-offset zero check
/// (condition 3), a sign bit (condition 4), and the final 4-input OR.
pub fn fac_verify_depth(block_offset_bits: u32, index_bits: u32) -> GateDelays {
    let overflow = ripple_adder_depth(block_offset_bits).0;
    let gen_carry = 1 + tree_depth(index_bits); // AND per bit, OR-tree
    let large_neg = 1 + tree_depth(index_bits); // NOT per bit (folded), OR-tree
    let neg_reg = 1;
    let combine = tree_depth(4);
    GateDelays(overflow.max(gen_carry).max(large_neg).max(neg_reg) + combine)
}

/// The comparison the paper makes in §3.1, bundled: how much address-path
/// delay precedes cache row decode under each scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Full 32-bit ripple-carry address add (a naive AGEN stage).
    pub full_ripple: GateDelays,
    /// Full 32-bit carry-lookahead address add (a realistic AGEN stage).
    pub full_cla: GateDelays,
    /// Fast address calculation's pre-decode addition: one OR.
    pub fac_pre_decode: GateDelays,
    /// FAC's block-offset adder (needed late, at column select).
    pub fac_block_offset: GateDelays,
    /// FAC's verification network (fully decoupled from the access).
    pub fac_verify: GateDelays,
}

impl CriticalPathReport {
    /// Builds the report for a cache with `2^B`-byte blocks and `2^I` sets.
    pub fn for_geometry(block_offset_bits: u32, index_bits: u32) -> CriticalPathReport {
        CriticalPathReport {
            full_ripple: ripple_adder_depth(32),
            full_cla: cla_adder_depth(32),
            fac_pre_decode: fac_index_depth(),
            fac_block_offset: fac_block_offset_depth(block_offset_bits),
            fac_verify: fac_verify_depth(block_offset_bits, index_bits),
        }
    }

    /// Gate delays removed from the pre-decode path versus a CLA AGEN.
    pub fn pre_decode_savings(&self) -> u32 {
        self.full_cla.0.saturating_sub(self.fac_pre_decode.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_is_ceil_log2() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(9), 4);
    }

    #[test]
    fn adders_scale_as_expected() {
        assert!(ripple_adder_depth(32) > ripple_adder_depth(5));
        assert!(cla_adder_depth(32) < ripple_adder_depth(32));
        assert_eq!(ripple_adder_depth(0), GateDelays(0));
        assert_eq!(cla_adder_depth(0), GateDelays(0));
    }

    #[test]
    fn fac_pre_decode_is_one_gate() {
        // The paper's claim, literally.
        assert_eq!(fac_index_depth(), GateDelays(1));
    }

    #[test]
    fn block_offset_adder_is_small() {
        // "For most cache designs, a 4- or 5-bit adder should suffice...
        // on the order of the cache row decoders."
        let bo = fac_block_offset_depth(5);
        assert!(bo < cla_adder_depth(32));
        assert!(bo.0 <= 11);
    }

    #[test]
    fn verification_is_shallower_than_full_addition() {
        // "Since the verification circuit is very simple, we do not expect
        // it to impact the processor cycle time."
        let v = fac_verify_depth(5, 9);
        assert!(v < ripple_adder_depth(32));
        assert!(v <= cla_adder_depth(32));
    }

    #[test]
    fn report_for_table5_geometry() {
        let r = CriticalPathReport::for_geometry(5, 9);
        assert_eq!(r.fac_pre_decode, GateDelays(1));
        assert!(r.pre_decode_savings() >= 8, "savings {}", r.pre_decode_savings());
        assert!(r.fac_verify <= r.full_cla);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(GateDelays(3).to_string(), "3 gate delays");
    }
}
