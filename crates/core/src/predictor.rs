//! The fast-address-calculation prediction circuit (paper §3, Figure 4).

use crate::AddrFields;
use core::fmt;

/// How the early (set index and, optionally, tag) portion of the effective
/// address is composed without carries.
///
/// Carry-free addition is properly an XOR, but the paper (footnote 1) uses
/// an inclusive OR because the two only differ when the prediction fails
/// anyway. Both are provided so the claim can be checked empirically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexCompose {
    /// Inclusive OR — the paper's choice (simpler gate).
    #[default]
    Or,
    /// Exclusive OR — the mathematically exact carry-free sum.
    Xor,
}

impl IndexCompose {
    fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            IndexCompose::Or => a | b,
            IndexCompose::Xor => a ^ b,
        }
    }
}

/// Static configuration of the prediction circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    /// Use full adders for the tag portion of the effective address
    /// (the default design in Figure 4). When `false` the tag is composed
    /// carry-free like the set index, adding a failure condition when the
    /// tag bits of base and offset interact (§3.1's fallback for designs
    /// where the tag adder cannot keep up).
    pub full_tag_add: bool,
    /// Gate used for the carry-free composition.
    pub compose: IndexCompose,
    /// Whether loads/stores using register+register addressing are
    /// speculated at all (§5.5 evaluates both settings).
    pub speculate_reg_reg: bool,
    /// Whether stores are speculated (§3.1 discusses the trade-off).
    pub speculate_stores: bool,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig {
            full_tag_add: true,
            compose: IndexCompose::Or,
            speculate_reg_reg: true,
            speculate_stores: true,
        }
    }
}

/// The offset operand of an effective-address computation.
///
/// Constant offsets come from the immediate field and are available early;
/// the circuit inverts their set-index portion when negative. Register
/// offsets (register+register addressing) arrive from the register file or
/// forwarding logic too late for inversion, so negative register offsets
/// always mispredict (failure condition 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Offset {
    /// Immediate (register+constant addressing, and post-inc/dec which
    /// accesses `base + 0`).
    Const(i16),
    /// Register value (register+register addressing).
    Reg(u32),
}

impl Offset {
    /// The 32-bit value added to the base.
    pub fn value(self) -> u32 {
        match self {
            Offset::Const(c) => c as i32 as u32,
            Offset::Reg(v) => v,
        }
    }

    /// `true` when the offset is negative as a signed quantity.
    pub fn is_negative(self) -> bool {
        (self.value() as i32) < 0
    }

    /// `true` for register-supplied offsets.
    pub fn is_reg(self) -> bool {
        matches!(self, Offset::Reg(_))
    }
}

/// The four failure conditions of §3 plus the extra tag condition used when
/// the circuit is built without a tag adder.
///
/// Any set signal forces the access to re-execute with the full effective
/// address; the signals are conservative, so a set signal with a
/// coincidentally-correct predicted address still replays (exactly as the
/// hardware would).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FailureSignals {
    /// Condition 1: a carry (or, for negative constant offsets, a borrow)
    /// propagates out of the block-offset portion of the computation.
    pub overflow: bool,
    /// Condition 2: a carry is generated inside the set-index portion
    /// (base and offset index bits overlap).
    pub gen_carry: bool,
    /// Condition 3: a negative constant offset too large in magnitude for
    /// the inverted-index trick (its inverted set-index bits are non-zero).
    pub large_neg_const: bool,
    /// Condition 4: a register offset is negative (arrives too late for
    /// set-index inversion).
    pub neg_index_reg: bool,
    /// Only without [`PredictorConfig::full_tag_add`]: the tag bits of base
    /// and offset interact, so the carry-free tag is unreliable.
    pub tag_overlap: bool,
}

impl FailureSignals {
    /// `true` if any failure condition fired (the access must replay).
    pub fn any(self) -> bool {
        self.overflow || self.gen_carry || self.large_neg_const || self.neg_index_reg
            || self.tag_overlap
    }

    /// The dominant cause, for statistics. Ordered by the paper's numbering.
    pub fn cause(self) -> Option<FailureCause> {
        if self.neg_index_reg {
            Some(FailureCause::NegIndexReg)
        } else if self.large_neg_const {
            Some(FailureCause::LargeNegConst)
        } else if self.overflow {
            Some(FailureCause::Overflow)
        } else if self.gen_carry {
            Some(FailureCause::GenCarry)
        } else if self.tag_overlap {
            Some(FailureCause::TagOverlap)
        } else {
            None
        }
    }
}

impl fmt::Display for FailureSignals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.any() {
            return f.write_str("ok");
        }
        let mut sep = "";
        for (set, name) in [
            (self.overflow, "overflow"),
            (self.gen_carry, "gen-carry"),
            (self.large_neg_const, "large-neg-const"),
            (self.neg_index_reg, "neg-index-reg"),
            (self.tag_overlap, "tag-overlap"),
        ] {
            if set {
                write!(f, "{sep}{name}")?;
                sep = "+";
            }
        }
        Ok(())
    }
}

/// Summary of why a prediction failed (dominant signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// Condition 1: carry/borrow out of the block offset.
    Overflow,
    /// Condition 2: carry generated in the set index.
    GenCarry,
    /// Condition 3: negative constant too large for index inversion.
    LargeNegConst,
    /// Condition 4: negative register offset.
    NegIndexReg,
    /// Carry-free-tag variants only: tag bits interact.
    TagOverlap,
}

impl FailureCause {
    /// All causes, in [`FailureCause::index`] order (the paper's numbering,
    /// tag overlap last).
    pub const ALL: [FailureCause; 5] = [
        FailureCause::Overflow,
        FailureCause::GenCarry,
        FailureCause::LargeNegConst,
        FailureCause::NegIndexReg,
        FailureCause::TagOverlap,
    ];

    /// Dense index for per-cause counter arrays.
    pub fn index(self) -> usize {
        match self {
            FailureCause::Overflow => 0,
            FailureCause::GenCarry => 1,
            FailureCause::LargeNegConst => 2,
            FailureCause::NegIndexReg => 3,
            FailureCause::TagOverlap => 4,
        }
    }

    /// Stable machine-readable name, used as-is in metric names and JSON
    /// event streams.
    pub fn label(self) -> &'static str {
        match self {
            FailureCause::Overflow => "overflow",
            FailureCause::GenCarry => "gen_carry",
            FailureCause::LargeNegConst => "large_neg_const",
            FailureCause::NegIndexReg => "neg_index_reg",
            FailureCause::TagOverlap => "tag_overlap",
        }
    }

    /// Inverse of [`FailureCause::label`].
    pub fn from_label(label: &str) -> Option<FailureCause> {
        FailureCause::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of one effective-address prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The true effective address (`base + offset`).
    pub actual: u32,
    /// The address the speculative access used: carry-free set index, full
    /// B-bit block-offset sum, tag per configuration.
    pub predicted: u32,
    /// The failure signals of the verification circuit.
    pub signals: FailureSignals,
}

impl Prediction {
    /// `true` when the speculative access may be used (no failure signals).
    ///
    /// This is the hardware's notion of success: conservative. A prediction
    /// whose address happens to be correct but that raised a signal still
    /// counts as failed (the access replays).
    pub fn is_correct(&self) -> bool {
        !self.signals.any()
    }

    /// Dominant failure cause, if the prediction failed.
    pub fn cause(&self) -> Option<FailureCause> {
        self.signals.cause()
    }
}

/// The fast-address-calculation predictor.
///
/// Bit-accurate model of the circuit in Figure 4 of the paper: the set index
/// of the effective address is produced with a single OR gate (one gate
/// delay before cache access can commence), the block offset with a `B`-bit
/// full adder, and — in the default configuration — the tag with a full
/// adder whose result arrives in time for the (late) tag comparison.
/// Verification is decoupled from the access path.
///
/// The worked examples of Figure 5 (16 KB direct-mapped cache, 16-byte
/// blocks):
///
/// ```
/// use fac_core::{AddrFields, Offset, Predictor, PredictorConfig};
///
/// let p = Predictor::new(
///     AddrFields::for_direct_mapped(16 * 1024, 16),
///     PredictorConfig::default(),
/// );
///
/// // (a) pointer dereference, zero offset: succeeds.
/// let a = p.predict(0xac, Offset::Const(0));
/// assert!(a.is_correct());
/// assert_eq!(a.predicted, 0xac);
///
/// // (b) global access through an aligned global pointer: succeeds.
/// let b = p.predict(0x1000_0000, Offset::Const(0x984));
/// assert!(b.is_correct());
/// assert_eq!(b.predicted, 0x1000_0984);
///
/// // (c) stack access with a small offset: block-offset adder absorbs the
/// // carry, prediction succeeds.
/// let c = p.predict(0x7fff_5b84, Offset::Const(0x66));
/// assert!(c.is_correct());
/// assert_eq!(c.predicted, 0x7fff_5bea);
///
/// // (d) stack access with a larger offset: a carry propagates out of the
/// // block offset and is generated in the set index — misprediction.
/// let d = p.predict(0x7fff_5b84, Offset::Const(0x16c));
/// assert!(!d.is_correct());
/// assert_eq!(d.actual, 0x7fff_5cf0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predictor {
    fields: AddrFields,
    config: PredictorConfig,
}

impl Predictor {
    /// Creates a predictor for the given cache geometry and configuration.
    pub fn new(fields: AddrFields, config: PredictorConfig) -> Predictor {
        Predictor { fields, config }
    }

    /// The address-field geometry this predictor was built for.
    pub fn fields(&self) -> AddrFields {
        self.fields
    }

    /// The circuit configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// Whether the pipeline should attempt speculation for this access at
    /// all (policy, not circuit): register+register accesses are only
    /// speculated when enabled, stores only when store speculation is on.
    pub fn should_speculate(&self, offset: Offset, is_store: bool) -> bool {
        if is_store && !self.config.speculate_stores {
            return false;
        }
        if offset.is_reg() && !self.config.speculate_reg_reg {
            return false;
        }
        true
    }

    /// Runs the prediction circuit for one access.
    ///
    /// Returns the predicted (speculatively accessed) address, the true
    /// effective address, and the verification signals.
    pub fn predict(&self, base: u32, offset: Offset) -> Prediction {
        let f = self.fields;
        let b_bits = f.block_offset_bits();
        let ofs = offset.value();
        let actual = base.wrapping_add(ofs);
        let neg = offset.is_negative();
        let neg_const = neg && !offset.is_reg();
        let neg_index_reg = neg && offset.is_reg();

        // B-bit full adder over the block offset.
        let bo_sum = f.block_offset(base) + f.block_offset(ofs);
        let carry_out = bo_sum >> b_bits != 0;
        let pred_bo = bo_sum & f.block_offset_mask();

        // For negative constants the circuit inverts the set-index (and,
        // for the carry-free tag variant, tag) bits of the offset; a small
        // negative offset sign-extends to all ones, which inverts to zero.
        let ofs_index = if neg_const { !f.index(ofs) & f.index_mask() } else { f.index(ofs) };
        let base_index = f.index(base);
        let pred_index = self.config.compose.apply(base_index, ofs_index);

        // Failure condition 1: carry propagated out of the block offset.
        // For negative constant offsets the roles flip: a *missing* carry
        // out of the adder is a borrow into the set index.
        let overflow = if neg_const { !carry_out } else { carry_out };
        // Failure condition 2: carry generated inside the set index.
        let gen_carry = base_index & ofs_index != 0;
        // Failure condition 3: negative constant whose inverted index bits
        // are non-zero (|offset| spans the set index).
        let large_neg_const = neg_const && ofs_index != 0;

        // Tag portion: full adder (exact — the adder chain consumes the
        // carries) or carry-free composition with its own overlap check.
        let (pred_tag, tag_overlap) = if self.config.full_tag_add {
            (f.tag(actual), false)
        } else {
            let ofs_tag = if neg_const { !f.tag(ofs) & f.tag_mask() } else { f.tag(ofs) };
            let base_tag = f.tag(base);
            (self.config.compose.apply(base_tag, ofs_tag), base_tag & ofs_tag != 0 || {
                // Carry-free tags also require no carry arriving from the
                // index portion; that is already covered by overflow /
                // gen_carry. The overlap check here is the only new signal.
                false
            })
        };
        // For negative constants the carry-free tag additionally requires
        // the offset's tag bits to be all ones (inverted to zero).
        let tag_overlap = tag_overlap
            || (!self.config.full_tag_add && neg_const && !f.tag(ofs) & f.tag_mask() != 0);

        let predicted = f.compose(pred_tag, pred_index, pred_bo);
        Prediction {
            actual,
            predicted,
            signals: FailureSignals {
                overflow,
                gen_carry,
                large_neg_const,
                neg_index_reg,
                tag_overlap,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_predictor() -> Predictor {
        Predictor::new(AddrFields::for_direct_mapped(16 * 1024, 16), PredictorConfig::default())
    }

    #[test]
    fn zero_offset_always_succeeds() {
        let p = fig5_predictor();
        for base in [0u32, 0xac, 0x7fff_5b84, 0xffff_ffff, 0x1234_5678] {
            let pr = p.predict(base, Offset::Const(0));
            assert!(pr.is_correct(), "base {base:#x}: {}", pr.signals);
            assert_eq!(pr.predicted, base);
        }
    }

    #[test]
    fn aligned_global_pointer_succeeds() {
        // gp aligned to a power of two larger than the largest offset.
        let p = fig5_predictor();
        let gp = 0x1000_0000;
        for disp in [0i16, 4, 0x984, 0x7ffc] {
            let pr = p.predict(gp, Offset::Const(disp));
            assert!(pr.is_correct(), "disp {disp}: {}", pr.signals);
            assert_eq!(pr.predicted, gp + disp as u32);
        }
    }

    #[test]
    fn small_offset_carry_into_index_fails() {
        let p = fig5_predictor();
        // base block offset 0xc + offset 0x8 = 0x14: carry out of bits 3:0.
        let pr = p.predict(0x7fff_5b8c, Offset::Const(8));
        assert!(!pr.is_correct());
        assert!(pr.signals.overflow);
        assert_eq!(pr.cause(), Some(FailureCause::Overflow));
    }

    #[test]
    fn index_overlap_fails_with_gen_carry() {
        let p = fig5_predictor();
        // Index bits of base and offset overlap: 0x10 in both.
        let pr = p.predict(0x10, Offset::Const(0x10));
        assert!(!pr.is_correct());
        assert!(pr.signals.gen_carry);
    }

    #[test]
    fn small_negative_constant_within_block_succeeds() {
        let p = fig5_predictor();
        // base offset-in-block 0xc, offset -8: stays in the same block.
        let pr = p.predict(0x7fff_5b8c, Offset::Const(-8));
        assert!(pr.is_correct(), "{}", pr.signals);
        assert_eq!(pr.predicted, 0x7fff_5b84);
    }

    #[test]
    fn small_negative_constant_crossing_block_fails() {
        let p = fig5_predictor();
        // base offset-in-block 0x4, offset -8: borrows out of the block.
        let pr = p.predict(0x7fff_5b84, Offset::Const(-8));
        assert!(!pr.is_correct());
        assert!(pr.signals.overflow);
    }

    #[test]
    fn large_negative_constant_fails() {
        let p = fig5_predictor();
        let pr = p.predict(0x7fff_5b84, Offset::Const(-300));
        assert!(!pr.is_correct());
        assert!(pr.signals.large_neg_const);
        assert_eq!(pr.cause(), Some(FailureCause::LargeNegConst));
    }

    #[test]
    fn negative_register_offset_always_fails() {
        let p = fig5_predictor();
        let pr = p.predict(0x1000, Offset::Reg((-4i32) as u32));
        assert!(!pr.is_correct());
        assert!(pr.signals.neg_index_reg);
        assert_eq!(pr.cause(), Some(FailureCause::NegIndexReg));
    }

    #[test]
    fn positive_register_offset_behaves_like_constant() {
        let p = fig5_predictor();
        let ok = p.predict(0x4000_0000, Offset::Reg(0xc));
        assert!(ok.is_correct());
        assert_eq!(ok.predicted, 0x4000_000c);
        let bad = p.predict(0x4000_0010, Offset::Reg(0x10));
        assert!(!bad.is_correct());
    }

    #[test]
    fn policy_gates_reg_reg_and_stores() {
        let cfg = PredictorConfig {
            speculate_reg_reg: false,
            speculate_stores: false,
            ..PredictorConfig::default()
        };
        let p = Predictor::new(AddrFields::for_direct_mapped(16 * 1024, 32), cfg);
        assert!(!p.should_speculate(Offset::Reg(4), false));
        assert!(!p.should_speculate(Offset::Const(4), true));
        assert!(p.should_speculate(Offset::Const(4), false));
    }

    #[test]
    fn carry_free_tag_adds_overlap_failure() {
        let cfg = PredictorConfig { full_tag_add: false, ..PredictorConfig::default() };
        let p = Predictor::new(AddrFields::for_direct_mapped(16 * 1024, 16), cfg);
        // Offset with tag bits set overlapping base tag bits.
        let pr = p.predict(0x0001_0000, Offset::Reg(0x0001_0000));
        assert!(!pr.is_correct());
        assert!(pr.signals.tag_overlap);
        // Disjoint tag bits still succeed.
        let pr = p.predict(0x0001_0000, Offset::Reg(0x0002_0000));
        assert!(pr.is_correct(), "{}", pr.signals);
        assert_eq!(pr.predicted, 0x0003_0000);
    }

    #[test]
    fn carry_free_tag_rejects_moderate_negative_constants() {
        // A negative constant whose magnitude fits the inverted-index trick
        // but whose tag bits are not all ones must fail without a tag adder.
        let cfg = PredictorConfig { full_tag_add: false, ..PredictorConfig::default() };
        let p = Predictor::new(AddrFields::for_direct_mapped(64, 16), cfg);
        // 64-byte cache: B=4, I=2, tag = bits 31:6. offset -24 has inverted
        // index bits != 0 so large_neg_const fires first; use -4104-style
        // case with a bigger cache instead.
        let p2 = Predictor::new(AddrFields::for_direct_mapped(4096, 16), cfg);
        // -4104 = 0xFFFFEFF8: index bits (11:4) = 0xFF (all ones), tag not.
        let pr = p2.predict(0x0000_f00c, Offset::Const(-4104));
        assert!(!pr.is_correct());
        assert!(pr.signals.tag_overlap);
        // Same offset with a full tag adder succeeds when no borrow occurs.
        let p3 = Predictor::new(
            AddrFields::for_direct_mapped(4096, 16),
            PredictorConfig::default(),
        );
        let pr = p3.predict(0x0000_f00c, Offset::Const(-4104));
        assert!(pr.is_correct(), "{}", pr.signals);
        assert_eq!(pr.predicted, 0x0000_f00cu32.wrapping_add((-4104i32) as u32));
        let _ = p;
    }

    #[test]
    fn failure_signals_display() {
        let p = fig5_predictor();
        assert_eq!(p.predict(0, Offset::Const(0)).signals.to_string(), "ok");
        let s = p.predict(0x7fff_5b84, Offset::Const(0x16c)).signals;
        assert_eq!(s.to_string(), "overflow+gen-carry");
    }

    #[test]
    fn xor_compose_matches_or_on_success() {
        let or_p = fig5_predictor();
        let xor_p = Predictor::new(
            AddrFields::for_direct_mapped(16 * 1024, 16),
            PredictorConfig { compose: IndexCompose::Xor, ..PredictorConfig::default() },
        );
        for (base, ofs) in [(0xacu32, 0i16), (0x7fff_5b84, 0x66), (0x1000_0000, 0x984)] {
            let a = or_p.predict(base, Offset::Const(ofs));
            let b = xor_p.predict(base, Offset::Const(ofs));
            assert!(a.is_correct() && b.is_correct());
            assert_eq!(a.predicted, b.predicted);
        }
    }
}
