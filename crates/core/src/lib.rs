#![warn(missing_docs)]

//! # fac-core — fast address calculation
//!
//! Bit-accurate model of the *fast address calculation* mechanism from
//! Austin, Pnevmatikatos & Sohi, **"Streamlining Data Cache Access with Fast
//! Address Calculation"**, ISCA 1995.
//!
//! On-chip caches need the *set index* portion of the effective address
//! early in the access cycle and the *block offset* and *tag* portions late.
//! The mechanism exploits this: it produces the set index with a single
//! carry-free OR of base and offset (one gate delay), computes the block
//! offset with a small full adder in parallel with the data/tag array read,
//! and verifies the prediction with a circuit that is completely decoupled
//! from the cache access critical path. When the prediction is wrong the
//! access re-executes in the next cycle with the real address, so loads that
//! predict correctly complete in **one** cycle instead of two.
//!
//! The predictor fails in exactly four ways (§3 of the paper):
//!
//! 1. a carry (or borrow) propagates out of the block offset,
//! 2. a carry is generated inside the set index,
//! 3. a negative constant offset is too large in magnitude, or
//! 4. a register-supplied offset is negative.
//!
//! ```
//! use fac_core::{AddrFields, Offset, Predictor, PredictorConfig};
//!
//! // The paper's Figure 5 geometry: 16 KB direct-mapped, 16-byte blocks.
//! let p = Predictor::new(
//!     AddrFields::for_direct_mapped(16 * 1024, 16),
//!     PredictorConfig::default(),
//! );
//!
//! // A pointer dereference predicts correctly...
//! assert!(p.predict(0xac, Offset::Const(0)).is_correct());
//! // ...a large stack-frame offset does not.
//! assert!(!p.predict(0x7fff_5b84, Offset::Const(0x16c)).is_correct());
//! ```
//!
//! The companion crates build the rest of the paper's infrastructure on top
//! of this one: `fac-sim` integrates the predictor into a 4-way superscalar
//! pipeline, `fac-asm` implements the compiler/linker alignment support of
//! §4, and `fac-bench` regenerates the paper's tables and figures.

mod circuit;
mod fault;
mod fields;
mod ltb;
mod predictor;
pub mod rng;
pub mod snap;

pub use circuit::{
    cla_adder_depth, fac_block_offset_depth, fac_index_depth, fac_verify_depth,
    ripple_adder_depth, CriticalPathReport, GateDelays,
};
pub use fault::{AnyPredictor, FaultKind, FaultPlan, FaultyPredictor};
pub use fields::AddrFields;
pub use ltb::{Ltb, LtbStats};
pub use predictor::{
    FailureCause, FailureSignals, IndexCompose, Offset, Prediction, Predictor, PredictorConfig,
};
