//! A tiny deterministic PRNG shared by every randomized harness.
//!
//! Fault injection (`fault.rs`) and the differential program fuzzer
//! (`fac-asm`/`fac-bench`) both need randomness that is *reproducible from
//! a seed alone* — a fuzz campaign artifact must be byte-identical at any
//! worker count, and a fault plan must corrupt the same accesses on every
//! run. Both therefore draw from this one splitmix64 generator instead of
//! an OS-seeded source.

/// One application of the splitmix64 finalizer (Steele, Lea & Flood's
/// constants). Feeding each output back as the next state gives the
/// full-period stream [`SplitMix64`] iterates.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded splitmix64 stream.
///
/// ```
/// use fac_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. The seed is mixed once so that
    /// nearby seeds (0, 1, 2, …) produce unrelated streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: splitmix64(seed) }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// A value uniform-ish in `0..bound` (`bound` must be nonzero; the
    /// modulo bias is irrelevant at the bounds the harnesses use).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// The raw generator state, for machine checkpoints. Restoring with
    /// [`SplitMix64::from_raw_state`] resumes the stream exactly where it
    /// left off.
    pub fn raw_state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator mid-stream from [`SplitMix64::raw_state`].
    /// Unlike [`SplitMix64::new`], the value is **not** mixed — it is the
    /// state itself.
    pub fn from_raw_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn pick_covers_the_slice() {
        let mut r = SplitMix64::new(3);
        let items = [10u32, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = *r.pick(&items);
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
