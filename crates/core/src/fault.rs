//! Fault injection for the prediction circuit.
//!
//! The paper's safety argument (§3, Figure 4) is that the *decoupled
//! verification circuit* — full adder plus the four failure signals — makes
//! speculative cache access harmless: a bad speculation is always detected
//! and replayed with the true effective address, so architectural state can
//! never observe a mispredicted address. A reproduction should not merely
//! trust that argument; it should attack it. This module provides the
//! attacker: a [`FaultyPredictor`] that wraps the real [`Predictor`] and
//! corrupts its output on demand, behind the same interface.
//!
//! Every fault model is constructed so that a *correct* verification path
//! keeps architectural results bit-identical to an unfaulted run while only
//! costing cycles. The fault-injection harness in the simulator asserts
//! exactly that, for every workload and every plan.

use crate::rng::SplitMix64;
use crate::{FailureSignals, Offset, Prediction, Predictor};

/// What the injected fault does to each speculated prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Corrupt *every* speculated access: the predicted address is wrong by
    /// one set-index bit. Failure signals are left as computed, so accesses
    /// that would have replayed anyway still do; the rest must be caught by
    /// the decoupled address compare.
    AlwaysWrong,
    /// Corrupt roughly `wrong_per_1024` out of every 1024 speculated
    /// accesses, flipping a randomly chosen set-index bit of the predicted
    /// address (seeded, deterministic).
    RandomFlip {
        /// Corruption rate numerator (out of 1024).
        wrong_per_1024: u16,
    },
    /// Stuck-at fault in the OR-merge: the given bit of the set-index field
    /// of every speculated prediction reads back inverted.
    FlipIndexBit {
        /// Bit position *within the index field* (wraps modulo the field
        /// width, so plans stay valid across geometries).
        bit: u32,
    },
    /// The failure signals are masked to zero exactly when the predicted
    /// address is wrong — the alarm is cut in precisely the cases where it
    /// matters. Signals on coincidentally-correct predictions are kept, so
    /// a sound backstop makes this plan cost no extra cycles at all.
    SuppressSignals,
    /// Worst case: the predicted address is wrong *and* every failure
    /// signal is masked. Only the decoupled full-adder compare stands
    /// between this and architectural corruption.
    SilentWrong,
}

/// A named, seeded fault-injection campaign: which corruption to apply and
/// the RNG seed for the randomized kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// The corruption applied to each speculated prediction.
    pub kind: FaultKind,
    /// Seed for the randomized kinds (ignored by deterministic ones).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan with the default seed.
    pub fn new(kind: FaultKind) -> FaultPlan {
        FaultPlan { kind, seed: 0xfac }
    }

    /// Same plan, different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// The built-in campaign the fault-injection harness runs: one plan per
    /// fault kind, plus a second stuck-bit position.
    pub fn builtin() -> Vec<FaultPlan> {
        vec![
            FaultPlan::new(FaultKind::AlwaysWrong),
            FaultPlan::new(FaultKind::RandomFlip { wrong_per_1024: 256 }),
            FaultPlan::new(FaultKind::FlipIndexBit { bit: 0 }),
            FaultPlan::new(FaultKind::FlipIndexBit { bit: 3 }),
            FaultPlan::new(FaultKind::SuppressSignals),
            FaultPlan::new(FaultKind::SilentWrong),
        ]
    }

    /// Parses the `--fault-plan` command-line syntax:
    /// `always-wrong`, `random-flip[:rate]`, `flip-index-bit:<bit>`,
    /// `suppress-signals`, `silent-wrong`, each optionally followed by
    /// `@<seed>`.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (spec, seed) = match text.split_once('@') {
            Some((spec, seed)) => {
                let seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad fault-plan seed {seed:?}"))?;
                (spec, Some(seed))
            }
            None => (text, None),
        };
        let (name, arg) = match spec.split_once(':') {
            Some((name, arg)) => (name, Some(arg)),
            None => (spec, None),
        };
        let kind = match (name, arg) {
            ("always-wrong", None) => FaultKind::AlwaysWrong,
            ("random-flip", None) => FaultKind::RandomFlip { wrong_per_1024: 256 },
            ("random-flip", Some(rate)) => FaultKind::RandomFlip {
                wrong_per_1024: rate
                    .parse()
                    .map_err(|_| format!("bad random-flip rate {rate:?}"))?,
            },
            ("flip-index-bit", Some(bit)) => FaultKind::FlipIndexBit {
                bit: bit.parse().map_err(|_| format!("bad index bit {bit:?}"))?,
            },
            ("flip-index-bit", None) => {
                return Err("flip-index-bit needs a bit: flip-index-bit:<bit>".into())
            }
            ("suppress-signals", None) => FaultKind::SuppressSignals,
            ("silent-wrong", None) => FaultKind::SilentWrong,
            _ => {
                return Err(format!(
                    "unknown fault plan {text:?} (expected always-wrong, \
                     random-flip[:rate], flip-index-bit:<bit>, suppress-signals \
                     or silent-wrong, optionally @<seed>)"
                ))
            }
        };
        let mut plan = FaultPlan::new(kind);
        if let Some(seed) = seed {
            plan = plan.with_seed(seed);
        }
        Ok(plan)
    }

    /// Whether this plan ever corrupts the predicted address (as opposed to
    /// only masking signals). Plans that do are guaranteed to produce
    /// verification catches on any workload that speculates successfully.
    pub fn corrupts_address(&self) -> bool {
        !matches!(self.kind, FaultKind::SuppressSignals)
    }
}

impl core::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            FaultKind::AlwaysWrong => write!(f, "always-wrong")?,
            FaultKind::RandomFlip { wrong_per_1024 } => {
                write!(f, "random-flip:{wrong_per_1024}")?
            }
            FaultKind::FlipIndexBit { bit } => write!(f, "flip-index-bit:{bit}")?,
            FaultKind::SuppressSignals => write!(f, "suppress-signals")?,
            FaultKind::SilentWrong => write!(f, "silent-wrong")?,
        }
        if self.seed != 0xfac {
            write!(f, "@{}", self.seed)?;
        }
        Ok(())
    }
}

/// A [`Predictor`] with an injected hardware fault.
///
/// Presents the same interface as the exact predictor (`should_speculate`,
/// `predict`, `fields`) but corrupts the [`Prediction`] it returns according
/// to its [`FaultPlan`]. Corruption never touches `Prediction::actual` —
/// that models the *verification* path's full adder, which faults in the
/// prediction circuit cannot reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyPredictor {
    inner: Predictor,
    plan: FaultPlan,
    rng: SplitMix64,
}

impl FaultyPredictor {
    /// Wraps `inner` with the fault described by `plan`.
    pub fn new(inner: Predictor, plan: FaultPlan) -> FaultyPredictor {
        FaultyPredictor { inner, plan, rng: SplitMix64::new(plan.seed ^ 0x5eed_f417) }
    }

    /// The active fault plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The wrapped (exact) predictor.
    pub fn inner(&self) -> &Predictor {
        &self.inner
    }

    /// The wrapped predictor's address-field geometry.
    pub fn fields(&self) -> crate::AddrFields {
        self.inner.fields()
    }

    /// Same speculation policy as the wrapped predictor: faults corrupt
    /// outcomes, not the decision to speculate.
    pub fn should_speculate(&self, offset: Offset, is_store: bool) -> bool {
        self.inner.should_speculate(offset, is_store)
    }

    fn next_random(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The raw fault-RNG state, for machine checkpoints.
    pub fn rng_state(&self) -> u64 {
        self.rng.raw_state()
    }

    /// Restores the fault-RNG stream from [`FaultyPredictor::rng_state`],
    /// so a checkpointed run corrupts exactly the same future predictions
    /// as an uninterrupted one.
    pub fn set_rng_state(&mut self, state: u64) {
        self.rng = SplitMix64::from_raw_state(state);
    }

    /// A non-zero XOR mask confined (geometry permitting) to the set-index
    /// field, so the corruption lands in the OR-merged bits the paper's
    /// circuit predicts carry-free.
    fn index_bit_mask(&self, bit: u32) -> u32 {
        let f = self.inner.fields();
        let width = f.index_bits().max(1);
        1u32 << (f.block_offset_bits() + bit % width)
    }

    /// Runs the wrapped circuit, then applies the fault plan.
    pub fn predict(&mut self, base: u32, offset: Offset) -> Prediction {
        let exact = self.inner.predict(base, offset);
        match self.plan.kind {
            FaultKind::AlwaysWrong => Prediction {
                predicted: exact.actual ^ self.index_bit_mask(0),
                ..exact
            },
            FaultKind::RandomFlip { wrong_per_1024 } => {
                let roll = self.next_random();
                if (roll & 0x3ff) < wrong_per_1024 as u64 {
                    let bit = (roll >> 10) as u32;
                    Prediction {
                        predicted: exact.actual ^ self.index_bit_mask(bit),
                        ..exact
                    }
                } else {
                    exact
                }
            }
            FaultKind::FlipIndexBit { bit } => Prediction {
                predicted: exact.predicted ^ self.index_bit_mask(bit),
                ..exact
            },
            FaultKind::SuppressSignals => {
                if exact.predicted != exact.actual {
                    Prediction { signals: FailureSignals::default(), ..exact }
                } else {
                    exact
                }
            }
            FaultKind::SilentWrong => Prediction {
                predicted: exact.actual ^ self.index_bit_mask(0),
                signals: FailureSignals::default(),
                ..exact
            },
        }
    }
}

/// Either the exact circuit or a faulted one, behind one dispatch point so
/// the pipeline is oblivious to whether it is under attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyPredictor {
    /// The real circuit.
    Exact(Predictor),
    /// The circuit with an injected fault.
    Faulty(FaultyPredictor),
}

impl AnyPredictor {
    /// Wraps `predictor`, faulted iff a plan is given.
    pub fn new(predictor: Predictor, plan: Option<FaultPlan>) -> AnyPredictor {
        match plan {
            None => AnyPredictor::Exact(predictor),
            Some(plan) => AnyPredictor::Faulty(FaultyPredictor::new(predictor, plan)),
        }
    }

    /// The address-field geometry of the underlying circuit.
    pub fn fields(&self) -> crate::AddrFields {
        match self {
            AnyPredictor::Exact(p) => p.fields(),
            AnyPredictor::Faulty(p) => p.fields(),
        }
    }

    /// Speculation policy of the underlying circuit (fault-independent).
    pub fn should_speculate(&self, offset: Offset, is_store: bool) -> bool {
        match self {
            AnyPredictor::Exact(p) => p.should_speculate(offset, is_store),
            AnyPredictor::Faulty(p) => p.should_speculate(offset, is_store),
        }
    }

    /// `&mut` because faulted predictors advance an RNG; the exact circuit
    /// is pure combinational logic and ignores it.
    pub fn predict(&mut self, base: u32, offset: Offset) -> Prediction {
        match self {
            AnyPredictor::Exact(p) => p.predict(base, offset),
            AnyPredictor::Faulty(p) => p.predict(base, offset),
        }
    }

    /// Serializes the mutable predictor state (the fault RNG stream; the
    /// exact circuit is stateless) for a machine checkpoint.
    pub fn save_state(&self, w: &mut crate::snap::SnapWriter) {
        match self {
            AnyPredictor::Exact(_) => w.u8(0),
            AnyPredictor::Faulty(p) => {
                w.u8(1);
                w.u64(p.rng_state());
            }
        }
    }

    /// Restores [`AnyPredictor::save_state`] into a predictor rebuilt from
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// [`crate::snap::SnapError`] when the snapshot was taken with the
    /// other variant (a faulted snapshot restored into an exact machine or
    /// vice versa) or the buffer is corrupt.
    pub fn load_state(&mut self, r: &mut crate::snap::SnapReader<'_>) -> Result<(), crate::snap::SnapError> {
        let tag = r.u8("predictor variant")?;
        match (tag, &mut *self) {
            (0, AnyPredictor::Exact(_)) => Ok(()),
            (1, AnyPredictor::Faulty(p)) => {
                p.set_rng_state(r.u64("fault rng state")?);
                Ok(())
            }
            _ => Err(crate::snap::SnapError::new(format!(
                "predictor variant mismatch: snapshot has tag {tag}, machine has {}",
                match self {
                    AnyPredictor::Exact(_) => "the exact circuit",
                    AnyPredictor::Faulty(_) => "a faulted circuit",
                }
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddrFields, PredictorConfig};

    fn predictor() -> Predictor {
        Predictor::new(AddrFields::for_direct_mapped(16 * 1024, 16), PredictorConfig::default())
    }

    fn cases() -> Vec<(u32, Offset)> {
        vec![
            (0xac, Offset::Const(0)),
            (0x1000_0000, Offset::Const(0x984)),
            (0x7fff_5b84, Offset::Const(0x66)),
            (0x7fff_5b84, Offset::Const(0x16c)),
            (0x7fff_5b84, Offset::Const(-300)),
            (0x1000, Offset::Reg((-4i32) as u32)),
            (0x4000_0000, Offset::Reg(0xc)),
        ]
    }

    #[test]
    fn faults_never_touch_the_actual_address() {
        for plan in FaultPlan::builtin() {
            let mut fp = FaultyPredictor::new(predictor(), plan);
            for (base, ofs) in cases() {
                let exact = predictor().predict(base, ofs);
                let faulted = fp.predict(base, ofs);
                assert_eq!(faulted.actual, exact.actual, "plan {plan}: actual corrupted");
            }
        }
    }

    #[test]
    fn always_wrong_is_always_wrong() {
        let mut fp = FaultyPredictor::new(predictor(), FaultPlan::new(FaultKind::AlwaysWrong));
        for (base, ofs) in cases() {
            let pr = fp.predict(base, ofs);
            assert_ne!(pr.predicted, pr.actual);
        }
    }

    #[test]
    fn always_wrong_preserves_signals() {
        let mut fp = FaultyPredictor::new(predictor(), FaultPlan::new(FaultKind::AlwaysWrong));
        for (base, ofs) in cases() {
            assert_eq!(fp.predict(base, ofs).signals, predictor().predict(base, ofs).signals);
        }
    }

    #[test]
    fn flip_index_bit_flips_exactly_one_index_bit() {
        let p = predictor();
        for bit in [0u32, 3, 9, 31] {
            let plan = FaultPlan::new(FaultKind::FlipIndexBit { bit });
            let mut fp = FaultyPredictor::new(p, plan);
            for (base, ofs) in cases() {
                let exact = p.predict(base, ofs);
                let faulted = fp.predict(base, ofs);
                let diff = exact.predicted ^ faulted.predicted;
                assert_eq!(diff.count_ones(), 1, "plan {plan}");
                let f = p.fields();
                let lo = f.block_offset_bits();
                let bitpos = diff.trailing_zeros();
                assert!(
                    (lo..lo + f.index_bits()).contains(&bitpos),
                    "plan {plan}: corrupted bit {bitpos} outside index field"
                );
            }
        }
    }

    #[test]
    fn random_flip_is_deterministic_per_seed_and_hits_the_rate() {
        let plan = FaultPlan::new(FaultKind::RandomFlip { wrong_per_1024: 256 });
        let mut a = FaultyPredictor::new(predictor(), plan);
        let mut b = FaultyPredictor::new(predictor(), plan);
        let mut corrupted = 0u32;
        let total = 4096u32;
        for i in 0..total {
            let base = 0x1000_0000 + i * 16;
            let pa = a.predict(base, Offset::Const(4));
            let pb = b.predict(base, Offset::Const(4));
            assert_eq!(pa, pb, "same seed, same stream");
            if pa.predicted != pa.actual {
                corrupted += 1;
            }
        }
        // ~25% rate; allow generous slack.
        assert!((total / 8..total / 2).contains(&corrupted), "corrupted {corrupted}/{total}");

        let mut c = FaultyPredictor::new(predictor(), plan.with_seed(1));
        let pattern = |fp: &mut FaultyPredictor| -> Vec<bool> {
            (0..total)
                .map(|i| {
                    let pr = fp.predict(0x1000_0000 + i * 16, Offset::Const(4));
                    pr.predicted != pr.actual
                })
                .collect()
        };
        let mut b2 = FaultyPredictor::new(predictor(), plan);
        assert_ne!(
            pattern(&mut c),
            pattern(&mut b2),
            "different seed should corrupt different accesses"
        );
    }

    #[test]
    fn suppress_signals_only_hides_real_failures() {
        let plan = FaultPlan::new(FaultKind::SuppressSignals);
        let mut fp = FaultyPredictor::new(predictor(), plan);
        for (base, ofs) in cases() {
            let exact = predictor().predict(base, ofs);
            let faulted = fp.predict(base, ofs);
            assert_eq!(faulted.predicted, exact.predicted);
            if exact.predicted != exact.actual {
                assert!(!faulted.signals.any(), "alarm should be cut when it matters");
            } else {
                assert_eq!(faulted.signals, exact.signals, "correct predictions untouched");
            }
        }
    }

    #[test]
    fn silent_wrong_is_wrong_and_silent() {
        let mut fp = FaultyPredictor::new(predictor(), FaultPlan::new(FaultKind::SilentWrong));
        for (base, ofs) in cases() {
            let pr = fp.predict(base, ofs);
            assert_ne!(pr.predicted, pr.actual);
            assert!(!pr.signals.any());
            assert!(pr.is_correct(), "the circuit claims success — the backstop must not");
        }
    }

    #[test]
    fn any_predictor_exact_matches_plain() {
        let mut any = AnyPredictor::new(predictor(), None);
        for (base, ofs) in cases() {
            assert_eq!(any.predict(base, ofs), predictor().predict(base, ofs));
        }
    }

    #[test]
    fn parse_round_trips() {
        for text in [
            "always-wrong",
            "random-flip:256",
            "random-flip:64",
            "flip-index-bit:0",
            "flip-index-bit:7",
            "suppress-signals",
            "silent-wrong",
            "always-wrong@99",
            "random-flip:512@7",
        ] {
            let plan = FaultPlan::parse(text).unwrap();
            let shown = plan.to_string();
            assert_eq!(FaultPlan::parse(&shown).unwrap(), plan, "{text} -> {shown}");
        }
        assert_eq!(FaultPlan::parse("random-flip").unwrap().kind, FaultKind::RandomFlip {
            wrong_per_1024: 256
        });
        assert!(FaultPlan::parse("flip-index-bit").is_err());
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("always-wrong@notanumber").is_err());
    }

    #[test]
    fn builtin_plans_are_distinct() {
        let plans = FaultPlan::builtin();
        for (i, a) in plans.iter().enumerate() {
            for b in &plans[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
