//! Address field geometry: tag / set index / block offset.

use core::fmt;

/// Partition of a 32-bit effective address into *block offset*, *set index*
/// and *tag* fields for a particular cache geometry.
///
/// Using the paper's notation (Figure 4): `2^B` is the block size in bytes
/// and `2^S` is the size of a cache *set* in bytes, so the block offset is
/// bits `B-1:0`, the set index is bits `S-1:B` and the tag is bits `31:S`.
/// The fast-address-calculation circuit performs `B` bits of full addition
/// (the block offset), carry-free OR composition on the set index, and —
/// in the default design — full addition on the tag.
///
/// ```
/// use fac_core::AddrFields;
///
/// // 16 KB direct-mapped cache with 16-byte blocks (the Figure 5 geometry).
/// let f = AddrFields::for_direct_mapped(16 * 1024, 16);
/// assert_eq!(f.block_offset_bits(), 4);
/// assert_eq!(f.index_bits(), 10);
/// assert_eq!(f.block_offset(0x7fff5bea), 0xa);
/// assert_eq!(f.index(0x7fff5bea), 0x1be);
/// assert_eq!(f.tag(0x7fff5bea), 0x1fffd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrFields {
    block_offset_bits: u32,
    index_bits: u32,
}

impl AddrFields {
    /// Creates a field split from raw bit counts.
    ///
    /// # Panics
    ///
    /// Panics if the block offset and index together exceed 32 bits, or if
    /// the block offset is zero (the circuit needs at least one bit of full
    /// addition).
    pub fn new(block_offset_bits: u32, index_bits: u32) -> AddrFields {
        assert!(block_offset_bits >= 1, "block offset must be at least one bit");
        assert!(
            block_offset_bits + index_bits <= 32,
            "block offset ({block_offset_bits}) + index ({index_bits}) exceed 32 bits"
        );
        AddrFields { block_offset_bits, index_bits }
    }

    /// Field split for a direct-mapped cache of `cache_bytes` total capacity
    /// and `block_bytes` per block.
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two or `block_bytes` does not
    /// divide `cache_bytes`.
    pub fn for_direct_mapped(cache_bytes: u32, block_bytes: u32) -> AddrFields {
        AddrFields::for_set_associative(cache_bytes, block_bytes, 1)
    }

    /// Field split for a set-associative cache. The set index shrinks as
    /// associativity grows (only `cache_bytes / ways / block_bytes` sets).
    ///
    /// # Panics
    ///
    /// Panics if the sizes are not powers of two or inconsistent.
    pub fn for_set_associative(cache_bytes: u32, block_bytes: u32, ways: u32) -> AddrFields {
        assert!(cache_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(block_bytes.is_power_of_two(), "block size must be a power of two");
        assert!(ways.is_power_of_two() && ways >= 1, "ways must be a power of two");
        let sets = cache_bytes / block_bytes / ways;
        assert!(sets >= 1, "cache must have at least one set");
        AddrFields::new(block_bytes.trailing_zeros(), sets.trailing_zeros())
    }

    /// Number of block-offset bits (`B`).
    pub fn block_offset_bits(self) -> u32 {
        self.block_offset_bits
    }

    /// Number of set-index bits (`S - B`).
    pub fn index_bits(self) -> u32 {
        self.index_bits
    }

    /// Number of tag bits (`32 - S`).
    pub fn tag_bits(self) -> u32 {
        32 - self.block_offset_bits - self.index_bits
    }

    /// Mask covering the block-offset field (right-aligned).
    pub fn block_offset_mask(self) -> u32 {
        mask(self.block_offset_bits)
    }

    /// Mask covering the index field (right-aligned).
    pub fn index_mask(self) -> u32 {
        mask(self.index_bits)
    }

    /// Mask covering the tag field (right-aligned).
    pub fn tag_mask(self) -> u32 {
        mask(self.tag_bits())
    }

    /// Extracts the block offset of `addr`.
    pub fn block_offset(self, addr: u32) -> u32 {
        addr & self.block_offset_mask()
    }

    /// Extracts the set index of `addr` (right-aligned).
    pub fn index(self, addr: u32) -> u32 {
        (addr >> self.block_offset_bits) & self.index_mask()
    }

    /// Extracts the tag of `addr` (right-aligned).
    pub fn tag(self, addr: u32) -> u32 {
        if self.tag_bits() == 0 {
            0
        } else {
            (addr >> (self.block_offset_bits + self.index_bits)) & self.tag_mask()
        }
    }

    /// Reassembles an address from its fields. Inverse of the extractors.
    pub fn compose(self, tag: u32, index: u32, block_offset: u32) -> u32 {
        debug_assert_eq!(block_offset & !self.block_offset_mask(), 0);
        debug_assert_eq!(index & !self.index_mask(), 0);
        ((tag & self.tag_mask()) << (self.block_offset_bits + self.index_bits))
            | (index << self.block_offset_bits)
            | block_offset
    }
}

impl fmt::Display for AddrFields {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tag[31:{}] index[{}:{}] offset[{}:0]",
            self.block_offset_bits + self.index_bits,
            self.block_offset_bits + self.index_bits - 1,
            self.block_offset_bits,
            self.block_offset_bits - 1,
        )
    }
}

fn mask(bits: u32) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_16k_32b() {
        // The Table 5 baseline: 16 KB direct-mapped, 32-byte blocks.
        let f = AddrFields::for_direct_mapped(16 * 1024, 32);
        assert_eq!(f.block_offset_bits(), 5);
        assert_eq!(f.index_bits(), 9);
        assert_eq!(f.tag_bits(), 18);
    }

    #[test]
    fn set_associative_shrinks_index() {
        let dm = AddrFields::for_direct_mapped(16 * 1024, 32);
        let sa = AddrFields::for_set_associative(16 * 1024, 32, 4);
        assert_eq!(sa.index_bits(), dm.index_bits() - 2);
    }

    #[test]
    fn extract_compose_roundtrip() {
        let f = AddrFields::for_direct_mapped(16 * 1024, 16);
        for addr in [0u32, 0x7fff5b84, 0xdeadbeef, u32::MAX, 0x1000, 0xac] {
            assert_eq!(f.compose(f.tag(addr), f.index(addr), f.block_offset(addr)), addr);
        }
    }

    #[test]
    fn masks_cover_word() {
        let f = AddrFields::for_direct_mapped(16 * 1024, 32);
        assert_eq!(
            f.block_offset_mask().count_ones() + f.index_mask().count_ones()
                + f.tag_mask().count_ones(),
            32
        );
    }

    #[test]
    fn display_is_informative() {
        let f = AddrFields::for_direct_mapped(16 * 1024, 16);
        assert_eq!(f.to_string(), "tag[31:14] index[13:4] offset[3:0]");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_cache() {
        let _ = AddrFields::for_direct_mapped(3000, 16);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn rejects_zero_block_offset() {
        let _ = AddrFields::new(0, 8);
    }

    #[test]
    fn figure5_field_values() {
        // Figure 5 uses a 16 KB direct-mapped cache with 16-byte blocks.
        let f = AddrFields::for_direct_mapped(16 * 1024, 16);
        let sp = 0x7fff5b84u32;
        assert_eq!(f.block_offset(sp), 0x4);
        assert_eq!(f.index(sp), 0x1b8);
    }
}
