//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `sample_size`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery. Results
//! print one line per benchmark: median ns/iter over the collected samples.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { criterion: self, name, sample_size: None }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_one(&id.into(), samples, f);
        self
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    /// `None` inherits the parent `Criterion`'s sample size.
    sample_size: Option<usize>,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&format!("{}/{}", self.name, id.into()), samples, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(samples.max(1)), budget: samples };
    f(&mut bencher);
    let mut per_iter: Vec<f64> = bencher.samples;
    if per_iter.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!("  {id}: {median:.1} ns/iter ({} samples)", per_iter.len());
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the workload.
pub struct Bencher {
    samples: Vec<f64>,
    budget: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up briefly, then size the batch so one sample costs ~1ms.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(5) {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let batch = ((1_000_000.0 / per_iter.max(0.5)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.budget.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

/// Bundles benchmark fns into a callable group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
