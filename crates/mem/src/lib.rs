#![warn(missing_docs)]

//! # fac-mem — the memory subsystem
//!
//! Building blocks for the data memory hierarchy of the ISCA '95
//! fast-address-calculation evaluation:
//!
//! * [`Memory`] — a sparse, paged 32-bit byte-addressable memory holding the
//!   simulated program's data (little-endian, like the MIPS target the paper
//!   compiles for);
//! * [`Cache`] — a parameterized tag-array model of a write-back,
//!   write-allocate cache (direct-mapped or set-associative) with hit/miss
//!   and writeback statistics;
//! * [`StoreBuffer`] — the 16-entry non-merging store buffer of Table 5;
//! * [`Tlb`] — the 64-entry fully-associative data TLB used for the §5.4
//!   virtual-memory sanity check.
//!
//! ```
//! use fac_mem::{Cache, CacheConfig, Memory};
//!
//! let mut mem = Memory::new();
//! mem.write_u32(0x1000_0000, 0xdead_beef);
//! assert_eq!(mem.read_u32(0x1000_0000), 0xdead_beef);
//!
//! let mut dcache = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
//! assert!(!dcache.access(0x1000_0000, false).hit); // cold miss
//! assert!(dcache.access(0x1000_0004, false).hit);  // same block
//! ```

mod cache;
mod memory;
mod store_buffer;
mod tlb;

pub use cache::{AccessResult, Cache, CacheConfig, CacheStats};
pub use memory::Memory;
pub use store_buffer::{StoreBuffer, StoreEntry};
pub use tlb::{Tlb, TlbStats};
