//! Sparse paged byte-addressable memory.

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Second-level fan-out: pages per chunk. With 12-bit pages a 32-bit
/// address splits into 10 chunk bits, 10 page bits and 12 offset bits.
const L2_BITS: u32 = 10;
const L2_LEN: usize = 1 << L2_BITS;
/// First-level fan-out: chunks in the root table.
const L1_LEN: usize = 1 << (32 - PAGE_BITS - L2_BITS);

type Page = Box<[u8; PAGE_SIZE]>;

/// One first-level entry: up to [`L2_LEN`] lazily allocated pages.
#[derive(Clone, PartialEq, Eq)]
struct Chunk {
    pages: [Option<Page>; L2_LEN],
}

impl Chunk {
    fn boxed() -> Box<Chunk> {
        Box::new(Chunk { pages: std::array::from_fn(|_| None) })
    }
}

/// A sparse 32-bit byte-addressable little-endian memory.
///
/// Pages (4 KB) are allocated on first touch, which also gives a cheap
/// *memory usage* metric — the paper reports total memory size per program
/// (Table 3) and the change caused by the alignment optimizations (Table 4),
/// so [`Memory::footprint`] counts touched pages.
///
/// Reads of untouched memory return zero, like freshly mapped pages.
///
/// ```
/// use fac_mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u16(0x7fff_5b84, 0xabcd);
/// assert_eq!(m.read_u16(0x7fff_5b84), 0xabcd);
/// assert_eq!(m.read_u8(0x7fff_5b84), 0xcd); // little-endian
/// assert_eq!(m.read_u32(0x0), 0);           // untouched ⇒ zero
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Memory {
    /// Two-level direct-indexed page table: the page-table walk on the
    /// hottest executor path is two dependent indexed loads — no hashing,
    /// no probe loop. The root is 8 KB of pointers; chunks and pages are
    /// allocated on first touch.
    chunks: Box<[Option<Box<Chunk>>; L1_LEN]>,
    /// Distinct pages touched, maintained at allocation time.
    touched: usize,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory { chunks: Box::new(std::array::from_fn(|_| None)), touched: 0 }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("pages_touched", &self.touched).finish_non_exhaustive()
    }
}

/// Splits an address into root-table and chunk-local page indices.
#[inline]
fn split(addr: u32) -> (usize, usize) {
    let idx = addr >> PAGE_BITS;
    (((idx >> L2_BITS) as usize) & (L1_LEN - 1), (idx as usize) & (L2_LEN - 1))
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Total bytes of touched memory (page granularity).
    pub fn footprint(&self) -> u64 {
        self.touched as u64 * PAGE_SIZE as u64
    }

    /// Number of distinct pages touched.
    pub fn pages_touched(&self) -> usize {
        self.touched
    }

    /// `true` when the page containing `addr` has been touched (written or
    /// loaded from a program image). Reads of unmapped pages return zero;
    /// strict execution modes use this to trap them instead.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.page(addr).is_some()
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        let (ci, pi) = split(addr);
        self.chunks[ci].as_ref()?.pages[pi].as_deref()
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let (ci, pi) = split(addr);
        let chunk = self.chunks[ci].get_or_insert_with(Chunk::boxed);
        let slot = &mut chunk.pages[pi];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE]));
            self.touched += 1;
        }
        slot.as_mut().expect("filled above")
    }

    /// The in-page offset of `addr` when all `size` bytes land on one
    /// page — the fast path: one page lookup, one slice copy. `None` for
    /// a page-crossing access, which takes the byte-wise slow path.
    #[inline]
    fn intra(addr: u32, size: usize) -> Option<usize> {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        (off + size <= PAGE_SIZE).then_some(off)
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let idx = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[idx] = value;
    }

    /// Reads `N` little-endian bytes from one page (untouched ⇒ zeros).
    #[inline]
    fn read_within<const N: usize>(&self, addr: u32, off: usize) -> [u8; N] {
        match self.page(addr) {
            Some(p) => p[off..off + N].try_into().expect("intra-page slice"),
            None => [0u8; N],
        }
    }

    /// Reads a little-endian halfword. The address may be unaligned.
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        match Memory::intra(addr, 2) {
            Some(off) => u16::from_le_bytes(self.read_within(addr, off)),
            None => u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))]),
        }
    }

    /// Writes a little-endian halfword.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        match Memory::intra(addr, 2) {
            Some(off) => self.page_mut(addr)[off..off + 2].copy_from_slice(&value.to_le_bytes()),
            None => {
                let [b0, b1] = value.to_le_bytes();
                self.write_u8(addr, b0);
                self.write_u8(addr.wrapping_add(1), b1);
            }
        }
    }

    /// Reads a little-endian word.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        match Memory::intra(addr, 4) {
            Some(off) => u32::from_le_bytes(self.read_within(addr, off)),
            None => {
                let mut bytes = [0u8; 4];
                for (i, b) in bytes.iter_mut().enumerate() {
                    *b = self.read_u8(addr.wrapping_add(i as u32));
                }
                u32::from_le_bytes(bytes)
            }
        }
    }

    /// Writes a little-endian word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        match Memory::intra(addr, 4) {
            Some(off) => self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes()),
            None => {
                for (i, b) in value.to_le_bytes().into_iter().enumerate() {
                    self.write_u8(addr.wrapping_add(i as u32), b);
                }
            }
        }
    }

    /// Reads a little-endian doubleword.
    #[inline]
    pub fn read_u64(&self, addr: u32) -> u64 {
        match Memory::intra(addr, 8) {
            Some(off) => u64::from_le_bytes(self.read_within(addr, off)),
            None => {
                let lo = self.read_u32(addr) as u64;
                let hi = self.read_u32(addr.wrapping_add(4)) as u64;
                lo | (hi << 32)
            }
        }
    }

    /// Writes a little-endian doubleword.
    #[inline]
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        match Memory::intra(addr, 8) {
            Some(off) => self.page_mut(addr)[off..off + 8].copy_from_slice(&value.to_le_bytes()),
            None => {
                self.write_u32(addr, value as u32);
                self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
            }
        }
    }

    /// Reads an IEEE-754 single.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an IEEE-754 single.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads an IEEE-754 double.
    pub fn read_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an IEEE-754 double.
    pub fn write_f64(&mut self, addr: u32, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Serializes every touched page for a machine checkpoint. The table
    /// walk visits pages in ascending page-index order, so the encoding is
    /// a pure function of memory contents.
    pub fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        w.len_of(self.touched);
        for (ci, chunk) in self.chunks.iter().enumerate() {
            let Some(chunk) = chunk else { continue };
            for (pi, page) in chunk.pages.iter().enumerate() {
                let Some(page) = page else { continue };
                w.u32(((ci as u32) << L2_BITS) | pi as u32);
                w.bytes(&page[..]);
            }
        }
    }

    /// Rebuilds a memory from [`Memory::save_state`].
    ///
    /// # Errors
    ///
    /// [`fac_core::snap::SnapError`] on truncation, a short/long page, or a
    /// duplicated page index.
    pub fn load_state(
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<Memory, fac_core::snap::SnapError> {
        let n = r.len_of(1 << (32 - PAGE_BITS), "memory page count")?;
        let mut mem = Memory::new();
        for _ in 0..n {
            let idx = r.u32("memory page index")?;
            let bytes = r.bytes("memory page contents")?;
            let page: [u8; PAGE_SIZE] = bytes.try_into().map_err(|_| {
                fac_core::snap::SnapError::new(format!(
                    "memory page {idx:#x} has {} bytes, expected {PAGE_SIZE}",
                    bytes.len()
                ))
            })?;
            let addr = idx << PAGE_BITS;
            if mem.is_mapped(addr) {
                return Err(fac_core::snap::SnapError::new(format!(
                    "memory page {idx:#x} appears twice in the snapshot"
                )));
            }
            *mem.page_mut(addr) = page;
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_first_touch() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(u32::MAX), 0);
        assert_eq!(m.footprint(), 0);
    }

    #[test]
    fn widths_roundtrip() {
        let mut m = Memory::new();
        m.write_u8(0x100, 0xab);
        m.write_u16(0x200, 0xcdef);
        m.write_u32(0x300, 0x0123_4567);
        m.write_u64(0x400, 0x89ab_cdef_0123_4567);
        assert_eq!(m.read_u8(0x100), 0xab);
        assert_eq!(m.read_u16(0x200), 0xcdef);
        assert_eq!(m.read_u32(0x300), 0x0123_4567);
        assert_eq!(m.read_u64(0x400), 0x89ab_cdef_0123_4567);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x10, 0x0102_0304);
        assert_eq!(m.read_u8(0x10), 0x04);
        assert_eq!(m.read_u8(0x13), 0x01);
        assert_eq!(m.read_u16(0x12), 0x0102);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1fff; // last byte of a page
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn floats_roundtrip() {
        let mut m = Memory::new();
        m.write_f32(0x20, 3.25);
        m.write_f64(0x28, -1.5e300);
        assert_eq!(m.read_f32(0x20), 3.25);
        assert_eq!(m.read_f64(0x28), -1.5e300);
    }

    #[test]
    fn footprint_counts_pages_once() {
        let mut m = Memory::new();
        m.write_u8(0x1000, 1);
        m.write_u8(0x1fff, 2);
        assert_eq!(m.footprint(), 4096);
        m.write_u8(0x2000, 3);
        assert_eq!(m.footprint(), 8192);
    }

    #[test]
    fn bulk_bytes() {
        let mut m = Memory::new();
        m.write_bytes(0x500, b"hello, cache");
        assert_eq!(m.read_bytes(0x500, 12), b"hello, cache");
    }
}
