//! Sparse paged byte-addressable memory.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse 32-bit byte-addressable little-endian memory.
///
/// Pages (4 KB) are allocated on first touch, which also gives a cheap
/// *memory usage* metric — the paper reports total memory size per program
/// (Table 3) and the change caused by the alignment optimizations (Table 4),
/// so [`Memory::footprint`] counts touched pages.
///
/// Reads of untouched memory return zero, like freshly mapped pages.
///
/// ```
/// use fac_mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u16(0x7fff_5b84, 0xabcd);
/// assert_eq!(m.read_u16(0x7fff_5b84), 0xabcd);
/// assert_eq!(m.read_u8(0x7fff_5b84), 0xcd); // little-endian
/// assert_eq!(m.read_u32(0x0), 0);           // untouched ⇒ zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Total bytes of touched memory (page granularity).
    pub fn footprint(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    /// Number of distinct pages touched.
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }

    /// `true` when the page containing `addr` has been touched (written or
    /// loaded from a program image). Reads of unmapped pages return zero;
    /// strict execution modes use this to trap them instead.
    pub fn is_mapped(&self, addr: u32) -> bool {
        self.pages.contains_key(&(addr >> PAGE_BITS))
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let idx = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[idx] = value;
    }

    /// Reads a little-endian halfword. The address may be unaligned.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [b0, b1] = value.to_le_bytes();
        self.write_u8(addr, b0);
        self.write_u8(addr.wrapping_add(1), b1);
    }

    /// Reads a little-endian word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u32));
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads a little-endian doubleword.
    pub fn read_u64(&self, addr: u32) -> u64 {
        let lo = self.read_u32(addr) as u64;
        let hi = self.read_u32(addr.wrapping_add(4)) as u64;
        lo | (hi << 32)
    }

    /// Writes a little-endian doubleword.
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_u32(addr, value as u32);
        self.write_u32(addr.wrapping_add(4), (value >> 32) as u32);
    }

    /// Reads an IEEE-754 single.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an IEEE-754 single.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads an IEEE-754 double.
    pub fn read_f64(&self, addr: u32) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an IEEE-754 double.
    pub fn write_f64(&mut self, addr: u32, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Serializes every touched page for a machine checkpoint. Pages are
    /// written in ascending page-index order so the encoding is a pure
    /// function of memory contents, never of `HashMap` iteration order.
    pub fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        let mut indices: Vec<u32> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        w.len_of(indices.len());
        for idx in indices {
            w.u32(idx);
            w.bytes(&self.pages[&idx][..]);
        }
    }

    /// Rebuilds a memory from [`Memory::save_state`].
    ///
    /// # Errors
    ///
    /// [`fac_core::snap::SnapError`] on truncation, a short/long page, or a
    /// duplicated page index.
    pub fn load_state(
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<Memory, fac_core::snap::SnapError> {
        let n = r.len_of(1 << (32 - PAGE_BITS), "memory page count")?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let idx = r.u32("memory page index")?;
            let bytes = r.bytes("memory page contents")?;
            let page: [u8; PAGE_SIZE] = bytes.try_into().map_err(|_| {
                fac_core::snap::SnapError::new(format!(
                    "memory page {idx:#x} has {} bytes, expected {PAGE_SIZE}",
                    bytes.len()
                ))
            })?;
            if pages.insert(idx, Box::new(page)).is_some() {
                return Err(fac_core::snap::SnapError::new(format!(
                    "memory page {idx:#x} appears twice in the snapshot"
                )));
            }
        }
        Ok(Memory { pages })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_first_touch() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(u32::MAX), 0);
        assert_eq!(m.footprint(), 0);
    }

    #[test]
    fn widths_roundtrip() {
        let mut m = Memory::new();
        m.write_u8(0x100, 0xab);
        m.write_u16(0x200, 0xcdef);
        m.write_u32(0x300, 0x0123_4567);
        m.write_u64(0x400, 0x89ab_cdef_0123_4567);
        assert_eq!(m.read_u8(0x100), 0xab);
        assert_eq!(m.read_u16(0x200), 0xcdef);
        assert_eq!(m.read_u32(0x300), 0x0123_4567);
        assert_eq!(m.read_u64(0x400), 0x89ab_cdef_0123_4567);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x10, 0x0102_0304);
        assert_eq!(m.read_u8(0x10), 0x04);
        assert_eq!(m.read_u8(0x13), 0x01);
        assert_eq!(m.read_u16(0x12), 0x0102);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1fff; // last byte of a page
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn floats_roundtrip() {
        let mut m = Memory::new();
        m.write_f32(0x20, 3.25);
        m.write_f64(0x28, -1.5e300);
        assert_eq!(m.read_f32(0x20), 3.25);
        assert_eq!(m.read_f64(0x28), -1.5e300);
    }

    #[test]
    fn footprint_counts_pages_once() {
        let mut m = Memory::new();
        m.write_u8(0x1000, 1);
        m.write_u8(0x1fff, 2);
        assert_eq!(m.footprint(), 4096);
        m.write_u8(0x2000, 3);
        assert_eq!(m.footprint(), 8192);
    }

    #[test]
    fn bulk_bytes() {
        let mut m = Memory::new();
        m.write_bytes(0x500, b"hello, cache");
        assert_eq!(m.read_bytes(0x500, 12), b"hello, cache");
    }
}
