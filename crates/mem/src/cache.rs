//! Parameterized cache tag-array model.

use core::fmt;

/// Geometry and policy of a [`Cache`].
///
/// The model is a *tag array*: it tracks which blocks are resident (and
/// dirty) to produce hit/miss/writeback behavior; data always lives in
/// [`crate::Memory`]. This is exactly what the timing simulation needs and
/// mirrors how trace-driven cache simulators of the era worked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub ways: u32,
    /// Write-back (true) or write-through (false). The paper's data cache
    /// is write-back, write-allocate (Table 5).
    pub write_back: bool,
    /// Allocate a block on a write miss.
    pub write_allocate: bool,
}

impl CacheConfig {
    /// Direct-mapped, write-back, write-allocate cache — the Table 5 shape.
    pub fn direct_mapped(size_bytes: u32, block_bytes: u32) -> CacheConfig {
        CacheConfig {
            size_bytes,
            block_bytes,
            ways: 1,
            write_back: true,
            write_allocate: true,
        }
    }

    /// Set-associative variant of [`CacheConfig::direct_mapped`].
    pub fn set_associative(size_bytes: u32, block_bytes: u32, ways: u32) -> CacheConfig {
        CacheConfig { ways, ..CacheConfig::direct_mapped(size_bytes, block_bytes) }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / self.block_bytes / self.ways
    }

    fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "cache size must be a power of two");
        assert!(self.block_bytes.is_power_of_two(), "block size must be a power of two");
        assert!(self.ways.is_power_of_two() && self.ways >= 1, "ways must be a power of two");
        assert!(self.sets() >= 1, "cache must have at least one set");
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The access hit in the cache.
    pub hit: bool,
    /// A dirty block was evicted (write-back traffic).
    pub writeback: bool,
}

/// Aggregate cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (reads + writes).
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Total misses.
    pub misses: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all accesses; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} misses ({:.2}%), {} writebacks",
            self.accesses,
            self.misses,
            self.miss_ratio() * 100.0,
            self.writebacks
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// LRU timestamp (larger = more recent).
    stamp: u64,
}

/// A write-back/write-allocate cache tag array with LRU replacement.
///
/// ```
/// use fac_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::direct_mapped(1024, 32));
/// assert!(!c.access(0x0, false).hit);
/// assert!(c.access(0x1c, false).hit);       // same block
/// assert!(!c.access(0x400, false).hit);     // conflicting block
/// assert!(!c.access(0x0, false).hit);       // original was evicted
/// assert_eq!(c.stats().misses, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (non-power-of-two sizes).
    pub fn new(config: CacheConfig) -> Cache {
        config.validate();
        let lines = vec![Line::default(); (config.sets() * config.ways) as usize];
        Cache { config, lines, stats: CacheStats::default(), tick: 0 }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Serializes the tag array, statistics and LRU clock for a machine
    /// checkpoint.
    pub fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        w.len_of(self.lines.len());
        for l in &self.lines {
            w.bool(l.valid);
            w.bool(l.dirty);
            w.u32(l.tag);
            w.u64(l.stamp);
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.reads);
        w.u64(self.stats.writes);
        w.u64(self.stats.misses);
        w.u64(self.stats.read_misses);
        w.u64(self.stats.writebacks);
        w.u64(self.tick);
    }

    /// Restores [`Cache::save_state`] into a cache of the same geometry.
    ///
    /// # Errors
    ///
    /// [`fac_core::snap::SnapError`] when the line count differs from this
    /// cache's or the buffer is corrupt.
    pub fn load_state(
        &mut self,
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<(), fac_core::snap::SnapError> {
        let n = r.len_of(self.lines.len(), "cache lines")?;
        if n != self.lines.len() {
            return Err(fac_core::snap::SnapError::new(format!(
                "cache geometry mismatch: snapshot has {n} lines, cache has {}",
                self.lines.len()
            )));
        }
        for l in &mut self.lines {
            l.valid = r.bool("cache line valid")?;
            l.dirty = r.bool("cache line dirty")?;
            l.tag = r.u32("cache line tag")?;
            l.stamp = r.u64("cache line stamp")?;
        }
        self.stats.accesses = r.u64("cache stats accesses")?;
        self.stats.reads = r.u64("cache stats reads")?;
        self.stats.writes = r.u64("cache stats writes")?;
        self.stats.misses = r.u64("cache stats misses")?;
        self.stats.read_misses = r.u64("cache stats read_misses")?;
        self.stats.writebacks = r.u64("cache stats writebacks")?;
        self.tick = r.u64("cache tick")?;
        Ok(())
    }

    fn set_index(&self, addr: u32) -> u32 {
        (addr / self.config.block_bytes) & (self.config.sets() - 1)
    }

    fn tag(&self, addr: u32) -> u32 {
        addr / self.config.block_bytes / self.config.sets()
    }

    fn set_range(&self, set: u32) -> std::ops::Range<usize> {
        let start = (set * self.config.ways) as usize;
        start..start + self.config.ways as usize
    }

    /// Checks residency without updating state or statistics.
    pub fn probe(&self, addr: u32) -> bool {
        let tag = self.tag(addr);
        self.lines[self.set_range(self.set_index(addr))]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs an access (read if `write` is false), updating replacement
    /// state and statistics, and allocating/evicting per the write policy.
    pub fn access(&mut self, addr: u32, write: bool) -> AccessResult {
        self.tick += 1;
        self.stats.accesses += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        let tag = self.tag(addr);
        let range = self.set_range(self.set_index(addr));
        let tick = self.tick;

        // Hit path.
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.stamp = tick;
            if write && self.config.write_back {
                line.dirty = true;
            }
            return AccessResult { hit: true, writeback: false };
        }

        // Miss path.
        self.stats.misses += 1;
        if !write {
            self.stats.read_misses += 1;
        }

        let allocate = !write || self.config.write_allocate;
        let mut writeback = false;
        if allocate {
            let victim = self.lines[range]
                .iter_mut()
                .min_by_key(|l| if l.valid { l.stamp } else { 0 })
                .expect("cache set is non-empty");
            if victim.valid && victim.dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
            *victim = Line {
                valid: true,
                dirty: write && self.config.write_back,
                tag,
                stamp: tick,
            };
        }
        AccessResult { hit: false, writeback }
    }

    /// Invalidates everything (keeps statistics).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig::direct_mapped(256, 16)) // 16 sets
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x4f, false).hit); // same 16-byte block
        assert!(!c.access(0x50, false).hit); // next block
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = small();
        c.access(0x00, false);
        c.access(0x100, false); // same set, different tag: evicts
        assert!(!c.access(0x00, false).hit);
    }

    #[test]
    fn write_back_generates_writeback_on_eviction() {
        let mut c = small();
        c.access(0x00, true); // allocate dirty
        let r = c.access(0x100, false); // evicts dirty block
        assert!(!r.hit);
        assert!(r.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x00, false);
        let r = c.access(0x100, false);
        assert!(!r.hit && !r.writeback);
    }

    #[test]
    fn set_associative_lru() {
        let mut c = Cache::new(CacheConfig::set_associative(256, 16, 2)); // 8 sets
        // Three blocks mapping to the same set (stride = sets*block = 128).
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000: now 0x080 is LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.access(0x000, false).hit);
        assert!(!c.access(0x080, false).hit);
    }

    #[test]
    fn write_no_allocate_skips_allocation() {
        let mut cfg = CacheConfig::direct_mapped(256, 16);
        cfg.write_allocate = false;
        let mut c = Cache::new(cfg);
        assert!(!c.access(0x40, true).hit);
        assert!(!c.access(0x40, false).hit); // still not resident
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x40, false);
        let before = *c.stats();
        assert!(c.probe(0x40));
        assert!(!c.probe(0x140));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0x40, false);
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn stats_display() {
        let mut c = small();
        c.access(0x0, false);
        assert_eq!(c.stats().to_string(), "1 accesses, 1 misses (100.00%), 0 writebacks");
    }

    #[test]
    fn table5_geometry() {
        let c = Cache::new(CacheConfig::direct_mapped(16 * 1024, 32));
        assert_eq!(c.config().sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        let _ = Cache::new(CacheConfig::direct_mapped(3000, 32));
    }
}
