//! The non-merging store buffer (Table 5: 16 entries).

use std::collections::VecDeque;

/// One buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// Effective address of the store.
    pub addr: u32,
    /// Access size in bytes.
    pub size: u32,
    /// Cycle at which the store entered the buffer.
    pub entered: u64,
}

/// A bounded, FIFO, **non-merging** store buffer.
///
/// Stores are serviced in two cycles (§5.5): the first cycle probes the
/// tags, then the buffered data retires to the data cache during cycles in
/// which the cache is otherwise unused. If a store executes while the
/// buffer is full, the pipeline stalls and the oldest entry is forced out.
/// The timing simulator owns the retire policy; this type owns capacity and
/// ordering, plus occupancy statistics.
///
/// ```
/// use fac_mem::StoreBuffer;
///
/// let mut sb = StoreBuffer::new(2);
/// assert!(sb.push(0x100, 4, 10).is_none());
/// assert!(sb.push(0x104, 4, 11).is_none());
/// // Full: pushing returns the displaced oldest entry (a stall).
/// let displaced = sb.push(0x108, 4, 12).unwrap();
/// assert_eq!(displaced.addr, 0x100);
/// ```
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<StoreEntry>,
    capacity: usize,
    full_stalls: u64,
    total_pushed: u64,
}

impl StoreBuffer {
    /// Creates an empty buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> StoreBuffer {
        assert!(capacity > 0, "store buffer capacity must be positive");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            full_stalls: 0,
            total_pushed: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when at capacity (the next push stalls the pipeline).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Number of pushes that found the buffer full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Total stores pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Enqueues a store. If the buffer is full, the oldest entry is
    /// force-retired and returned — the caller must account for the stall.
    pub fn push(&mut self, addr: u32, size: u32, cycle: u64) -> Option<StoreEntry> {
        self.total_pushed += 1;
        let displaced = if self.is_full() {
            self.full_stalls += 1;
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(StoreEntry { addr, size, entered: cycle });
        displaced
    }

    /// Retires (dequeues) the oldest store, if any.
    pub fn retire(&mut self) -> Option<StoreEntry> {
        self.entries.pop_front()
    }

    /// The oldest store without removing it.
    pub fn peek(&self) -> Option<&StoreEntry> {
        self.entries.front()
    }

    /// Updates the address of the most recent entry — used when a
    /// misspeculated store re-executes and its buffered address must be
    /// corrected (§3.1: "the store buffer entry can simply be reclaimed or
    /// invalidated if the effective address is incorrect").
    pub fn fix_newest_addr(&mut self, addr: u32) {
        if let Some(e) = self.entries.back_mut() {
            e.addr = addr;
        }
    }

    /// Any buffered store overlapping the byte range `[addr, addr+size)`.
    pub fn overlaps(&self, addr: u32, size: u32) -> bool {
        self.entries
            .iter()
            .any(|e| addr < e.addr.wrapping_add(e.size) && e.addr < addr.wrapping_add(size))
    }

    /// Drops all entries (e.g. at simulation end).
    pub fn drain(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        sb.push(1, 4, 0);
        sb.push(2, 4, 1);
        sb.push(3, 4, 2);
        assert_eq!(sb.retire().unwrap().addr, 1);
        assert_eq!(sb.retire().unwrap().addr, 2);
        assert_eq!(sb.retire().unwrap().addr, 3);
        assert!(sb.retire().is_none());
    }

    #[test]
    fn full_push_displaces_oldest_and_counts_stall() {
        let mut sb = StoreBuffer::new(2);
        sb.push(1, 4, 0);
        sb.push(2, 4, 0);
        let d = sb.push(3, 4, 0).unwrap();
        assert_eq!(d.addr, 1);
        assert_eq!(sb.full_stalls(), 1);
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.peek().unwrap().addr, 2);
    }

    #[test]
    fn fix_newest_addr_targets_last_entry() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0x10, 4, 0);
        sb.push(0x20, 4, 0);
        sb.fix_newest_addr(0x24);
        assert_eq!(sb.retire().unwrap().addr, 0x10);
        assert_eq!(sb.retire().unwrap().addr, 0x24);
    }

    #[test]
    fn overlap_detection() {
        let mut sb = StoreBuffer::new(4);
        sb.push(0x100, 4, 0);
        assert!(sb.overlaps(0x102, 1));
        assert!(sb.overlaps(0xfe, 4));
        assert!(!sb.overlaps(0x104, 4));
        assert!(!sb.overlaps(0xfc, 4));
    }

    #[test]
    fn drain_empties() {
        let mut sb = StoreBuffer::new(4);
        sb.push(1, 1, 0);
        sb.push(2, 1, 0);
        assert_eq!(sb.drain(), 2);
        assert!(sb.is_empty());
        assert_eq!(sb.total_pushed(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = StoreBuffer::new(0);
    }
}
