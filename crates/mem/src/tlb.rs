//! Data TLB model (§5.4: 64-entry fully-associative, random replacement,
//! 4 KB pages).

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Miss ratio; 0 when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A fully-associative TLB with random replacement.
///
/// The paper uses this model only as a sanity check that the alignment
/// optimizations do not hurt virtual-memory behavior (§5.4 reports the
/// largest absolute miss-ratio change as under 0.1%); the random victim
/// choice uses a deterministic xorshift generator so simulations are
/// reproducible.
///
/// ```
/// use fac_mem::Tlb;
///
/// let mut tlb = Tlb::new(64, 4096);
/// assert!(!tlb.access(0x1000_0000)); // cold miss
/// assert!(tlb.access(0x1000_0fff));  // same page
/// assert!(!tlb.access(0x1000_1000)); // next page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Option<u32>>,
    page_bits: u32,
    stats: TlbStats,
    rng: u64,
}

impl Tlb {
    /// Creates an empty TLB with `entries` slots and the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: u32) -> Tlb {
        assert!(entries > 0, "TLB must have at least one entry");
        assert!(page_bytes.is_power_of_two(), "page size must be a power of two");
        Tlb {
            entries: vec![None; entries],
            page_bits: page_bytes.trailing_zeros(),
            stats: TlbStats::default(),
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic, good enough for victim selection.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Translates `vaddr`; returns `true` on a TLB hit. Misses install the
    /// page, evicting a random victim when full.
    pub fn access(&mut self, vaddr: u32) -> bool {
        self.stats.accesses += 1;
        let vpn = vaddr >> self.page_bits;
        if self.entries.contains(&Some(vpn)) {
            return true;
        }
        self.stats.misses += 1;
        if let Some(slot) = self.entries.iter_mut().find(|e| e.is_none()) {
            *slot = Some(vpn);
        } else {
            let len = self.entries.len();
            let victim = (self.next_random() % len as u64) as usize;
            self.entries[victim] = Some(vpn);
        }
        false
    }

    /// Serializes the translation array, statistics and the random-victim
    /// generator state for a machine checkpoint — the RNG stream must
    /// resume exactly or a restored run would evict different victims.
    pub fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        w.len_of(self.entries.len());
        for e in &self.entries {
            match e {
                None => w.bool(false),
                Some(vpn) => {
                    w.bool(true);
                    w.u32(*vpn);
                }
            }
        }
        w.u32(self.page_bits);
        w.u64(self.stats.accesses);
        w.u64(self.stats.misses);
        w.u64(self.rng);
    }

    /// Restores [`Tlb::save_state`] into a TLB of the same geometry.
    ///
    /// # Errors
    ///
    /// [`fac_core::snap::SnapError`] when the entry count or page size
    /// differs from this TLB's, or the buffer is corrupt.
    pub fn load_state(
        &mut self,
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<(), fac_core::snap::SnapError> {
        let n = r.len_of(self.entries.len(), "tlb entries")?;
        if n != self.entries.len() {
            return Err(fac_core::snap::SnapError::new(format!(
                "tlb geometry mismatch: snapshot has {n} entries, tlb has {}",
                self.entries.len()
            )));
        }
        for e in &mut self.entries {
            *e = if r.bool("tlb entry present")? {
                Some(r.u32("tlb entry vpn")?)
            } else {
                None
            };
        }
        let page_bits = r.u32("tlb page bits")?;
        if page_bits != self.page_bits {
            return Err(fac_core::snap::SnapError::new(format!(
                "tlb page-size mismatch: snapshot has {page_bits} page bits, tlb has {}",
                self.page_bits
            )));
        }
        self.stats.accesses = r.u64("tlb stats accesses")?;
        self.stats.misses = r.u64("tlb stats misses")?;
        self.rng = r.u64("tlb rng state")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_within_page_miss_across() {
        let mut tlb = Tlb::new(4, 4096);
        assert!(!tlb.access(0x0000));
        assert!(tlb.access(0x0abc));
        assert!(!tlb.access(0x1000));
        assert_eq!(tlb.stats().accesses, 3);
        assert_eq!(tlb.stats().misses, 2);
    }

    #[test]
    fn capacity_misses_after_working_set_exceeds_entries() {
        let mut tlb = Tlb::new(2, 4096);
        tlb.access(0x0000);
        tlb.access(0x1000);
        tlb.access(0x2000); // evicts someone
        let hits = (0..3)
            .map(|i| tlb.access((i as u32) << 12))
            .filter(|&h| h)
            .count();
        assert!(hits < 3, "at most two of three pages can be resident");
    }

    #[test]
    fn deterministic_replacement() {
        let run = || {
            let mut tlb = Tlb::new(4, 4096);
            let mut hits = 0u32;
            for i in 0..1000u32 {
                if tlb.access((i % 7) << 12) {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn miss_ratio_sane() {
        let mut tlb = Tlb::new(64, 4096);
        for i in 0..64u32 {
            tlb.access(i << 12);
        }
        for i in 0..64u32 {
            assert!(tlb.access(i << 12), "page {i} should be resident");
        }
        assert!((tlb.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_rejected() {
        let _ = Tlb::new(0, 4096);
    }
}
