//! Model-checking property tests: the cache against a naive reference
//! implementation, the memory against a `HashMap` of bytes, and the store
//! buffer against a plain FIFO.

use fac_mem::{Cache, CacheConfig, Memory, StoreBuffer};
use proptest::prelude::*;
use std::collections::HashMap;

/// A deliberately naive LRU cache: a vector of (set, tag, dirty) with
/// timestamps, no cleverness. The real cache must agree exactly.
struct RefCache {
    cfg: CacheConfig,
    lines: Vec<(u32, u32, bool, u64)>, // (set, tag, dirty, stamp)
    tick: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache { cfg, lines: Vec::new(), tick: 0 }
    }

    fn access(&mut self, addr: u32, write: bool) -> (bool, bool) {
        self.tick += 1;
        let block = addr / self.cfg.block_bytes;
        let set = block % self.cfg.sets();
        let tag = block / self.cfg.sets();
        if let Some(line) = self.lines.iter_mut().find(|l| l.0 == set && l.1 == tag) {
            line.3 = self.tick;
            if write && self.cfg.write_back {
                line.2 = true;
            }
            return (true, false);
        }
        // Miss.
        let mut writeback = false;
        if !write || self.cfg.write_allocate {
            let in_set = self.lines.iter().filter(|l| l.0 == set).count();
            if in_set as u32 >= self.cfg.ways {
                // Evict LRU within the set.
                let idx = self
                    .lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.0 == set)
                    .min_by_key(|(_, l)| l.3)
                    .map(|(i, _)| i)
                    .expect("set non-empty");
                writeback = self.lines[idx].2;
                self.lines.remove(idx);
            }
            self.lines.push((set, tag, write && self.cfg.write_back, self.tick));
        }
        (false, writeback)
    }
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..=3, 4u32..=6, any::<bool>(), any::<bool>()).prop_map(
        |(ways_log, block_log, write_back, write_allocate)| CacheConfig {
            size_bytes: 1024,
            block_bytes: 1 << block_log,
            ways: 1 << ways_log,
            write_back,
            write_allocate,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The production cache agrees with the naive reference on every
    /// access of a random trace, for every geometry and write policy.
    #[test]
    fn cache_matches_reference_model(
        cfg in arb_config(),
        trace in proptest::collection::vec((0u32..8192, any::<bool>()), 1..300),
    ) {
        let mut real = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &(addr, write)) in trace.iter().enumerate() {
            let r = real.access(addr, write);
            let (hit, wb) = reference.access(addr, write);
            prop_assert_eq!(r.hit, hit, "access {}: addr {:#x} write {}", i, addr, write);
            prop_assert_eq!(r.writeback, wb, "access {}: writeback mismatch", i);
        }
        // Statistics agree with the trace.
        prop_assert_eq!(real.stats().accesses, trace.len() as u64);
        prop_assert_eq!(
            real.stats().writes,
            trace.iter().filter(|t| t.1).count() as u64
        );
    }

    /// Byte memory agrees with a HashMap reference under random reads and
    /// writes of mixed widths.
    #[test]
    fn memory_matches_hashmap(
        ops in proptest::collection::vec(
            (any::<u32>(), 0u8..3, any::<u32>(), any::<bool>()),
            1..200,
        ),
    ) {
        let mut mem = Memory::new();
        let mut reference: HashMap<u32, u8> = HashMap::new();
        for &(addr, width, value, is_write) in &ops {
            let size = 1u32 << width; // 1, 2, or 4 bytes
            if is_write {
                match size {
                    1 => mem.write_u8(addr, value as u8),
                    2 => mem.write_u16(addr, value as u16),
                    _ => mem.write_u32(addr, value),
                }
                for i in 0..size {
                    reference.insert(
                        addr.wrapping_add(i),
                        (value >> (8 * i)) as u8,
                    );
                }
            } else {
                let got = match size {
                    1 => mem.read_u8(addr) as u32,
                    2 => mem.read_u16(addr) as u32,
                    _ => mem.read_u32(addr),
                };
                let mut want = 0u32;
                for i in 0..size {
                    want |= (*reference.get(&addr.wrapping_add(i)).unwrap_or(&0) as u32)
                        << (8 * i);
                }
                prop_assert_eq!(got, want, "read {}B at {:#x}", size, addr);
            }
        }
    }

    /// The store buffer is an exact bounded FIFO.
    #[test]
    fn store_buffer_is_a_bounded_fifo(
        ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..200),
        cap in 1usize..8,
    ) {
        let mut sb = StoreBuffer::new(cap);
        let mut reference: Vec<u32> = Vec::new();
        for (i, &(addr, push)) in ops.iter().enumerate() {
            if push {
                let displaced = sb.push(addr, 4, i as u64);
                if reference.len() == cap {
                    let oldest = reference.remove(0);
                    prop_assert_eq!(displaced.map(|e| e.addr), Some(oldest));
                } else {
                    prop_assert!(displaced.is_none());
                }
                reference.push(addr);
            } else {
                let got = sb.retire().map(|e| e.addr);
                let want = if reference.is_empty() { None } else { Some(reference.remove(0)) };
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(sb.len(), reference.len());
        }
    }
}
