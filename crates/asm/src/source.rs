//! A text-source front end for the program builder: assemble a whole
//! program from assembly text with labels, data directives and symbolic
//! operands, producing an [`Asm`] ready to [`Asm::link`].
//!
//! Syntax (one statement per line; `;` or `#` start comments):
//!
//! ```text
//! .gpword   counter 0          ; small global word, initial value
//! .gpdouble scale 2.5          ; small global double
//! .gparray  table 256 4        ; small zero array: size, natural align
//! .fararray buf 4096 4         ; large zero array outside the gp region
//! .farwords lut 1 2 3 4        ; initialized far words
//!
//! main:
//!     lw   $t0, counter($gp)   ; gp-relative access by symbol
//!     la   $s0, buf+16         ; full address of a far symbol
//!     addiu $t0, $t0, 1
//!     sw   $t0, counter($gp)
//!     bne  $t0, $zero, main    ; branches/jumps take labels
//!     halt
//! ```
//!
//! Plain instructions use exactly the disassembler syntax (see
//! [`fac_isa::parse_insn`]).

use crate::{Asm, SoftwareSupport};
use fac_isa::{parse_insn, Reg};
use core::fmt;

/// Error from [`assemble`], with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AssembleError {}

fn fail<T>(line: usize, message: impl Into<String>) -> Result<T, AssembleError> {
    Err(AssembleError { line, message: message.into() })
}

fn split_sym_offset(tok: &str) -> (&str, i32) {
    if let Some((s, o)) = tok.split_once('+') {
        if let Ok(off) = o.trim().parse::<i32>() {
            return (s.trim(), off);
        }
    }
    if let Some((s, o)) = tok.rsplit_once('-') {
        if !s.is_empty() {
            if let Ok(off) = o.trim().parse::<i32>() {
                return (s.trim(), -off);
            }
        }
    }
    (tok.trim(), 0)
}

fn is_symbolic(tok: &str) -> bool {
    tok.chars()
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false)
        && !tok.starts_with('$')
}

/// A gp-relative access with a symbolic displacement: `op reg, sym($gp)`.
fn try_gp_access(a: &mut Asm, mnemonic: &str, ops: &[&str]) -> Result<bool, String> {
    if ops.len() != 2 {
        return Ok(false);
    }
    let Some(inner) = ops[1].strip_suffix("($gp)") else {
        return Ok(false);
    };
    if !is_symbolic(inner) {
        return Ok(false); // a numeric gp displacement parses normally
    }
    let (sym, extra) = split_sym_offset(inner);
    match mnemonic {
        "lw" => a.lw_gp(parse_int_reg(ops[0])?, sym, extra),
        "sw" => a.sw_gp(parse_int_reg(ops[0])?, sym, extra),
        "l.d" => a.l_d_gp(parse_fp_reg(ops[0])?, sym, extra),
        "s.d" => a.s_d_gp(parse_fp_reg(ops[0])?, sym, extra),
        _ => return Err(format!("{mnemonic} cannot take a symbolic gp operand")),
    }
    Ok(true)
}

fn parse_int_reg(tok: &str) -> Result<Reg, String> {
    // Reuse the instruction parser by parsing a dummy move.
    match parse_insn(&format!("addu {tok}, $zero, $zero")) {
        Ok(fac_isa::Insn::Alu { rd, .. }) => Ok(rd),
        _ => Err(format!("bad register {tok}")),
    }
}

fn parse_fp_reg(tok: &str) -> Result<fac_isa::FReg, String> {
    match parse_insn(&format!("mov.d {tok}, $f0")) {
        Ok(fac_isa::Insn::Fp { fd, .. }) => Ok(fd),
        _ => Err(format!("bad fp register {tok}")),
    }
}

/// Assembles a source listing into a ready-to-link [`Asm`].
///
/// ```
/// use fac_asm::{assemble, SoftwareSupport};
///
/// let asm = assemble(
///     r#"
///     .gpword counter 41
/// main:
///     lw    $t0, counter($gp)
///     addiu $t0, $t0, 1
///     sw    $t0, counter($gp)
///     halt
///     "#,
/// )
/// .unwrap();
/// let program = asm.link("demo", &SoftwareSupport::on()).unwrap();
/// assert_eq!(program.text.len(), 4);
/// ```
///
/// # Errors
///
/// Returns [`AssembleError`] with the offending line for any syntax or
/// operand problem. (Unresolved labels are reported later, by
/// [`Asm::link`].)
pub fn assemble(source: &str) -> Result<Asm, AssembleError> {
    let mut a = Asm::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Labels (possibly with a trailing statement).
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if !is_symbolic(label) {
                return fail(line_no, format!("bad label {label}"));
            }
            a.label(label);
            rest = tail[1..].trim();
            if rest.is_empty() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }

        // Directives.
        if let Some(directive) = rest.strip_prefix('.') {
            let toks: Vec<&str> = directive.split_whitespace().collect();
            let need = |n: usize| -> Result<(), AssembleError> {
                if toks.len() == n + 1 {
                    Ok(())
                } else {
                    fail(line_no, format!(".{} expects {n} arguments", toks[0]))
                }
            };
            match toks.first().copied() {
                Some("gpword") => {
                    need(2)?;
                    let v = parse_u32(toks[2])
                        .ok_or_else(|| AssembleError {
                            line: line_no,
                            message: format!("bad value {}", toks[2]),
                        })?;
                    a.gp_word(toks[1], v);
                }
                Some("gpdouble") => {
                    need(2)?;
                    let v: f64 = toks[2].parse().map_err(|_| AssembleError {
                        line: line_no,
                        message: format!("bad double {}", toks[2]),
                    })?;
                    a.gp_double(toks[1], v);
                }
                Some("gparray") | Some("fararray") => {
                    need(3)?;
                    let size = parse_u32(toks[2]);
                    let align = parse_u32(toks[3]);
                    let (Some(size), Some(align)) = (size, align) else {
                        return fail(line_no, "bad size/align");
                    };
                    if toks[0] == "gparray" {
                        a.gp_array(toks[1], size, align);
                    } else {
                        a.far_array(toks[1], size, align);
                    }
                }
                Some("farwords") => {
                    if toks.len() < 3 {
                        return fail(line_no, ".farwords expects a name and values");
                    }
                    let words: Option<Vec<u32>> = toks[2..].iter().map(|t| parse_u32(t)).collect();
                    let Some(words) = words else {
                        return fail(line_no, "bad word value");
                    };
                    a.far_words(toks[1], &words);
                }
                other => return fail(line_no, format!("unknown directive .{}", other.unwrap_or(""))),
            }
            continue;
        }

        // Instructions with symbolic operands.
        let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (rest, ""),
        };
        let ops: Vec<&str> = if operands.is_empty() {
            Vec::new()
        } else {
            operands.split(',').map(str::trim).collect()
        };

        match mnemonic {
            _ if try_gp_access(&mut a, mnemonic, &ops)
                .map_err(|m| AssembleError { line: line_no, message: m })? => {}
            "la" if ops.len() == 2 && is_symbolic(ops[1]) => {
                let (sym, extra) = split_sym_offset(ops[1]);
                let rt = parse_int_reg(ops[0])
                    .map_err(|m| AssembleError { line: line_no, message: m })?;
                a.la(rt, sym, extra);
            }
            "li" if ops.len() == 2 => {
                let rt = parse_int_reg(ops[0])
                    .map_err(|m| AssembleError { line: line_no, message: m })?;
                let Some(v) = parse_i32(ops[1]) else {
                    return fail(line_no, format!("bad immediate {}", ops[1]));
                };
                a.li(rt, v);
            }
            "beq" | "bne" if ops.len() == 3 && is_symbolic(ops[2]) => {
                let rs = parse_int_reg(ops[0])
                    .map_err(|m| AssembleError { line: line_no, message: m })?;
                let rt = parse_int_reg(ops[1])
                    .map_err(|m| AssembleError { line: line_no, message: m })?;
                if mnemonic == "beq" {
                    a.beq(rs, rt, ops[2]);
                } else {
                    a.bne(rs, rt, ops[2]);
                }
            }
            "blez" | "bgtz" | "bltz" | "bgez" if ops.len() == 2 && is_symbolic(ops[1]) => {
                let rs = parse_int_reg(ops[0])
                    .map_err(|m| AssembleError { line: line_no, message: m })?;
                match mnemonic {
                    "blez" => a.blez(rs, ops[1]),
                    "bgtz" => a.bgtz(rs, ops[1]),
                    "bltz" => a.bltz(rs, ops[1]),
                    _ => a.bgez(rs, ops[1]),
                }
            }
            "bc1t" | "bc1f" if ops.len() == 1 && is_symbolic(ops[0]) => {
                a.bc1(mnemonic == "bc1t", ops[0]);
            }
            "j" | "jal" | "call" if ops.len() == 1 && is_symbolic(ops[0]) => {
                if mnemonic == "j" {
                    a.j(ops[0]);
                } else {
                    a.call(ops[0]);
                }
            }
            "ret" if ops.is_empty() => a.ret(),
            _ => {
                // Everything else is plain disassembler syntax.
                let insn = parse_insn(rest)
                    .map_err(|e| AssembleError { line: line_no, message: e.to_string() })?;
                a.emit(insn);
            }
        }
    }
    Ok(a)
}

fn parse_u32(tok: &str) -> Option<u32> {
    if let Some(hex) = tok.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

fn parse_i32(tok: &str) -> Option<i32> {
    if let Some(hex) = tok.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok().map(|v| v as i32)
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        u32::from_str_radix(hex, 16).ok().map(|v| -(v as i32))
    } else {
        tok.parse().ok()
    }
}

/// Assembles and links in one step.
///
/// # Errors
///
/// Returns the assembly error as a string, or the link error.
pub fn assemble_and_link(
    source: &str,
    name: &str,
    policy: &SoftwareSupport,
) -> Result<crate::Program, Box<dyn std::error::Error>> {
    let asm = assemble(source)?;
    Ok(asm.link(name, policy)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_labels_directives_and_instructions() {
        let a = assemble(
            r#"
            ; a comment-only line
            .gpword x 7
            .fararray buf 64 4
        start:
            lw $t0, x($gp)
            la $s0, buf+8
            addiu $t0, $t0, 1
            sw $t0, x($gp)
            bne $t0, $zero, start
            halt
            "#,
        )
        .unwrap();
        // la expands to two instructions.
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn label_with_trailing_statement() {
        let a = assemble("top: nop\n j top\n").unwrap();
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nfrobnicate $t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        let e = assemble(".gpword\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("lh $t0, x($gp)\n").unwrap_err();
        assert!(e.message.contains("symbolic gp operand"));
    }

    #[test]
    fn symbolic_offsets_parse() {
        assert_eq!(split_sym_offset("buf+16"), ("buf", 16));
        assert_eq!(split_sym_offset("buf-4"), ("buf", -4));
        assert_eq!(split_sym_offset("buf"), ("buf", 0));
    }

    #[test]
    fn li_handles_wide_constants() {
        let a = assemble("li $t0, 0x12345678\nhalt\n").unwrap();
        assert_eq!(a.len(), 3); // lui + ori + halt
    }

    #[test]
    fn numeric_gp_displacement_still_parses_as_plain_insn() {
        let a = assemble("lw $t0, 16($gp)\nhalt\n").unwrap();
        assert_eq!(a.len(), 2);
    }
}
