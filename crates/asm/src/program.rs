//! Linked program images.

use fac_isa::Insn;
use fac_mem::Memory;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A chunk of initialized data in the linked image.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBlob {
    /// Load address.
    pub addr: u32,
    /// Raw bytes.
    pub bytes: Vec<u8>,
}

/// A fully linked program: resolved instructions plus the memory image and
/// the register environment (entry PC, `$gp`, `$sp`, heap base) the
/// simulator needs to start it.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Address of the first instruction.
    pub text_base: u32,
    /// The instruction stream (contiguous from `text_base`).
    pub text: Vec<Insn>,
    /// Initial program counter.
    pub entry: u32,
    /// Initial global-pointer value chosen by the linker.
    pub gp: u32,
    /// Initial stack-pointer value.
    pub sp: u32,
    /// First free heap address (the in-program allocator starts here).
    pub heap_base: u32,
    /// Initialized data to place in memory before execution.
    pub data: Vec<DataBlob>,
    /// Symbol table: global variable name → address.
    pub symbols: HashMap<String, u32>,
    /// Total bytes of statically allocated data (before heap/stack).
    pub static_bytes: u64,
}

impl Program {
    /// Index into [`Program::text`] for the given PC, if it is in range and
    /// word-aligned.
    pub fn insn_index(&self, pc: u32) -> Option<usize> {
        if pc < self.text_base || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - self.text_base) / 4) as usize;
        (idx < self.text.len()).then_some(idx)
    }

    /// Address of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is unknown.
    pub fn symbol(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("unknown symbol {name}"))
    }

    /// Writes the initialized data segment into `mem`.
    pub fn load_into(&self, mem: &mut Memory) {
        for blob in &self.data {
            mem.write_bytes(blob.addr, &blob.bytes);
        }
    }

    /// Human-readable disassembly of the text segment.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, insn) in self.text.iter().enumerate() {
            let _ = writeln!(out, "{:#010x}:  {}", self.text_base + 4 * i as u32, insn);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_isa::Insn;

    fn tiny() -> Program {
        Program {
            name: "tiny".into(),
            text_base: 0x0040_0000,
            text: vec![Insn::Nop, Insn::Halt],
            entry: 0x0040_0000,
            gp: 0x1000_0000,
            sp: 0x7fff_c000,
            heap_base: 0x2000_0000,
            data: vec![DataBlob { addr: 0x1000_0000, bytes: vec![1, 2, 3, 4] }],
            symbols: [("x".to_string(), 0x1000_0000)].into_iter().collect(),
            static_bytes: 4,
        }
    }

    #[test]
    fn insn_index_bounds() {
        let p = tiny();
        assert_eq!(p.insn_index(0x0040_0000), Some(0));
        assert_eq!(p.insn_index(0x0040_0004), Some(1));
        assert_eq!(p.insn_index(0x0040_0008), None);
        assert_eq!(p.insn_index(0x003f_fffc), None);
        assert_eq!(p.insn_index(0x0040_0001), None);
    }

    #[test]
    fn load_into_writes_data() {
        let p = tiny();
        let mut mem = Memory::new();
        p.load_into(&mut mem);
        assert_eq!(mem.read_u32(0x1000_0000), 0x0403_0201);
    }

    #[test]
    fn symbol_lookup() {
        assert_eq!(tiny().symbol("x"), 0x1000_0000);
    }

    #[test]
    #[should_panic(expected = "unknown symbol")]
    fn unknown_symbol_panics() {
        let _ = tiny().symbol("nope");
    }

    #[test]
    fn disassembly_lists_every_insn() {
        let d = tiny().disassemble();
        assert_eq!(d.lines().count(), 2);
        assert!(d.contains("nop"));
        assert!(d.contains("halt"));
    }
}
