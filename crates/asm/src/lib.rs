#![warn(missing_docs)]

//! # fac-asm — program builder, linker, and the §4 software support
//!
//! Workload kernels for the fast-address-calculation evaluation are written
//! against [`Asm`], an ergonomic extended-MIPS program builder. [`Asm::link`]
//! resolves labels and data symbols into a runnable [`Program`], applying a
//! [`SoftwareSupport`] policy — the compiler/linker changes of §4 of the
//! paper:
//!
//! * **global pointer**: aligned to a large power of two with all offsets
//!   positive (with support) vs. wherever the data segment ends (stock);
//! * **stack**: frame sizes rounded to a program-wide 64-byte alignment,
//!   oversized frames explicitly aligned up to 256 bytes, scalars sorted
//!   nearest the stack pointer ([`FrameBuilder`]);
//! * **statics**: alignment boosted to the next power of two ≤ 32 bytes;
//! * **dynamic allocation**: 32-byte aligned chunks ([`Asm::alloc_fixed`]);
//! * **structures**: sizes rounded to powers of two (≤ 16 bytes overhead).
//!
//! ```
//! use fac_asm::{Asm, SoftwareSupport};
//! use fac_isa::Reg;
//!
//! let mut a = Asm::new();
//! a.gp_word("x", 7);
//! a.lw_gp(Reg::T0, "x", 0);
//! a.halt();
//!
//! let with_sw = a.clone().link("demo", &SoftwareSupport::on()).unwrap();
//! let without = a.link("demo", &SoftwareSupport::off()).unwrap();
//! // With support the global pointer is aligned to a power of two...
//! assert_eq!(with_sw.gp % 0x1000_0000, 0);
//! // ...without, it lands wherever the data segment ends.
//! assert_ne!(without.gp % 64, 0);
//! ```

mod asm;
mod frame;
mod genprog;
mod program;
mod source;
mod support;

pub use asm::{
    Asm, LinkError, HEAP_BASE, HEAP_PTR_SYMBOL, STACK_TOP_ALIGNED, STACK_TOP_STOCK, TEXT_BASE,
};
pub use frame::{Frame, FrameBuilder};
pub use genprog::fuzz_source;
pub use source::{assemble, assemble_and_link, AssembleError};
pub use program::{DataBlob, Program};
pub use support::{round_up, SoftwareSupport};
