//! The program builder and linker.

use crate::program::{DataBlob, Program};
use crate::support::{round_up, SoftwareSupport};
use crate::Frame;
use fac_isa::{
    AddrMode, AluImmOp, AluOp, BranchCond, FReg, FpCond, FpFmt, FpOp, Insn, LoadOp, MulDivOp,
    Reg, ShiftOp, StoreOp,
};
use std::collections::HashMap;

/// Base address of the text segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base of the heap region used by the in-program bump allocator.
pub const HEAP_BASE: u32 = 0x2000_0000;
/// Initial stack pointer with software support (aligned well past the
/// 256-byte maximum explicit alignment).
pub const STACK_TOP_ALIGNED: u32 = 0x7fff_c000;
/// Initial stack pointer without support (GCC's stock 8-byte alignment).
pub const STACK_TOP_STOCK: u32 = 0x7fff_bff8;
/// Name of the implicit heap-pointer global used by [`Asm::alloc_fixed`].
pub const HEAP_PTR_SYMBOL: &str = "__heap";

/// Either register file, for data moved by loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataReg {
    Int(Reg),
    Fp(FReg),
}

/// Which memory operation a gp-relative slot performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GpMemKind {
    Load(LoadOp),
    Store(StoreOp),
    LoadFp(FpFmt),
    StoreFp(FpFmt),
}

/// An instruction that may still contain unresolved references.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Insn),
    Branch { cond: BranchCond, rs: Reg, rt: Reg, label: String },
    Bc1 { on_true: bool, label: String },
    Jump { label: String, link: bool },
    /// `lui rt, %hi(sym + extra)`
    LaHi { rt: Reg, sym: String, extra: i32 },
    /// `ori rt, rt, %lo(sym + extra)`
    LaLo { rt: Reg, sym: String, extra: i32 },
    /// gp-relative load/store: `op reg, %gprel(sym + extra)($gp)`
    GpMem { kind: GpMemKind, reg: DataReg, sym: String, extra: i32 },
    /// `addiu rt, $gp, %gprel(sym + extra)`
    GpAddr { rt: Reg, sym: String, extra: i32 },
}

#[derive(Debug, Clone)]
struct GlobalItem {
    name: String,
    size: u32,
    natural_align: u32,
    init: Option<Vec<u8>>,
    far: bool,
}

/// Errors produced while linking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A referenced data symbol was never defined.
    UndefinedSymbol(String),
    /// A branch target is out of the signed-16-bit instruction range.
    BranchOutOfRange(String),
    /// A gp-relative displacement does not fit in 16 bits.
    GpDisplacementOutOfRange(String, i64),
    /// The gp-addressable region overflowed 32 KB.
    GlobalRegionTooLarge(u64),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::UndefinedLabel(l) => write!(f, "undefined label {l}"),
            LinkError::UndefinedSymbol(s) => write!(f, "undefined symbol {s}"),
            LinkError::BranchOutOfRange(l) => write!(f, "branch to {l} out of range"),
            LinkError::GpDisplacementOutOfRange(s, d) => {
                write!(f, "gp-relative displacement {d} for {s} out of range")
            }
            LinkError::GlobalRegionTooLarge(sz) => {
                write!(f, "global region of {sz} bytes exceeds gp addressing range")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// The assembler/program builder.
///
/// Workload kernels are written against this API: emit instructions with
/// the mnemonic-named methods, declare globals with the `gp_*`/`far_*`
/// methods, and call [`Asm::link`] to produce a runnable [`Program`]. The
/// linker applies the [`SoftwareSupport`] policy — global-pointer
/// alignment, static/dynamic allocation alignment, stack alignment — so the
/// *same* kernel builds into the "with support" and "without support"
/// binaries the paper compares.
///
/// ```
/// use fac_asm::{Asm, SoftwareSupport};
/// use fac_isa::Reg;
///
/// let mut a = Asm::new();
/// a.gp_word("counter", 0);
/// a.li(Reg::T0, 41);
/// a.addiu(Reg::T0, Reg::T0, 1);
/// a.sw_gp(Reg::T0, "counter", 0);
/// a.halt();
/// let program = a.link("answer", &SoftwareSupport::on()).unwrap();
/// assert_eq!(program.text.len(), 3 + 1); // li is one instruction here
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    slots: Vec<Slot>,
    labels: HashMap<String, usize>,
    globals: Vec<GlobalItem>,
    fresh: u32,
}

impl Asm {
    /// Creates an empty builder (with the implicit heap-pointer global).
    pub fn new() -> Asm {
        let mut asm = Asm::default();
        asm.globals.push(GlobalItem {
            name: HEAP_PTR_SYMBOL.to_string(),
            size: 4,
            natural_align: 4,
            init: Some(vec![0; 4]), // patched to the heap base at link time
            far: false,
        });
        asm
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns a fresh, unique label with the given prefix.
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}__{}", self.fresh)
    }

    // ------------------------------------------------------------------
    // Labels and control flow
    // ------------------------------------------------------------------

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.slots.len());
        assert!(prev.is_none(), "label {name} defined twice");
    }

    fn branch(&mut self, cond: BranchCond, rs: Reg, rt: Reg, label: &str) {
        self.slots.push(Slot::Branch { cond, rs, rt, label: label.to_string() });
    }

    /// `beq rs, rt, label`
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.branch(BranchCond::Eq, rs, rt, label);
    }

    /// `bne rs, rt, label`
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: &str) {
        self.branch(BranchCond::Ne, rs, rt, label);
    }

    /// `blez rs, label`
    pub fn blez(&mut self, rs: Reg, label: &str) {
        self.branch(BranchCond::Lez, rs, Reg::ZERO, label);
    }

    /// `bgtz rs, label`
    pub fn bgtz(&mut self, rs: Reg, label: &str) {
        self.branch(BranchCond::Gtz, rs, Reg::ZERO, label);
    }

    /// `bltz rs, label`
    pub fn bltz(&mut self, rs: Reg, label: &str) {
        self.branch(BranchCond::Ltz, rs, Reg::ZERO, label);
    }

    /// `bgez rs, label`
    pub fn bgez(&mut self, rs: Reg, label: &str) {
        self.branch(BranchCond::Gez, rs, Reg::ZERO, label);
    }

    /// `bc1t label` / `bc1f label`
    pub fn bc1(&mut self, on_true: bool, label: &str) {
        self.slots.push(Slot::Bc1 { on_true, label: label.to_string() });
    }

    /// `j label`
    pub fn j(&mut self, label: &str) {
        self.slots.push(Slot::Jump { label: label.to_string(), link: false });
    }

    /// `jal label` — call a function.
    pub fn call(&mut self, label: &str) {
        self.slots.push(Slot::Jump { label: label.to_string(), link: true });
    }

    /// `jr rs`
    pub fn jr(&mut self, rs: Reg) {
        self.push(Insn::Jr { rs });
    }

    /// `jalr rs` (links into `$ra`).
    pub fn jalr(&mut self, rs: Reg) {
        self.push(Insn::Jalr { rd: Reg::RA, rs });
    }

    /// `jr $ra` — return from a function.
    pub fn ret(&mut self) {
        self.push(Insn::Jr { rs: Reg::RA });
    }

    /// `halt` — end the simulation.
    pub fn halt(&mut self) {
        self.push(Insn::Halt);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.push(Insn::Nop);
    }

    // ------------------------------------------------------------------
    // Integer ALU
    // ------------------------------------------------------------------

    fn push(&mut self, insn: Insn) {
        self.slots.push(Slot::Ready(insn));
    }

    /// Emits an already-constructed instruction verbatim (used by the text
    /// front end in [`crate::assemble`]).
    pub fn emit(&mut self, insn: Insn) {
        self.push(insn);
    }

    /// Emits a three-register ALU operation.
    pub fn op3(&mut self, op: AluOp, rd: Reg, rs: Reg, rt: Reg) {
        self.push(Insn::Alu { op, rd, rs, rt });
    }

    /// `addu rd, rs, rt`
    pub fn addu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Addu, rd, rs, rt);
    }

    /// `subu rd, rs, rt`
    pub fn subu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Subu, rd, rs, rt);
    }

    /// `and rd, rs, rt`
    pub fn and_(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::And, rd, rs, rt);
    }

    /// `or rd, rs, rt`
    pub fn or_(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Or, rd, rs, rt);
    }

    /// `xor rd, rs, rt`
    pub fn xor_(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Xor, rd, rs, rt);
    }

    /// `nor rd, rs, rt`
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Nor, rd, rs, rt);
    }

    /// `slt rd, rs, rt`
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Slt, rd, rs, rt);
    }

    /// `sltu rd, rs, rt`
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.op3(AluOp::Sltu, rd, rs, rt);
    }

    /// `sllv rd, rt, rs` — shift `rt` left by the amount in `rs`.
    pub fn sllv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.op3(AluOp::Sllv, rd, rs, rt);
    }

    /// `srlv rd, rt, rs`
    pub fn srlv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.op3(AluOp::Srlv, rd, rs, rt);
    }

    /// `addiu rt, rs, imm`
    pub fn addiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.push(Insn::AluImm { op: AluImmOp::Addiu, rt, rs, imm });
    }

    /// `andi rt, rs, imm` (zero-extended immediate)
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.push(Insn::AluImm { op: AluImmOp::Andi, rt, rs, imm: imm as i16 });
    }

    /// `ori rt, rs, imm`
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.push(Insn::AluImm { op: AluImmOp::Ori, rt, rs, imm: imm as i16 });
    }

    /// `xori rt, rs, imm`
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.push(Insn::AluImm { op: AluImmOp::Xori, rt, rs, imm: imm as i16 });
    }

    /// `slti rt, rs, imm`
    pub fn slti(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.push(Insn::AluImm { op: AluImmOp::Slti, rt, rs, imm });
    }

    /// `sltiu rt, rs, imm`
    pub fn sltiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.push(Insn::AluImm { op: AluImmOp::Sltiu, rt, rs, imm });
    }

    /// `sll rd, rt, shamt`
    pub fn sll(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.push(Insn::Shift { op: ShiftOp::Sll, rd, rt, shamt });
    }

    /// `srl rd, rt, shamt`
    pub fn srl(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.push(Insn::Shift { op: ShiftOp::Srl, rd, rt, shamt });
    }

    /// `sra rd, rt, shamt`
    pub fn sra(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.push(Insn::Shift { op: ShiftOp::Sra, rd, rt, shamt });
    }

    /// `lui rt, imm`
    pub fn lui(&mut self, rt: Reg, imm: u16) {
        self.push(Insn::Lui { rt, imm });
    }

    /// `move rd, rs` (pseudo: `addu rd, rs, $zero`)
    pub fn move_(&mut self, rd: Reg, rs: Reg) {
        self.addu(rd, rs, Reg::ZERO);
    }

    /// `li rt, value` — load a 32-bit constant (1–2 instructions).
    pub fn li(&mut self, rt: Reg, value: i32) {
        if let Ok(imm) = i16::try_from(value) {
            self.addiu(rt, Reg::ZERO, imm);
        } else if value as u32 & 0xffff == 0 {
            self.lui(rt, (value as u32 >> 16) as u16);
        } else {
            self.lui(rt, (value as u32 >> 16) as u16);
            self.ori(rt, rt, value as u32 as u16);
        }
    }

    /// `mult rs, rt`
    pub fn mult(&mut self, rs: Reg, rt: Reg) {
        self.push(Insn::MulDiv { op: MulDivOp::Mult, rs, rt });
    }

    /// `multu rs, rt`
    pub fn multu(&mut self, rs: Reg, rt: Reg) {
        self.push(Insn::MulDiv { op: MulDivOp::Multu, rs, rt });
    }

    /// `div rs, rt`
    pub fn div_(&mut self, rs: Reg, rt: Reg) {
        self.push(Insn::MulDiv { op: MulDivOp::Div, rs, rt });
    }

    /// `divu rs, rt`
    pub fn divu(&mut self, rs: Reg, rt: Reg) {
        self.push(Insn::MulDiv { op: MulDivOp::Divu, rs, rt });
    }

    /// `mflo rd`
    pub fn mflo(&mut self, rd: Reg) {
        self.push(Insn::Mflo { rd });
    }

    /// `mfhi rd`
    pub fn mfhi(&mut self, rd: Reg) {
        self.push(Insn::Mfhi { rd });
    }

    // ------------------------------------------------------------------
    // Loads and stores
    // ------------------------------------------------------------------

    /// Emits an integer load with an explicit addressing mode.
    pub fn load(&mut self, op: LoadOp, rt: Reg, ea: AddrMode) {
        self.push(Insn::Load { op, rt, ea });
    }

    /// Emits an integer store with an explicit addressing mode.
    pub fn store(&mut self, op: StoreOp, rt: Reg, ea: AddrMode) {
        self.push(Insn::Store { op, rt, ea });
    }

    /// `lw rt, disp(base)`
    pub fn lw(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.load(LoadOp::Lw, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `lh rt, disp(base)`
    pub fn lh(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.load(LoadOp::Lh, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `lhu rt, disp(base)`
    pub fn lhu(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.load(LoadOp::Lhu, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `lb rt, disp(base)`
    pub fn lb(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.load(LoadOp::Lb, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `lbu rt, disp(base)`
    pub fn lbu(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.load(LoadOp::Lbu, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `sw rt, disp(base)`
    pub fn sw(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.store(StoreOp::Sw, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `sh rt, disp(base)`
    pub fn sh(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.store(StoreOp::Sh, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `sb rt, disp(base)`
    pub fn sb(&mut self, rt: Reg, disp: i16, base: Reg) {
        self.store(StoreOp::Sb, rt, AddrMode::BaseDisp { base, disp });
    }

    /// `lw rt, (base+index)` — register+register addressing.
    pub fn lw_x(&mut self, rt: Reg, base: Reg, index: Reg) {
        self.load(LoadOp::Lw, rt, AddrMode::BaseIndex { base, index });
    }

    /// `lbu rt, (base+index)`
    pub fn lbu_x(&mut self, rt: Reg, base: Reg, index: Reg) {
        self.load(LoadOp::Lbu, rt, AddrMode::BaseIndex { base, index });
    }

    /// `lhu rt, (base+index)`
    pub fn lhu_x(&mut self, rt: Reg, base: Reg, index: Reg) {
        self.load(LoadOp::Lhu, rt, AddrMode::BaseIndex { base, index });
    }

    /// `sw rt, (base+index)`
    pub fn sw_x(&mut self, rt: Reg, base: Reg, index: Reg) {
        self.store(StoreOp::Sw, rt, AddrMode::BaseIndex { base, index });
    }

    /// `sb rt, (base+index)`
    pub fn sb_x(&mut self, rt: Reg, base: Reg, index: Reg) {
        self.store(StoreOp::Sb, rt, AddrMode::BaseIndex { base, index });
    }

    /// `lw rt, (base)+step` — post-increment load.
    pub fn lw_pi(&mut self, rt: Reg, base: Reg, step: i16) {
        self.load(LoadOp::Lw, rt, AddrMode::PostInc { base, step });
    }

    /// `sw rt, (base)+step` — post-increment store.
    pub fn sw_pi(&mut self, rt: Reg, base: Reg, step: i16) {
        self.store(StoreOp::Sw, rt, AddrMode::PostInc { base, step });
    }

    /// `lbu rt, (base)+step`
    pub fn lbu_pi(&mut self, rt: Reg, base: Reg, step: i16) {
        self.load(LoadOp::Lbu, rt, AddrMode::PostInc { base, step });
    }

    /// `sb rt, (base)+step` — post-increment byte store.
    pub fn sb_pi(&mut self, rt: Reg, base: Reg, step: i16) {
        self.store(StoreOp::Sb, rt, AddrMode::PostInc { base, step });
    }

    /// `l.s ft, disp(base)`
    pub fn l_s(&mut self, ft: FReg, disp: i16, base: Reg) {
        self.push(Insn::LoadFp { fmt: FpFmt::S, ft, ea: AddrMode::BaseDisp { base, disp } });
    }

    /// `l.d ft, disp(base)`
    pub fn l_d(&mut self, ft: FReg, disp: i16, base: Reg) {
        self.push(Insn::LoadFp { fmt: FpFmt::D, ft, ea: AddrMode::BaseDisp { base, disp } });
    }

    /// `s.s ft, disp(base)`
    pub fn s_s(&mut self, ft: FReg, disp: i16, base: Reg) {
        self.push(Insn::StoreFp { fmt: FpFmt::S, ft, ea: AddrMode::BaseDisp { base, disp } });
    }

    /// `s.d ft, disp(base)`
    pub fn s_d(&mut self, ft: FReg, disp: i16, base: Reg) {
        self.push(Insn::StoreFp { fmt: FpFmt::D, ft, ea: AddrMode::BaseDisp { base, disp } });
    }

    /// `l.d ft, (base+index)`
    pub fn l_d_x(&mut self, ft: FReg, base: Reg, index: Reg) {
        self.push(Insn::LoadFp { fmt: FpFmt::D, ft, ea: AddrMode::BaseIndex { base, index } });
    }

    /// `s.d ft, (base+index)`
    pub fn s_d_x(&mut self, ft: FReg, base: Reg, index: Reg) {
        self.push(Insn::StoreFp { fmt: FpFmt::D, ft, ea: AddrMode::BaseIndex { base, index } });
    }

    /// `l.s ft, (base+index)`
    pub fn l_s_x(&mut self, ft: FReg, base: Reg, index: Reg) {
        self.push(Insn::LoadFp { fmt: FpFmt::S, ft, ea: AddrMode::BaseIndex { base, index } });
    }

    /// `l.d ft, (base)+step`
    pub fn l_d_pi(&mut self, ft: FReg, base: Reg, step: i16) {
        self.push(Insn::LoadFp { fmt: FpFmt::D, ft, ea: AddrMode::PostInc { base, step } });
    }

    /// `s.d ft, (base)+step`
    pub fn s_d_pi(&mut self, ft: FReg, base: Reg, step: i16) {
        self.push(Insn::StoreFp { fmt: FpFmt::D, ft, ea: AddrMode::PostInc { base, step } });
    }

    // ------------------------------------------------------------------
    // gp-relative access and address formation
    // ------------------------------------------------------------------

    /// `lw rt, %gprel(sym + extra)($gp)`
    pub fn lw_gp(&mut self, rt: Reg, sym: &str, extra: i32) {
        self.slots.push(Slot::GpMem {
            kind: GpMemKind::Load(LoadOp::Lw),
            reg: DataReg::Int(rt),
            sym: sym.to_string(),
            extra,
        });
    }

    /// `sw rt, %gprel(sym + extra)($gp)`
    pub fn sw_gp(&mut self, rt: Reg, sym: &str, extra: i32) {
        self.slots.push(Slot::GpMem {
            kind: GpMemKind::Store(StoreOp::Sw),
            reg: DataReg::Int(rt),
            sym: sym.to_string(),
            extra,
        });
    }

    /// `l.d ft, %gprel(sym + extra)($gp)`
    pub fn l_d_gp(&mut self, ft: FReg, sym: &str, extra: i32) {
        self.slots.push(Slot::GpMem {
            kind: GpMemKind::LoadFp(FpFmt::D),
            reg: DataReg::Fp(ft),
            sym: sym.to_string(),
            extra,
        });
    }

    /// `s.d ft, %gprel(sym + extra)($gp)`
    pub fn s_d_gp(&mut self, ft: FReg, sym: &str, extra: i32) {
        self.slots.push(Slot::GpMem {
            kind: GpMemKind::StoreFp(FpFmt::D),
            reg: DataReg::Fp(ft),
            sym: sym.to_string(),
            extra,
        });
    }

    /// `addiu rt, $gp, %gprel(sym + extra)` — take the address of a small
    /// global.
    pub fn gp_addr(&mut self, rt: Reg, sym: &str, extra: i32) {
        self.slots.push(Slot::GpAddr { rt, sym: sym.to_string(), extra });
    }

    /// `la rt, sym + extra` — load a full 32-bit address (2 instructions).
    pub fn la(&mut self, rt: Reg, sym: &str, extra: i32) {
        self.slots.push(Slot::LaHi { rt, sym: sym.to_string(), extra });
        self.slots.push(Slot::LaLo { rt, sym: sym.to_string(), extra });
    }

    // ------------------------------------------------------------------
    // Floating point
    // ------------------------------------------------------------------

    /// Emits an FP computational operation.
    pub fn fp(&mut self, op: FpOp, fmt: FpFmt, fd: FReg, fs: FReg, ft: FReg) {
        self.push(Insn::Fp { op, fmt, fd, fs, ft });
    }

    /// `add.d fd, fs, ft`
    pub fn add_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.fp(FpOp::Add, FpFmt::D, fd, fs, ft);
    }

    /// `sub.d fd, fs, ft`
    pub fn sub_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.fp(FpOp::Sub, FpFmt::D, fd, fs, ft);
    }

    /// `mul.d fd, fs, ft`
    pub fn mul_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.fp(FpOp::Mul, FpFmt::D, fd, fs, ft);
    }

    /// `div.d fd, fs, ft`
    pub fn div_d(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.fp(FpOp::Div, FpFmt::D, fd, fs, ft);
    }

    /// `add.s fd, fs, ft`
    pub fn add_s(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.fp(FpOp::Add, FpFmt::S, fd, fs, ft);
    }

    /// `mul.s fd, fs, ft`
    pub fn mul_s(&mut self, fd: FReg, fs: FReg, ft: FReg) {
        self.fp(FpOp::Mul, FpFmt::S, fd, fs, ft);
    }

    /// `mov.d fd, fs`
    pub fn mov_d(&mut self, fd: FReg, fs: FReg) {
        self.fp(FpOp::Mov, FpFmt::D, fd, fs, FReg::F0);
    }

    /// `neg.d fd, fs`
    pub fn neg_d(&mut self, fd: FReg, fs: FReg) {
        self.fp(FpOp::Neg, FpFmt::D, fd, fs, FReg::F0);
    }

    /// `sqrt.d fd, fs`
    pub fn sqrt_d(&mut self, fd: FReg, fs: FReg) {
        self.fp(FpOp::Sqrt, FpFmt::D, fd, fs, FReg::F0);
    }

    /// `abs.d fd, fs`
    pub fn abs_d(&mut self, fd: FReg, fs: FReg) {
        self.fp(FpOp::Abs, FpFmt::D, fd, fs, FReg::F0);
    }

    /// `c.lt.d fs, ft`
    pub fn c_lt_d(&mut self, fs: FReg, ft: FReg) {
        self.push(Insn::FpCmp { cond: FpCond::Lt, fmt: FpFmt::D, fs, ft });
    }

    /// `c.le.d fs, ft`
    pub fn c_le_d(&mut self, fs: FReg, ft: FReg) {
        self.push(Insn::FpCmp { cond: FpCond::Le, fmt: FpFmt::D, fs, ft });
    }

    /// `c.eq.d fs, ft`
    pub fn c_eq_d(&mut self, fs: FReg, ft: FReg) {
        self.push(Insn::FpCmp { cond: FpCond::Eq, fmt: FpFmt::D, fs, ft });
    }

    /// `mtc1 rt, fs` — move integer bits into an FP register.
    pub fn mtc1(&mut self, rt: Reg, fs: FReg) {
        self.push(Insn::Mtc1 { rt, fs });
    }

    /// `mfc1 rt, fs`
    pub fn mfc1(&mut self, rt: Reg, fs: FReg) {
        self.push(Insn::Mfc1 { rt, fs });
    }

    /// `cvt.d.w fd, fs` — integer (bits in `fs`) to double.
    pub fn cvt_d_w(&mut self, fd: FReg, fs: FReg) {
        self.push(Insn::CvtFromW { fmt: FpFmt::D, fd, fs });
    }

    /// `cvt.s.w fd, fs`
    pub fn cvt_s_w(&mut self, fd: FReg, fs: FReg) {
        self.push(Insn::CvtFromW { fmt: FpFmt::S, fd, fs });
    }

    /// `trunc.w.d fd, fs` — double to integer bits in `fd`.
    pub fn trunc_w_d(&mut self, fd: FReg, fs: FReg) {
        self.push(Insn::TruncToW { fmt: FpFmt::D, fd, fs });
    }

    /// Pseudo: load an integer-valued double constant into `fd`
    /// (li + mtc1 + cvt.d.w; clobbers `$at`).
    pub fn li_d(&mut self, fd: FReg, value: i32) {
        self.li(Reg::AT, value);
        self.mtc1(Reg::AT, fd);
        self.cvt_d_w(fd, fd);
    }

    // ------------------------------------------------------------------
    // Function prologue / epilogue
    // ------------------------------------------------------------------

    /// Emits the prologue for `frame`: allocates (and, for oversized frames
    /// under the support policy, explicitly aligns) the stack frame and
    /// saves `$ra` plus the callee-saved registers.
    pub fn prologue(&mut self, frame: &Frame) {
        if let Some(align) = frame.explicit_align() {
            // §4: sp is explicitly aligned; the caller's sp is kept in the
            // frame and restored on return. `$k0`/`$at` are codegen-owned.
            self.move_(Reg::K0, Reg::SP);
            self.addiu(Reg::SP, Reg::SP, -(frame.size() as i32) as i16);
            self.addiu(Reg::AT, Reg::ZERO, -(align as i32) as i16);
            self.and_(Reg::SP, Reg::SP, Reg::AT);
            self.sw(Reg::K0, frame.old_sp_slot().expect("old sp slot") as i16, Reg::SP);
        } else {
            self.addiu(Reg::SP, Reg::SP, -(frame.size() as i32) as i16);
        }
        if let Some(ra) = frame.ra_slot() {
            self.sw(Reg::RA, ra as i16, Reg::SP);
        }
        for &(reg, off) in frame.saved() {
            self.sw(reg, off as i16, Reg::SP);
        }
    }

    /// Emits the epilogue for `frame` and returns (`jr $ra`).
    pub fn epilogue_ret(&mut self, frame: &Frame) {
        for &(reg, off) in frame.saved() {
            self.lw(reg, off as i16, Reg::SP);
        }
        if let Some(ra) = frame.ra_slot() {
            self.lw(Reg::RA, ra as i16, Reg::SP);
        }
        if frame.explicit_align().is_some() {
            self.lw(Reg::SP, frame.old_sp_slot().expect("old sp slot") as i16, Reg::SP);
        } else {
            self.addiu(Reg::SP, Reg::SP, frame.size() as i16);
        }
        self.ret();
    }

    // ------------------------------------------------------------------
    // Dynamic allocation
    // ------------------------------------------------------------------

    /// Inline bump-allocation of `size` bytes: `dst` receives the chunk
    /// address. The chunk size is rounded per the policy's dynamic
    /// alignment, so consecutive allocations stay 8- or 32-byte aligned —
    /// the §4 `malloc` alignment change. Clobbers `$k1`.
    pub fn alloc_fixed(&mut self, dst: Reg, size: u32, policy: &SoftwareSupport) {
        let rounded = policy.round_alloc_size(size);
        self.lw_gp(dst, HEAP_PTR_SYMBOL, 0);
        if let Ok(imm) = i16::try_from(rounded) {
            self.addiu(Reg::K1, dst, imm);
        } else {
            self.li(Reg::K1, rounded as i32);
            self.addu(Reg::K1, dst, Reg::K1);
        }
        self.sw_gp(Reg::K1, HEAP_PTR_SYMBOL, 0);
    }

    // ------------------------------------------------------------------
    // Data declarations
    // ------------------------------------------------------------------

    fn add_global(&mut self, item: GlobalItem) {
        assert!(
            self.globals.iter().all(|g| g.name != item.name),
            "global {} defined twice",
            item.name
        );
        self.globals.push(item);
    }

    /// Declares a small (gp-addressable) word global.
    pub fn gp_word(&mut self, name: &str, init: u32) {
        self.add_global(GlobalItem {
            name: name.to_string(),
            size: 4,
            natural_align: 4,
            init: Some(init.to_le_bytes().to_vec()),
            far: false,
        });
    }

    /// Declares a small double global with the given initial value.
    pub fn gp_double(&mut self, name: &str, init: f64) {
        self.add_global(GlobalItem {
            name: name.to_string(),
            size: 8,
            natural_align: 8,
            init: Some(init.to_bits().to_le_bytes().to_vec()),
            far: false,
        });
    }

    /// Declares a small zero-initialized array in the gp region.
    pub fn gp_array(&mut self, name: &str, size: u32, natural_align: u32) {
        self.add_global(GlobalItem {
            name: name.to_string(),
            size,
            natural_align,
            init: None,
            far: false,
        });
    }

    /// Declares a large zero-initialized array outside the gp region
    /// (accessed via [`Asm::la`]).
    pub fn far_array(&mut self, name: &str, size: u32, natural_align: u32) {
        self.add_global(GlobalItem {
            name: name.to_string(),
            size,
            natural_align,
            init: None,
            far: true,
        });
    }

    /// Declares initialized word data outside the gp region.
    pub fn far_words(&mut self, name: &str, words: &[u32]) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.add_global(GlobalItem {
            name: name.to_string(),
            size: bytes.len() as u32,
            natural_align: 4,
            init: Some(bytes),
            far: true,
        });
    }

    /// Declares initialized byte data outside the gp region.
    pub fn far_bytes(&mut self, name: &str, bytes: &[u8]) {
        self.add_global(GlobalItem {
            name: name.to_string(),
            size: bytes.len() as u32,
            natural_align: 1,
            init: Some(bytes.to_vec()),
            far: true,
        });
    }

    /// Declares initialized double data outside the gp region.
    pub fn far_doubles(&mut self, name: &str, values: &[f64]) {
        let bytes: Vec<u8> = values
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        self.add_global(GlobalItem {
            name: name.to_string(),
            size: bytes.len() as u32,
            natural_align: 8,
            init: Some(bytes),
            far: true,
        });
    }

    // ------------------------------------------------------------------
    // Linking
    // ------------------------------------------------------------------

    /// Resolves labels and symbols into a runnable [`Program`], applying
    /// the layout decisions of the software-support `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] for undefined labels/symbols, out-of-range
    /// branches or gp displacements, or an oversized global region.
    pub fn link(mut self, name: &str, policy: &SoftwareSupport) -> Result<Program, LinkError> {
        // Dynamic-allocation alignment: without support the heap starts
        // only 8-byte aligned (stock allocator); with support it is
        // 32-byte aligned.
        let heap_base = if policy.dynamic_align >= 32 {
            HEAP_BASE
        } else {
            HEAP_BASE + 8
        };
        if let Some(hp) = self
            .globals
            .iter_mut()
            .find(|g| g.name == HEAP_PTR_SYMBOL)
        {
            hp.init = Some(heap_base.to_le_bytes().to_vec());
        }

        // --- Data layout ---------------------------------------------
        let mut symbols: HashMap<String, u32> = HashMap::new();
        let mut blobs: Vec<DataBlob> = Vec::new();
        let static_bytes: u64;

        let place = |items: &[&GlobalItem],
                         base: u32,
                         policy: &SoftwareSupport,
                         symbols: &mut HashMap<String, u32>,
                         blobs: &mut Vec<DataBlob>|
         -> u32 {
            let mut cur = base;
            for item in items {
                // Under the §5.4 placement strategy, arrays (gp-region or
                // far) are aligned to their size; otherwise the §4 static
                // policy applies.
                let align = if item.far || policy.large_array_align_max > 0 {
                    policy.large_array_align(item.size, item.natural_align)
                } else {
                    policy.static_align(item.size, item.natural_align)
                };
                cur = round_up(cur, align);
                symbols.insert(item.name.clone(), cur);
                if let Some(init) = &item.init {
                    blobs.push(DataBlob { addr: cur, bytes: init.clone() });
                }
                cur += item.size.max(1);
            }
            cur
        };

        let gp_items: Vec<&GlobalItem> = self.globals.iter().filter(|g| !g.far).collect();
        let far_items: Vec<&GlobalItem> = self.globals.iter().filter(|g| g.far).collect();

        let gp: u32;
        if policy.align_global_pointer {
            // §4: the global region starts at a power-of-two boundary
            // larger than the largest offset; all offsets positive.
            let gp_base = 0x1000_0000;
            let gp_end = place(&gp_items, gp_base, policy, &mut symbols, &mut blobs);
            if gp_end - gp_base > 0x7fff {
                return Err(LinkError::GlobalRegionTooLarge((gp_end - gp_base) as u64));
            }
            gp = gp_base;
            let far_base = round_up(gp_end.max(0x1001_0000), 64);
            let far_end = place(&far_items, far_base, policy, &mut symbols, &mut blobs);
            static_bytes = (gp_end - gp_base) as u64 + (far_end - far_base) as u64;
        } else {
            // Stock layout: ordinary data first, then the small-data
            // region wherever the data segment happens to end — so the
            // global pointer value is arbitrary and unaligned.
            let far_base = 0x1000_0000;
            let far_end = place(&far_items, far_base, policy, &mut symbols, &mut blobs);
            let gp_base = round_up(far_end, 8) + 8;
            let gp_end = place(&gp_items, gp_base, policy, &mut symbols, &mut blobs);
            // MIPS convention: $gp points a little inside the region so a
            // few variables sit at small negative offsets.
            gp = gp_base + 16;
            if gp_end.saturating_sub(gp) > 0x7fff {
                return Err(LinkError::GlobalRegionTooLarge((gp_end - gp_base) as u64));
            }
            static_bytes = (gp_end - far_base) as u64;
        }

        // --- Text resolution ------------------------------------------
        let resolve_label = |label: &str| -> Result<usize, LinkError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| LinkError::UndefinedLabel(label.to_string()))
        };
        let resolve_sym = |sym: &str| -> Result<u32, LinkError> {
            symbols
                .get(sym)
                .copied()
                .ok_or_else(|| LinkError::UndefinedSymbol(sym.to_string()))
        };

        let mut text = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let insn = match slot {
                Slot::Ready(i) => *i,
                Slot::Branch { cond, rs, rt, label } => {
                    let dest = resolve_label(label)?;
                    let off = dest as i64 - (idx as i64 + 1);
                    let off = i16::try_from(off)
                        .map_err(|_| LinkError::BranchOutOfRange(label.clone()))?;
                    Insn::Branch { cond: *cond, rs: *rs, rt: *rt, off }
                }
                Slot::Bc1 { on_true, label } => {
                    let dest = resolve_label(label)?;
                    let off = dest as i64 - (idx as i64 + 1);
                    let off = i16::try_from(off)
                        .map_err(|_| LinkError::BranchOutOfRange(label.clone()))?;
                    Insn::Bc1 { on_true: *on_true, off }
                }
                Slot::Jump { label, link } => {
                    let dest = resolve_label(label)?;
                    let target = (TEXT_BASE / 4) + dest as u32;
                    if *link {
                        Insn::Jal { target }
                    } else {
                        Insn::J { target }
                    }
                }
                Slot::LaHi { rt, sym, extra } => {
                    let addr = resolve_sym(sym)?.wrapping_add(*extra as u32);
                    Insn::Lui { rt: *rt, imm: (addr >> 16) as u16 }
                }
                Slot::LaLo { rt, sym, extra } => {
                    let addr = resolve_sym(sym)?.wrapping_add(*extra as u32);
                    Insn::AluImm {
                        op: AluImmOp::Ori,
                        rt: *rt,
                        rs: *rt,
                        imm: (addr & 0xffff) as i16,
                    }
                }
                Slot::GpMem { kind, reg, sym, extra } => {
                    let addr = resolve_sym(sym)?.wrapping_add(*extra as u32);
                    let disp = addr as i64 - gp as i64;
                    let disp = i16::try_from(disp).map_err(|_| {
                        LinkError::GpDisplacementOutOfRange(sym.clone(), disp)
                    })?;
                    let ea = AddrMode::BaseDisp { base: Reg::GP, disp };
                    match (kind, reg) {
                        (GpMemKind::Load(op), DataReg::Int(rt)) => {
                            Insn::Load { op: *op, rt: *rt, ea }
                        }
                        (GpMemKind::Store(op), DataReg::Int(rt)) => {
                            Insn::Store { op: *op, rt: *rt, ea }
                        }
                        (GpMemKind::LoadFp(fmt), DataReg::Fp(ft)) => {
                            Insn::LoadFp { fmt: *fmt, ft: *ft, ea }
                        }
                        (GpMemKind::StoreFp(fmt), DataReg::Fp(ft)) => {
                            Insn::StoreFp { fmt: *fmt, ft: *ft, ea }
                        }
                        _ => unreachable!("mismatched gp access operands"),
                    }
                }
                Slot::GpAddr { rt, sym, extra } => {
                    let addr = resolve_sym(sym)?.wrapping_add(*extra as u32);
                    let disp = addr as i64 - gp as i64;
                    let disp = i16::try_from(disp).map_err(|_| {
                        LinkError::GpDisplacementOutOfRange(sym.clone(), disp)
                    })?;
                    Insn::AluImm { op: AluImmOp::Addiu, rt: *rt, rs: Reg::GP, imm: disp }
                }
            };
            text.push(insn);
        }

        let sp = if policy.stack_frame_align > 8 { STACK_TOP_ALIGNED } else { STACK_TOP_STOCK };

        Ok(Program {
            name: name.to_string(),
            text_base: TEXT_BASE,
            text,
            entry: TEXT_BASE,
            gp,
            sp,
            heap_base,
            data: blobs,
            symbols,
            static_bytes,
        })
    }
}
