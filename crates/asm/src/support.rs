//! The §4 software-support policy: compiler/linker alignment decisions.

/// Compiler and linker support for fast address calculation (paper §4/§5.1).
///
/// Fast address calculation needs no software help to be *correct*, but
/// prediction accuracy improves dramatically when pointers are aligned and
/// offset constants kept small. This struct captures every knob the paper's
/// modified GCC 2.6 / GLD 2.3 exposed; [`SoftwareSupport::on`] mirrors the
/// evaluated configuration, [`SoftwareSupport::off`] the stock toolchain.
///
/// ```
/// use fac_asm::SoftwareSupport;
///
/// let sw = SoftwareSupport::on();
/// assert_eq!(sw.stack_frame_align, 64);
/// assert_eq!(sw.dynamic_align, 32);
/// let base = SoftwareSupport::off();
/// assert_eq!(base.stack_frame_align, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareSupport {
    /// GLD aligns the global pointer to a power of two larger than the
    /// largest relocation applied to it and restricts all global-pointer
    /// relocations to be positive. (Stock linkers leave `$gp` wherever the
    /// data segment ends and use signed 16-bit offsets around it.)
    pub align_global_pointer: bool,
    /// Program-wide stack-pointer alignment: frame sizes are rounded up to
    /// a multiple of this. The paper uses 64 with support, 8 without (GCC's
    /// default stack alignment).
    pub stack_frame_align: u32,
    /// Frames larger than `stack_frame_align` explicitly align the stack
    /// pointer (AND with the negated power-of-two frame size) up to this
    /// bound — 256 bytes in the evaluation. Equal to `stack_frame_align`
    /// when the feature is off.
    pub max_explicit_stack_align: u32,
    /// Static (global) variables are placed with an alignment equal to the
    /// next power of two ≥ their size, capped at this many bytes (32 in the
    /// evaluation). `0` disables the boost (natural alignment only).
    pub static_align_max: u32,
    /// Alignment of `malloc`/`alloca` allocations — 32 with support, 8
    /// (typical allocator default) without.
    pub dynamic_align: u32,
    /// Structure sizes are rounded up to the next power of two, with the
    /// overhead capped at this many bytes (16 in the evaluation). `0`
    /// disables rounding.
    pub struct_round_max_overhead: u32,
    /// Prefer zero-offset addressing by strength-reducing array subscripts
    /// (the paper's modified strength-reduction / address-cost tuning that
    /// makes register+register addressing look expensive).
    pub prefer_strength_reduction: bool,
    /// The §5.4 remedy the paper proposes but does not evaluate ("a
    /// strategy for placement of large alignments should eliminate many
    /// array index failures... aligning a single large array to its size
    /// would eliminate nearly all mispredictions"): align large out-of-gp
    /// arrays to the next power of two ≥ their size, capped at this many
    /// bytes. `0` disables (the evaluated configuration).
    pub large_array_align_max: u32,
}

impl SoftwareSupport {
    /// The full §5.1 software-support configuration.
    pub fn on() -> SoftwareSupport {
        SoftwareSupport {
            align_global_pointer: true,
            stack_frame_align: 64,
            max_explicit_stack_align: 256,
            static_align_max: 32,
            dynamic_align: 32,
            struct_round_max_overhead: 16,
            prefer_strength_reduction: true,
            large_array_align_max: 0,
        }
    }

    /// §4 support plus the §5.4 large-array placement strategy the paper
    /// sketches as future work.
    pub fn on_with_array_alignment() -> SoftwareSupport {
        SoftwareSupport { large_array_align_max: 1 << 20, ..SoftwareSupport::on() }
    }

    /// The stock toolchain: natural alignments only.
    pub fn off() -> SoftwareSupport {
        SoftwareSupport {
            align_global_pointer: false,
            stack_frame_align: 8,
            max_explicit_stack_align: 8,
            static_align_max: 0,
            dynamic_align: 8,
            struct_round_max_overhead: 0,
            prefer_strength_reduction: true,
            large_array_align_max: 0,
        }
    }

    /// Alignment for a large (out-of-gp) array under the §5.4 placement
    /// strategy: the next power of two ≥ the array size, capped.
    pub fn large_array_align(&self, size: u32, natural: u32) -> u32 {
        if self.large_array_align_max == 0 {
            return self.static_align(size, natural);
        }
        size.next_power_of_two()
            .clamp(natural.max(1), self.large_array_align_max)
    }

    /// Alignment to apply to a static variable of `size` bytes under this
    /// policy, given its natural alignment.
    pub fn static_align(&self, size: u32, natural: u32) -> u32 {
        let natural = natural.max(1);
        if self.static_align_max == 0 {
            return natural;
        }
        size.next_power_of_two()
            .clamp(natural, self.static_align_max.max(natural))
    }

    /// Rounds a structure size per the struct-rounding policy: up to the
    /// next power of two unless the added padding exceeds the cap.
    pub fn round_struct_size(&self, size: u32) -> u32 {
        if self.struct_round_max_overhead == 0 || size == 0 {
            return size;
        }
        let rounded = size.next_power_of_two();
        if rounded - size <= self.struct_round_max_overhead {
            rounded
        } else {
            size
        }
    }

    /// Rounds a stack frame size to the program-wide stack alignment.
    pub fn round_frame_size(&self, size: u32) -> u32 {
        round_up(size, self.stack_frame_align)
    }

    /// The explicit stack alignment used for a frame of `rounded` bytes:
    /// the power of two ≥ the frame size, capped — or `None` when the
    /// program-wide alignment already suffices.
    pub fn explicit_stack_align(&self, rounded: u32) -> Option<u32> {
        if self.max_explicit_stack_align <= self.stack_frame_align
            || rounded <= self.stack_frame_align
        {
            return None;
        }
        Some(
            rounded
                .next_power_of_two()
                .min(self.max_explicit_stack_align),
        )
    }

    /// Rounds a dynamic allocation size so consecutive allocations stay
    /// aligned to [`SoftwareSupport::dynamic_align`].
    pub fn round_alloc_size(&self, size: u32) -> u32 {
        round_up(size.max(1), self.dynamic_align)
    }
}

/// Rounds `value` up to a multiple of `to` (a power of two).
pub fn round_up(value: u32, to: u32) -> u32 {
    debug_assert!(to.is_power_of_two());
    (value + to - 1) & !(to - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_alignment_policy() {
        let sw = SoftwareSupport::on();
        assert_eq!(sw.static_align(4, 4), 4);
        assert_eq!(sw.static_align(5, 4), 8);
        assert_eq!(sw.static_align(24, 4), 32);
        assert_eq!(sw.static_align(1000, 4), 32); // capped
        let off = SoftwareSupport::off();
        assert_eq!(off.static_align(1000, 4), 4); // natural only
        assert_eq!(off.static_align(8, 8), 8);
    }

    #[test]
    fn struct_rounding_capped() {
        let sw = SoftwareSupport::on();
        assert_eq!(sw.round_struct_size(12), 16); // +4 ≤ 16
        assert_eq!(sw.round_struct_size(20), 32); // +12 ≤ 16
        assert_eq!(sw.round_struct_size(40), 40); // +24 > 16: unchanged
        assert_eq!(sw.round_struct_size(0), 0);
        assert_eq!(SoftwareSupport::off().round_struct_size(12), 12);
    }

    #[test]
    fn frame_rounding() {
        let sw = SoftwareSupport::on();
        assert_eq!(sw.round_frame_size(1), 64);
        assert_eq!(sw.round_frame_size(64), 64);
        assert_eq!(sw.round_frame_size(65), 128);
        assert_eq!(SoftwareSupport::off().round_frame_size(20), 24);
    }

    #[test]
    fn explicit_alignment_only_for_big_frames() {
        let sw = SoftwareSupport::on();
        assert_eq!(sw.explicit_stack_align(64), None);
        assert_eq!(sw.explicit_stack_align(128), Some(128));
        assert_eq!(sw.explicit_stack_align(192), Some(256));
        assert_eq!(sw.explicit_stack_align(1024), Some(256)); // capped
        assert_eq!(SoftwareSupport::off().explicit_stack_align(1024), None);
    }

    #[test]
    fn large_array_alignment_strategy() {
        let sw = SoftwareSupport::on();
        assert_eq!(sw.large_array_align(5000, 8), 32, "falls back to static policy");
        let strat = SoftwareSupport::on_with_array_alignment();
        assert_eq!(strat.large_array_align(5000, 8), 8192);
        assert_eq!(strat.large_array_align(16, 8), 16);
        assert_eq!(strat.large_array_align(1 << 24, 8), 1 << 20, "capped");
    }

    #[test]
    fn alloc_size_rounding() {
        assert_eq!(SoftwareSupport::on().round_alloc_size(1), 32);
        assert_eq!(SoftwareSupport::on().round_alloc_size(33), 64);
        assert_eq!(SoftwareSupport::off().round_alloc_size(12), 16);
    }

    #[test]
    fn round_up_is_identity_on_multiples() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(64, 64), 64);
        assert_eq!(round_up(65, 64), 128);
    }
}
