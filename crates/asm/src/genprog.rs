//! Deterministic random program generation for the differential fuzzer.
//!
//! [`fuzz_source`] turns a 64-bit seed into a random-but-valid `.fasm`
//! source listing (the [`crate::assemble`] syntax) built to stress the four
//! failure classes of the paper's fast-address-calculation circuit:
//!
//! 1. **block-boundary straddles** — constant offsets just around a 32-byte
//!    block edge, where the block-offset adder's carry-out matters;
//! 2. **set-index carries** — offsets large enough that the carry-free OR
//!    composition of the set index is wrong;
//! 3. **large negative constants** — offsets beyond the one-set
//!    wrap-around the inverted-index trick can absorb;
//! 4. **negative register offsets** — register+register addressing with
//!    negative index values, which the circuit must always replay;
//!
//! plus mixed stack/global/far-region alignment (the `.gparray`/`.fararray`
//! `align` argument) and post-increment drift. The program shape guarantees
//! termination: the only backward edge is a counted loop whose counter no
//! body instruction may touch, so a differential run needs no generous
//! watchdog budget.
//!
//! Generation is a pure function of the seed — same seed, byte-identical
//! source, at any time, on any host (pinned by `fac-bench`'s determinism
//! tests). One statement per line, labels on their own lines, so the
//! failure shrinker can delete lines without breaking branch targets.

use fac_core::rng::SplitMix64;
use fac_isa::{
    AddrMode, AluImmOp, AluOp, FpFmt, FpOp, Insn, LoadOp, MulDivOp, Reg, ShiftOp, StoreOp,
};
use std::fmt::Write as _;

/// Registers the generator may overwrite inside the loop body.
const SCRATCH: [Reg; 14] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::V0,
    Reg::V1,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
];

/// Stable base registers (set up in the prologue, read-only in the body).
const BASES: [Reg; 5] = [Reg::S0, Reg::S1, Reg::S2, Reg::S3, Reg::S5];

/// Constant offsets biased at the four FAC failure classes (32-byte blocks,
/// 9 index bits at the paper geometry), plus benign in-block offsets so
/// correct speculations occur too.
const OFFSETS: [i16; 28] = [
    // benign in-block
    0, 4, 8, 12, 24, // block-boundary straddles
    28, 29, 30, 31, 32, 33, 36, 60, 63, 64, 65, // set-index carries
    480, 992, 4064, 8160, 16352, // negative, small through large
    -1, -4, -28, -33, -4097, -16384, -32768,
];

/// Values the index registers cycle through (negative register offsets are
/// failure class 4).
const INDEX_VALUES: [i32; 10] = [0, 4, 8, 16, 28, 60, -4, -12, -32, -128];

/// Post-increment steps (negative = post-decrement).
const STEPS: [i16; 6] = [4, 8, 16, 32, -4, -8];

/// Immediates for ALU-immediate instructions.
const IMMS: [i16; 12] = [0, 1, 3, 7, 31, 32, 255, 4095, -1, -2, -31, -256];

struct Gen {
    rng: SplitMix64,
    out: String,
    /// Forward-branch labels not yet placed: `(name, statements_left)`.
    pending: Vec<(String, u32)>,
    next_label: u32,
}

impl Gen {
    fn line(&mut self, text: impl AsRef<str>) {
        self.out.push_str("    ");
        self.out.push_str(text.as_ref());
        self.out.push('\n');
    }

    fn insn(&mut self, insn: Insn) {
        self.line(insn.to_string());
    }

    fn label_line(&mut self, name: &str) {
        let _ = writeln!(self.out, "{name}:");
    }

    fn scratch(&mut self) -> Reg {
        *self.rng.pick(&SCRATCH)
    }

    fn base(&mut self) -> Reg {
        *self.rng.pick(&BASES)
    }

    fn offset(&mut self) -> i16 {
        *self.rng.pick(&OFFSETS)
    }

    /// A random addressing mode over the stable bases, the drifting
    /// post-increment base `$s4`, or an index register.
    fn ea(&mut self) -> AddrMode {
        match self.rng.below(8) {
            0 => AddrMode::BaseIndex {
                base: self.base(),
                index: *self.rng.pick(&[Reg::T8, Reg::T9]),
            },
            1 => AddrMode::PostInc { base: Reg::S4, step: *self.rng.pick(&STEPS) },
            _ => AddrMode::BaseDisp { base: self.base(), disp: self.offset() },
        }
    }

    /// Emits one random body statement (and places any due forward label).
    fn body_statement(&mut self) {
        for slot in &mut self.pending {
            slot.1 = slot.1.saturating_sub(1);
        }
        while let Some(pos) = self.pending.iter().position(|(_, left)| *left == 0) {
            let (name, _) = self.pending.remove(pos);
            self.label_line(&name);
        }

        match self.rng.below(20) {
            // Loads: the instructions under test.
            0..=4 => {
                let op = *self.rng.pick(&[
                    LoadOp::Lw,
                    LoadOp::Lw,
                    LoadOp::Lw,
                    LoadOp::Lh,
                    LoadOp::Lhu,
                    LoadOp::Lb,
                    LoadOp::Lbu,
                ]);
                let insn = Insn::Load { op, rt: self.scratch(), ea: self.ea() };
                self.insn(insn);
            }
            // Stores.
            5..=7 => {
                let op = *self.rng.pick(&[StoreOp::Sw, StoreOp::Sw, StoreOp::Sh, StoreOp::Sb]);
                let insn = Insn::Store { op, rt: self.scratch(), ea: self.ea() };
                self.insn(insn);
            }
            // Re-aim an index register (negative values are failure class 4).
            8 => {
                let rt = *self.rng.pick(&[Reg::T8, Reg::T9]);
                let v = *self.rng.pick(&INDEX_VALUES);
                self.line(format!("li      {rt}, {v}"));
            }
            // Three-register ALU.
            9..=11 => {
                let op = *self.rng.pick(&[
                    AluOp::Addu,
                    AluOp::Subu,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Nor,
                    AluOp::Slt,
                    AluOp::Sltu,
                    AluOp::Sllv,
                    AluOp::Srlv,
                    AluOp::Srav,
                ]);
                let insn =
                    Insn::Alu { op, rd: self.scratch(), rs: self.scratch(), rt: self.scratch() };
                self.insn(insn);
            }
            // Immediate ALU.
            12..=13 => {
                let op = *self.rng.pick(&[
                    AluImmOp::Addiu,
                    AluImmOp::Addiu,
                    AluImmOp::Andi,
                    AluImmOp::Ori,
                    AluImmOp::Xori,
                    AluImmOp::Slti,
                    AluImmOp::Sltiu,
                ]);
                let insn = Insn::AluImm {
                    op,
                    rt: self.scratch(),
                    rs: self.scratch(),
                    imm: *self.rng.pick(&IMMS),
                };
                self.insn(insn);
            }
            // Constant shifts.
            14 => {
                let op = *self.rng.pick(&[ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra]);
                let insn = Insn::Shift {
                    op,
                    rd: self.scratch(),
                    rt: self.scratch(),
                    shamt: self.rng.below(32) as u8,
                };
                self.insn(insn);
            }
            // Multiply/divide and HI/LO reads.
            15 => {
                let op = *self.rng.pick(&[
                    MulDivOp::Mult,
                    MulDivOp::Multu,
                    MulDivOp::Div,
                    MulDivOp::Divu,
                ]);
                let (rs, rt) = (self.scratch(), self.scratch());
                self.insn(Insn::MulDiv { op, rs, rt });
                let rd = self.scratch();
                self.insn(Insn::Mflo { rd });
                let rd = self.scratch();
                self.insn(Insn::Mfhi { rd });
            }
            // FP traffic (doubles and singles over the fp scratch file).
            16..=17 => {
                let fd = fac_isa::FReg::new(2 * (1 + self.rng.below(4) as u8));
                let fs = fac_isa::FReg::new(2 * (1 + self.rng.below(4) as u8));
                let ft = fac_isa::FReg::new(2 * (1 + self.rng.below(4) as u8));
                match self.rng.below(4) {
                    0 => {
                        let ea = self.ea();
                        self.insn(Insn::LoadFp { fmt: FpFmt::D, ft: fd, ea });
                    }
                    1 => {
                        let ea = self.ea();
                        self.insn(Insn::StoreFp { fmt: FpFmt::D, ft: fd, ea });
                    }
                    _ => {
                        let op = *self.rng.pick(&[
                            FpOp::Add,
                            FpOp::Sub,
                            FpOp::Mul,
                            FpOp::Mov,
                            FpOp::Neg,
                            FpOp::Abs,
                        ]);
                        self.insn(Insn::Fp { op, fmt: FpFmt::D, fd, fs, ft });
                    }
                }
            }
            // A forward skip branch over the next few statements.
            18 => {
                let name = format!("skip{}", self.next_label);
                self.next_label += 1;
                let (a, b) = (self.scratch(), self.scratch());
                let cond = self.rng.below(4);
                match cond {
                    0 => self.line(format!("beq     {a}, {b}, {name}")),
                    1 => self.line(format!("bne     {a}, {b}, {name}")),
                    2 => self.line(format!("bgtz    {a}, {name}")),
                    _ => self.line(format!("blez    {a}, {name}")),
                }
                let distance = 1 + self.rng.below(4) as u32;
                self.pending.push((name, distance));
            }
            // Register moves through the FP file.
            _ => {
                let f = fac_isa::FReg::new(2 * (1 + self.rng.below(4) as u8));
                let r = self.scratch();
                if self.rng.chance(1, 2) {
                    self.insn(Insn::Mtc1 { rt: r, fs: f });
                    self.insn(Insn::CvtFromW { fmt: FpFmt::D, fd: f, fs: f });
                } else {
                    self.insn(Insn::Mfc1 { rt: r, fs: f });
                }
            }
        }
    }
}

/// Generates the `.fasm` source of one fuzz program from its seed.
///
/// The result always assembles, always halts (a counted loop is the only
/// backward edge) and leaves a fold of every scratch register at the
/// `checksum` global.
///
/// ```
/// use fac_asm::{assemble_and_link, fuzz_source, SoftwareSupport};
///
/// let src = fuzz_source(42);
/// assert_eq!(src, fuzz_source(42)); // pure function of the seed
/// let program = assemble_and_link(&src, "fuzz42", &SoftwareSupport::on()).unwrap();
/// assert!(program.text.len() > 10);
/// ```
pub fn fuzz_source(seed: u64) -> String {
    let mut g = Gen {
        rng: SplitMix64::new(seed ^ 0xfacf_0022_9e1d_0bad),
        out: String::new(),
        pending: Vec::new(),
        next_label: 0,
    };
    let _ = writeln!(g.out, "; fuzz program, seed {seed}");
    let _ = writeln!(g.out, "; generated by fac_asm::fuzz_source — do not edit");

    // Data regions with deliberately mixed alignment (32/8/4-byte, plus an
    // odd base offset below) and an initialized table so loads see nonzero
    // bytes.
    g.out.push_str(".gpword   checksum 0\n");
    g.out.push_str(".gparray  glob_a 512 32\n");
    g.out.push_str(".gparray  glob_b 384 4\n");
    g.out.push_str(".fararray heap_a 8192 32\n");
    g.out.push_str(".fararray heap_b 1024 8\n");
    let mut words = String::from(".farwords lut");
    let mut wrng = SplitMix64::new(seed ^ 0x1f70_c0de_0000_00f1);
    for _ in 0..32 {
        let _ = write!(words, " {}", wrng.next_u64() as u32);
    }
    g.out.push_str(&words);
    g.out.push('\n');
    g.label_line("start");

    // Stable bases: two globals, one far region, the stack, the table.
    let in_region = |g: &mut Gen, size: u32| g.rng.below(u64::from(size)) as u32 & !3;
    let off_a = in_region(&mut g, 256);
    let off_b = in_region(&mut g, 256) + 1; // odd base: worst-case alignment
    let off_h = in_region(&mut g, 4096);
    g.line(format!("la      $s0, glob_a+{off_a}"));
    g.line(format!("la      $s1, glob_b+{off_b}"));
    g.line(format!("la      $s2, heap_a+{off_h}"));
    g.line("addiu   $s3, $sp, -256");
    g.line("la      $s5, lut");
    // The drifting post-increment base.
    g.line("la      $s4, heap_b+512");
    // Seed the scratch registers with interesting values.
    for (i, r) in SCRATCH.iter().enumerate() {
        let v = match g.rng.below(4) {
            0 => g.rng.next_u64() as u32 as i32,
            1 => *g.rng.pick(&INDEX_VALUES),
            2 => (g.rng.below(65536) as i32) - 32768,
            _ => i as i32,
        };
        g.line(format!("li      {r}, {v}"));
    }
    g.line("li      $t8, 8");
    g.line("li      $t9, -16");

    // The counted loop: `$s7` belongs to the loop alone.
    let iters = 4 + g.rng.below(12);
    g.line(format!("li      $s7, {iters}"));
    g.label_line("loop");
    let body = 20 + g.rng.below(40);
    for _ in 0..body {
        g.body_statement();
    }
    // Flush any forward labels still pending before the loop tail.
    let pending: Vec<(String, u32)> = g.pending.drain(..).collect();
    for (name, _) in pending {
        g.label_line(&name);
    }
    g.line("addiu   $s7, $s7, -1");
    g.line("bgtz    $s7, loop");

    // Fold every scratch register (and the drift base) into the checksum.
    g.label_line("done");
    g.line("xor     $v0, $t0, $t1");
    for r in ["$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$t8", "$t9", "$v1", "$a0", "$a1",
        "$a2", "$a3", "$s4", "$s6"]
    {
        g.line(format!("xor     $v0, $v0, {r}"));
    }
    g.line("mfc1    $v1, $f6");
    g.line("xor     $v0, $v0, $v1");
    g.line("sw      $v0, checksum($gp)");
    g.line("halt");
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble_and_link, SoftwareSupport};

    #[test]
    fn same_seed_same_source() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(fuzz_source(seed), fuzz_source(seed));
        }
        assert_ne!(fuzz_source(1), fuzz_source(2));
    }

    #[test]
    fn every_early_seed_assembles_and_links() {
        for seed in 0..64u64 {
            let src = fuzz_source(seed);
            for sw in [SoftwareSupport::on(), SoftwareSupport::off()] {
                assemble_and_link(&src, &format!("fuzz{seed}"), &sw)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn generated_programs_stress_every_failure_class() {
        // Across a handful of seeds the generator must emit block-straddling
        // offsets, carry-provoking offsets, large negative constants and
        // negative index values.
        let all: String = (0..16).map(fuzz_source).collect();
        assert!(OFFSETS.iter().any(|o| (28..=33).contains(o)));
        for marker in ["31(", "4064(", "-16384(", "li      $t9, -16"] {
            assert!(all.contains(marker), "no `{marker}` in 16 seeds");
        }
    }
}
