//! Stack-frame layout under the §4 software-support policy.

use crate::support::{round_up, SoftwareSupport};
use fac_isa::Reg;
use std::collections::HashMap;

/// Declarative description of a function's stack frame.
///
/// The compiler support of §4 influences frames in three ways, all modelled
/// here:
///
/// * frame sizes are rounded to the program-wide stack alignment (64 bytes
///   with support, 8 without);
/// * frames larger than that explicitly align the stack pointer at entry
///   (up to 256 bytes), saving the caller's `$sp` in the frame;
/// * scalar slots are sorted **closest to `$sp`** so their offsets stay
///   below the stack alignment (without support, arrays come first and
///   scalars get large offsets — the stock-GCC layout).
///
/// ```
/// use fac_asm::{FrameBuilder, SoftwareSupport};
/// use fac_isa::Reg;
///
/// let frame = FrameBuilder::new(SoftwareSupport::on())
///     .save_ra()
///     .save(Reg::S0)
///     .scalar("i")
///     .array("buf", 100, 4)
///     .build();
/// assert_eq!(frame.size() % 64, 0);
/// assert!(frame.slot("i") < frame.slot("buf"));
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    policy: SoftwareSupport,
    save_ra: bool,
    saved: Vec<Reg>,
    scalars: Vec<(String, u32)>,
    arrays: Vec<(String, u32, u32)>,
}

impl FrameBuilder {
    /// Starts an empty frame under the given policy.
    pub fn new(policy: SoftwareSupport) -> FrameBuilder {
        FrameBuilder {
            policy,
            save_ra: false,
            saved: Vec::new(),
            scalars: Vec::new(),
            arrays: Vec::new(),
        }
    }

    /// Reserves a slot for the return address (needed by non-leaf
    /// functions).
    pub fn save_ra(mut self) -> FrameBuilder {
        self.save_ra = true;
        self
    }

    /// Reserves a save slot for a callee-saved register.
    pub fn save(mut self, reg: Reg) -> FrameBuilder {
        self.saved.push(reg);
        self
    }

    /// Adds a 4-byte scalar local named `name`.
    pub fn scalar(self, name: &str) -> FrameBuilder {
        self.scalar_sized(name, 4)
    }

    /// Adds a scalar local of `size` bytes (4 or 8).
    pub fn scalar_sized(mut self, name: &str, size: u32) -> FrameBuilder {
        assert!(size == 4 || size == 8, "scalars are 4 or 8 bytes");
        self.scalars.push((name.to_string(), size));
        self
    }

    /// Adds a local aggregate (array/struct) of `size` bytes with the given
    /// natural alignment.
    pub fn array(mut self, name: &str, size: u32, align: u32) -> FrameBuilder {
        assert!(align.is_power_of_two(), "array alignment must be a power of two");
        self.arrays.push((name.to_string(), size, align));
        self
    }

    /// Computes the final layout.
    ///
    /// # Panics
    ///
    /// Panics on duplicate slot names.
    pub fn build(self) -> Frame {
        let mut slots: HashMap<String, u32> = HashMap::new();
        let mut offset = 0u32;

        let place_scalars = |offset: &mut u32, slots: &mut HashMap<String, u32>| {
            for (name, size) in &self.scalars {
                *offset = round_up(*offset, *size);
                let prev = slots.insert(name.clone(), *offset);
                assert!(prev.is_none(), "duplicate frame slot {name}");
                *offset += size;
            }
        };
        let place_arrays = |offset: &mut u32, slots: &mut HashMap<String, u32>| {
            for (name, size, align) in &self.arrays {
                // With support, local aggregates get the boosted static
                // alignment (next pow2 ≤ 32) like globals.
                let align = self.policy.static_align(*size, *align);
                *offset = round_up(*offset, align);
                let prev = slots.insert(name.clone(), *offset);
                assert!(prev.is_none(), "duplicate frame slot {name}");
                *offset += self.policy.round_struct_size(*size);
            }
        };

        if self.policy.stack_frame_align > 8 {
            // Software support: scalars nearest the stack pointer.
            place_scalars(&mut offset, &mut slots);
            place_arrays(&mut offset, &mut slots);
        } else {
            // Stock layout: aggregates first, scalars above them.
            place_arrays(&mut offset, &mut slots);
            place_scalars(&mut offset, &mut slots);
        }

        // Register save area and return address at the top of the frame.
        let mut saved = Vec::new();
        for reg in &self.saved {
            offset = round_up(offset, 4);
            saved.push((*reg, offset));
            offset += 4;
        }
        let ra_slot = if self.save_ra {
            offset = round_up(offset, 4);
            let s = offset;
            offset += 4;
            Some(s)
        } else {
            None
        };

        let rounded = self.policy.round_frame_size(offset.max(8));
        let explicit_align = self.policy.explicit_stack_align(rounded);
        // The old-sp word (explicitly aligned frames only) lives in the top
        // word of the frame; grow the frame if the layout already uses it.
        let size = match explicit_align {
            Some(_) if offset + 4 > rounded => self.policy.round_frame_size(offset + 4),
            _ => rounded,
        };
        let old_sp_slot = explicit_align.map(|_| size - 4);

        Frame { size, explicit_align, slots, saved, ra_slot, old_sp_slot }
    }
}

/// A finalized stack-frame layout. Produced by [`FrameBuilder::build`].
#[derive(Debug, Clone)]
pub struct Frame {
    size: u32,
    explicit_align: Option<u32>,
    slots: HashMap<String, u32>,
    saved: Vec<(Reg, u32)>,
    ra_slot: Option<u32>,
    old_sp_slot: Option<u32>,
}

impl Frame {
    /// Total frame size in bytes (already rounded to the policy alignment).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Explicit stack alignment for oversized frames, when the policy
    /// demands one.
    pub fn explicit_align(&self) -> Option<u32> {
        self.explicit_align
    }

    /// Offset (from `$sp`) of a named local slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not exist.
    pub fn slot(&self, name: &str) -> i16 {
        let off = *self
            .slots
            .get(name)
            .unwrap_or_else(|| panic!("no frame slot named {name}"));
        i16::try_from(off).expect("frame offset fits in 16 bits")
    }

    /// Offsets of the callee-saved registers.
    pub fn saved(&self) -> &[(Reg, u32)] {
        &self.saved
    }

    /// Offset of the return-address slot, if reserved.
    pub fn ra_slot(&self) -> Option<u32> {
        self.ra_slot
    }

    /// Offset of the saved caller `$sp`, for explicitly aligned frames.
    pub fn old_sp_slot(&self) -> Option<u32> {
        self.old_sp_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_layout_puts_scalars_first() {
        let f = FrameBuilder::new(SoftwareSupport::on())
            .scalar("i")
            .scalar("j")
            .array("buf", 40, 4)
            .build();
        assert_eq!(f.slot("i"), 0);
        assert_eq!(f.slot("j"), 4);
        assert!(f.slot("buf") >= 8);
        assert_eq!(f.size() % 64, 0);
    }

    #[test]
    fn stock_layout_puts_arrays_first() {
        let f = FrameBuilder::new(SoftwareSupport::off())
            .scalar("i")
            .array("buf", 40, 4)
            .build();
        assert_eq!(f.slot("buf"), 0);
        assert_eq!(f.slot("i"), 40);
        assert_eq!(f.size() % 8, 0);
    }

    #[test]
    fn big_frames_get_explicit_alignment_with_support() {
        let f = FrameBuilder::new(SoftwareSupport::on())
            .array("big", 300, 8)
            .build();
        assert!(f.size() > 64);
        let align = f.explicit_align().expect("explicit alignment");
        assert!(align.is_power_of_two() && align <= 256);
        assert!(f.old_sp_slot().is_some());
    }

    #[test]
    fn big_frames_stay_plain_without_support() {
        let f = FrameBuilder::new(SoftwareSupport::off())
            .array("big", 300, 8)
            .build();
        assert_eq!(f.explicit_align(), None);
        assert_eq!(f.old_sp_slot(), None);
    }

    #[test]
    fn ra_and_saves_have_slots() {
        let f = FrameBuilder::new(SoftwareSupport::on())
            .save_ra()
            .save(Reg::S0)
            .save(Reg::S1)
            .scalar("x")
            .build();
        assert!(f.ra_slot().is_some());
        assert_eq!(f.saved().len(), 2);
        let mut offsets: Vec<u32> = f.saved().iter().map(|&(_, o)| o).collect();
        offsets.push(f.ra_slot().unwrap());
        offsets.push(f.slot("x") as u32);
        let unique: std::collections::HashSet<u32> = offsets.iter().copied().collect();
        assert_eq!(unique.len(), offsets.len(), "no slot collisions");
    }

    #[test]
    fn old_sp_does_not_collide() {
        let f = FrameBuilder::new(SoftwareSupport::on())
            .save_ra()
            .array("big", 124, 4)
            .build();
        if let Some(old_sp) = f.old_sp_slot() {
            assert_ne!(Some(old_sp), f.ra_slot());
            assert!(old_sp < f.size());
            assert!(old_sp >= 124);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate frame slot")]
    fn duplicate_slots_rejected() {
        let _ = FrameBuilder::new(SoftwareSupport::on())
            .scalar("x")
            .scalar("x")
            .build();
    }

    #[test]
    fn minimum_frame_is_nonzero() {
        let f = FrameBuilder::new(SoftwareSupport::off()).build();
        assert!(f.size() >= 8);
    }
}
