//! Integration tests for the linker: symbol resolution, layout policies,
//! and error paths.

use fac_asm::{Asm, FrameBuilder, LinkError, SoftwareSupport, HEAP_PTR_SYMBOL, TEXT_BASE};
use fac_isa::{AddrMode, Insn, Reg};

fn on() -> SoftwareSupport {
    SoftwareSupport::on()
}

fn off() -> SoftwareSupport {
    SoftwareSupport::off()
}

#[test]
fn gp_relative_loads_resolve_to_gp_base() {
    let mut a = Asm::new();
    a.gp_word("x", 7);
    a.lw_gp(Reg::T0, "x", 0);
    a.halt();
    let p = a.link("t", &on()).unwrap();
    let Insn::Load { ea: AddrMode::BaseDisp { base, disp }, .. } = p.text[0] else {
        panic!("expected a gp-relative load, got {}", p.text[0]);
    };
    assert_eq!(base, Reg::GP);
    assert_eq!(p.gp.wrapping_add(disp as i32 as u32), p.symbol("x"));
}

#[test]
fn with_support_gp_offsets_are_positive() {
    let mut a = Asm::new();
    for i in 0..40 {
        a.gp_word(&format!("v{i}"), i);
    }
    a.halt();
    let p = a.link("t", &on()).unwrap();
    for i in 0..40 {
        let addr = p.symbol(&format!("v{i}"));
        assert!(addr >= p.gp, "v{i} below gp");
        assert!(addr - p.gp <= 0x7fff, "v{i} out of range");
    }
}

#[test]
fn without_support_some_gp_offsets_are_negative() {
    let mut a = Asm::new();
    a.gp_word("early", 1); // placed right after __heap, before gp+16
    a.halt();
    let p = a.link("t", &off()).unwrap();
    assert!(p.symbol(HEAP_PTR_SYMBOL) < p.gp, "heap pointer sits below gp");
}

#[test]
fn la_expands_to_lui_ori() {
    let mut a = Asm::new();
    a.far_array("big", 1024, 4);
    a.la(Reg::S0, "big", 12);
    a.halt();
    let p = a.link("t", &on()).unwrap();
    let addr = p.symbol("big") + 12;
    assert!(matches!(p.text[0], Insn::Lui { rt: Reg::S0, imm } if imm as u32 == addr >> 16));
    assert!(matches!(
        p.text[1],
        Insn::AluImm { op: fac_isa::AluImmOp::Ori, rt: Reg::S0, rs: Reg::S0, imm }
            if imm as u16 as u32 == (addr & 0xffff)
    ));
}

#[test]
fn jumps_and_branches_resolve() {
    let mut a = Asm::new();
    a.label("top");
    a.nop();
    a.j("exit");
    a.nop();
    a.label("exit");
    a.beq(Reg::ZERO, Reg::ZERO, "top");
    a.halt();
    let p = a.link("t", &on()).unwrap();
    let Insn::J { target } = p.text[1] else { panic!("expected j") };
    assert_eq!(target << 2, TEXT_BASE + 3 * 4);
    let Insn::Branch { off, .. } = p.text[3] else { panic!("expected beq") };
    assert_eq!(off, -4); // back to index 0 from index 4
}

#[test]
fn undefined_label_is_an_error() {
    let mut a = Asm::new();
    a.j("nowhere");
    assert_eq!(
        a.link("t", &on()).unwrap_err(),
        LinkError::UndefinedLabel("nowhere".into())
    );
}

#[test]
fn undefined_symbol_is_an_error() {
    let mut a = Asm::new();
    a.lw_gp(Reg::T0, "ghost", 0);
    let err = a.link("t", &on()).unwrap_err();
    assert_eq!(err, LinkError::UndefinedSymbol("ghost".into()));
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn oversized_global_region_is_an_error() {
    let mut a = Asm::new();
    a.gp_array("huge", 40_000, 4);
    a.halt();
    assert!(matches!(
        a.link("t", &on()).unwrap_err(),
        LinkError::GlobalRegionTooLarge(_)
    ));
}

#[test]
fn static_alignment_policy_applies() {
    let mut a = Asm::new();
    a.gp_array("pad", 4, 4);
    a.gp_array("arr24", 24, 4); // next pow2 = 32 with support
    a.halt();
    let with = a.clone().link("t", &on()).unwrap();
    let without = a.link("t", &off()).unwrap();
    assert_eq!(with.symbol("arr24") % 32, 0, "boosted alignment with support");
    assert_eq!(without.symbol("arr24") % 4, 0);
}

#[test]
fn heap_pointer_initialized_per_policy() {
    let mut a = Asm::new();
    a.halt();
    let with = a.clone().link("t", &on()).unwrap();
    let without = a.link("t", &off()).unwrap();
    assert_eq!(with.heap_base % 32, 0);
    assert_eq!(without.heap_base % 32, 8, "stock heap is only 8-byte aligned");
    // The __heap global's initial value must equal the heap base.
    let blob = with
        .data
        .iter()
        .find(|b| b.addr == with.symbol(HEAP_PTR_SYMBOL))
        .expect("heap pointer blob");
    assert_eq!(u32::from_le_bytes(blob.bytes[..4].try_into().unwrap()), with.heap_base);
}

#[test]
fn prologue_epilogue_roundtrip_preserves_sp() {
    use fac_sim::{ArchState, Machine, MachineConfig};
    for sw in [on(), off()] {
        // A frame large enough to trigger explicit alignment with support.
        let frame = FrameBuilder::new(sw).save_ra().array("big", 200, 8).build();
        let mut a = Asm::new();
        a.gp_word("out", 0);
        a.call("f");
        a.sw_gp(Reg::SP, "out", 0);
        a.halt();
        a.label("f");
        a.prologue(&frame);
        a.sw(Reg::ZERO, frame.slot("big"), Reg::SP);
        a.epilogue_ret(&frame);
        let p = a.link("t", &sw).unwrap();
        let initial_sp = ArchState::new(&p).regs[Reg::SP.index()];
        let r = Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();
        assert_eq!(
            r.final_state.mem.read_u32(p.symbol("out")),
            initial_sp,
            "sp restored after an aligned frame (support={})",
            sw.stack_frame_align > 8
        );
    }
}

#[test]
fn disassembly_of_linked_program_is_complete() {
    let mut a = Asm::new();
    a.gp_word("x", 0);
    a.lw_gp(Reg::T0, "x", 0);
    a.addiu(Reg::T0, Reg::T0, 1);
    a.sw_gp(Reg::T0, "x", 0);
    a.halt();
    let p = a.link("t", &on()).unwrap();
    let d = p.disassemble();
    assert_eq!(d.lines().count(), p.text.len());
    assert!(d.contains("lw"));
    assert!(d.contains("halt"));
}

#[test]
fn all_instructions_in_linked_programs_encode() {
    // Cross-crate property: everything the builder emits round-trips
    // through the binary encoding.
    let mut a = Asm::new();
    a.gp_word("x", 0);
    a.gp_double("d", 1.5);
    a.far_array("arr", 256, 4);
    a.la(Reg::S0, "arr", 0);
    a.lw_gp(Reg::T0, "x", 0);
    a.l_d_gp(fac_isa::FReg::F2, "d", 0);
    a.lw_x(Reg::T1, Reg::S0, Reg::T0);
    a.sw_pi(Reg::T1, Reg::S0, 4);
    a.li_d(fac_isa::FReg::F4, 3);
    a.mul_d(fac_isa::FReg::F6, fac_isa::FReg::F2, fac_isa::FReg::F4);
    a.halt();
    let p = a.link("t", &on()).unwrap();
    for insn in &p.text {
        let word = fac_isa::encode(insn);
        assert_eq!(fac_isa::decode(word).as_ref(), Ok(insn));
    }
}

#[test]
fn assembled_text_matches_builder_output() {
    // The same program written through the text front end and through the
    // builder API must link to identical instruction streams.
    let source = r#"
        .gpword total 0
        .fararray data 64 4
    entry:
        la    $s0, data
        li    $t0, 16
    loop:
        lw    $t1, ($s0)+4
        lw    $t2, total($gp)
        addu  $t2, $t2, $t1
        sw    $t2, total($gp)
        addiu $t0, $t0, -1
        bgtz  $t0, loop
        halt
    "#;
    let from_text = fac_asm::assemble(source)
        .unwrap()
        .link("t", &on())
        .unwrap();

    let mut b = Asm::new();
    b.gp_word("total", 0);
    b.far_array("data", 64, 4);
    b.label("entry");
    b.la(Reg::S0, "data", 0);
    b.li(Reg::T0, 16);
    b.label("loop");
    b.lw_pi(Reg::T1, Reg::S0, 4);
    b.lw_gp(Reg::T2, "total", 0);
    b.addu(Reg::T2, Reg::T2, Reg::T1);
    b.sw_gp(Reg::T2, "total", 0);
    b.addiu(Reg::T0, Reg::T0, -1);
    b.bgtz(Reg::T0, "loop");
    b.halt();
    let from_builder = b.link("t", &on()).unwrap();

    assert_eq!(from_text.text, from_builder.text);
    assert_eq!(from_text.gp, from_builder.gp);
    assert_eq!(from_text.symbol("total"), from_builder.symbol("total"));
}

#[test]
fn assembled_program_runs_correctly() {
    use fac_sim::{Machine, MachineConfig};
    let source = r#"
        .gpword out 0
        li   $t0, 6
        li   $t1, 7
        mult $t0, $t1
        mflo $t2
        sw   $t2, out($gp)
        halt
    "#;
    let p = fac_asm::assemble_and_link(source, "t", &on()).unwrap();
    let r = Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();
    assert_eq!(r.final_state.mem.read_u32(p.symbol("out")), 42);
}
