//! Property tests: every instruction round-trips through the binary
//! encoding, and decoding is total over the image of `encode`.

use fac_isa::{
    decode, encode, AddrMode, AluImmOp, AluOp, BranchCond, FReg, FpCond, FpFmt, FpOp, Insn,
    LoadOp, MulDivOp, Reg, ShiftOp, StoreOp,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn arb_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn arb_addr_mode() -> impl Strategy<Value = AddrMode> {
    prop_oneof![
        (arb_reg(), any::<i16>()).prop_map(|(base, disp)| AddrMode::BaseDisp { base, disp }),
        (arb_reg(), arb_reg()).prop_map(|(base, index)| AddrMode::BaseIndex { base, index }),
        (arb_reg(), any::<i16>()).prop_map(|(base, step)| AddrMode::PostInc { base, step }),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    let alu_op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Addu),
        Just(AluOp::Sub),
        Just(AluOp::Subu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Nor),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Sllv),
        Just(AluOp::Srlv),
        Just(AluOp::Srav),
    ];
    let alu_imm_op = prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Addiu),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
    ];
    let shift_op = prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)];
    let muldiv_op = prop_oneof![
        Just(MulDivOp::Mult),
        Just(MulDivOp::Multu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
    ];
    let load_op = prop_oneof![
        Just(LoadOp::Lb),
        Just(LoadOp::Lbu),
        Just(LoadOp::Lh),
        Just(LoadOp::Lhu),
        Just(LoadOp::Lw),
    ];
    let store_op = prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)];
    let fp_fmt = prop_oneof![Just(FpFmt::S), Just(FpFmt::D)];
    let fp_op = prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::Abs),
        Just(FpOp::Neg),
        Just(FpOp::Mov),
        Just(FpOp::Sqrt),
    ];
    let fp_cond = prop_oneof![Just(FpCond::Eq), Just(FpCond::Lt), Just(FpCond::Le)];
    let branch_cond = prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lez),
        Just(BranchCond::Gtz),
        Just(BranchCond::Ltz),
        Just(BranchCond::Gez),
    ];

    prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Halt),
        (alu_op, arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs, rt)| Insn::Alu { op, rd, rs, rt }),
        (alu_imm_op, arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rt, rs, imm)| Insn::AluImm { op, rt, rs, imm }),
        (shift_op, arb_reg(), arb_reg(), 0u8..32)
            .prop_map(|(op, rd, rt, shamt)| Insn::Shift { op, rd, rt, shamt }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Insn::Lui { rt, imm }),
        (muldiv_op, arb_reg(), arb_reg()).prop_map(|(op, rs, rt)| Insn::MulDiv { op, rs, rt }),
        arb_reg().prop_map(|rd| Insn::Mfhi { rd }),
        arb_reg().prop_map(|rd| Insn::Mflo { rd }),
        (load_op, arb_reg(), arb_addr_mode()).prop_map(|(op, rt, ea)| Insn::Load { op, rt, ea }),
        (store_op, arb_reg(), arb_addr_mode())
            .prop_map(|(op, rt, ea)| Insn::Store { op, rt, ea }),
        (fp_fmt.clone(), arb_freg(), arb_addr_mode())
            .prop_map(|(fmt, ft, ea)| Insn::LoadFp { fmt, ft, ea }),
        (fp_fmt.clone(), arb_freg(), arb_addr_mode())
            .prop_map(|(fmt, ft, ea)| Insn::StoreFp { fmt, ft, ea }),
        (fp_op, fp_fmt.clone(), arb_freg(), arb_freg(), arb_freg())
            .prop_map(|(op, fmt, fd, fs, ft)| Insn::Fp { op, fmt, fd, fs, ft }),
        (fp_cond, fp_fmt.clone(), arb_freg(), arb_freg())
            .prop_map(|(cond, fmt, fs, ft)| Insn::FpCmp { cond, fmt, fs, ft }),
        (any::<bool>(), any::<i16>()).prop_map(|(on_true, off)| Insn::Bc1 { on_true, off }),
        (arb_reg(), arb_freg()).prop_map(|(rt, fs)| Insn::Mtc1 { rt, fs }),
        (arb_reg(), arb_freg()).prop_map(|(rt, fs)| Insn::Mfc1 { rt, fs }),
        (fp_fmt.clone(), arb_freg(), arb_freg())
            .prop_map(|(fmt, fd, fs)| Insn::CvtFromW { fmt, fd, fs }),
        (fp_fmt, arb_freg(), arb_freg()).prop_map(|(fmt, fd, fs)| Insn::TruncToW { fmt, fd, fs }),
        (branch_cond, arb_reg(), arb_reg(), any::<i16>()).prop_map(|(cond, rs, rt, off)| {
            let rt = if cond.uses_rt() { rt } else { Reg::ZERO };
            Insn::Branch { cond, rs, rt, off }
        }),
        (0u32..0x0400_0000).prop_map(|target| Insn::J { target }),
        (0u32..0x0400_0000).prop_map(|target| Insn::Jal { target }),
        arb_reg().prop_map(|rs| Insn::Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Insn::Jalr { rd, rs }),
    ]
}

proptest! {
    /// encode → decode is the identity.
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        // `sll $zero, $zero, 0` shares the all-zero word with `nop` by design.
        let canonical = match insn {
            Insn::Shift { op: ShiftOp::Sll, rd, rt, shamt }
                if rd == Reg::ZERO && rt == Reg::ZERO && shamt == 0 => Insn::Nop,
            other => other,
        };
        prop_assert_eq!(decode(encode(&insn)).unwrap(), canonical);
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn disassembly_total(insn in arb_insn()) {
        prop_assert!(!insn.to_string().is_empty());
    }

    /// Decoding arbitrary words either fails cleanly or yields an
    /// instruction that re-encodes to a decodable word (decode is stable).
    #[test]
    fn decode_is_stable(word in any::<u32>()) {
        if let Ok(insn) = decode(word) {
            let reencoded = encode(&insn);
            prop_assert_eq!(decode(reencoded).unwrap(), insn);
        }
    }
}

proptest! {
    /// The text form also round-trips: parse(display(insn)) == insn,
    /// modulo the operands the text form does not carry (a unary FP op's
    /// unused `ft` field reads back as `$f0`).
    #[test]
    fn display_parse_roundtrip(insn in arb_insn()) {
        let canonical = match insn {
            Insn::Fp { op, fmt, fd, fs, .. } if op.is_unary() => {
                Insn::Fp { op, fmt, fd, fs, ft: FReg::new(0) }
            }
            other => other,
        };
        let text = insn.to_string();
        let parsed = fac_isa::parse_insn(&text)
            .unwrap_or_else(|e| panic!("{text:?}: {e}"));
        prop_assert_eq!(parsed, canonical);
    }
}
