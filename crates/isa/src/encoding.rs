//! Binary instruction encoding.
//!
//! The encoding is MIPS-I-shaped (6-bit primary opcode, `rs`/`rt`/`rd`
//! fields) with three extensions for the paper's addressing modes:
//!
//! * opcode `0x1C` (`LSX`) carries register+register loads/stores with the
//!   access kind in the `funct` field and the data register in `rd`;
//! * a block of dedicated opcodes carries post-increment/decrement accesses
//!   with the post-update step in the immediate field.
//!
//! Every [`Insn`] round-trips: `decode(encode(i)) == Ok(i)` (checked by unit
//! and property tests).

use crate::insn::{AluImmOp, AluOp, MulDivOp, ShiftOp};
use crate::{AddrMode, BranchCond, FReg, FpCond, FpFmt, FpOp, Insn, LoadOp, Reg, StoreOp};
use core::fmt;

/// Error returned by [`decode`] for words that do not encode an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Field packers.
fn r(op: u32, rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}
fn i(op: u32, rs: u32, rt: u32, imm: u16) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | imm as u32
}

// Field extractors.
fn f_op(w: u32) -> u32 {
    w >> 26
}
fn f_rs(w: u32) -> u32 {
    (w >> 21) & 0x1f
}
fn f_rt(w: u32) -> u32 {
    (w >> 16) & 0x1f
}
fn f_rd(w: u32) -> u32 {
    (w >> 11) & 0x1f
}
fn f_shamt(w: u32) -> u32 {
    (w >> 6) & 0x1f
}
fn f_funct(w: u32) -> u32 {
    w & 0x3f
}
fn f_imm(w: u32) -> i16 {
    (w & 0xffff) as u16 as i16
}

const OP_REGIMM: u32 = 0x01;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLEZ: u32 = 0x06;
const OP_BGTZ: u32 = 0x07;
const OP_COP1: u32 = 0x11;
const OP_LSX: u32 = 0x1c;

/// `funct` codes inside the `LSX` (register+register) opcode, and the
/// per-kind post-increment opcode, for each load/store kind.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LsKind {
    L(LoadOp),
    S(StoreOp),
    Lf(FpFmt),
    Sf(FpFmt),
}

impl LsKind {
    fn lsx_funct(self) -> u32 {
        match self {
            LsKind::L(LoadOp::Lb) => 0x00,
            LsKind::L(LoadOp::Lbu) => 0x01,
            LsKind::L(LoadOp::Lh) => 0x02,
            LsKind::L(LoadOp::Lhu) => 0x03,
            LsKind::L(LoadOp::Lw) => 0x04,
            LsKind::S(StoreOp::Sb) => 0x05,
            LsKind::S(StoreOp::Sh) => 0x06,
            LsKind::S(StoreOp::Sw) => 0x07,
            LsKind::Lf(FpFmt::S) => 0x08,
            LsKind::Lf(FpFmt::D) => 0x09,
            LsKind::Sf(FpFmt::S) => 0x0a,
            LsKind::Sf(FpFmt::D) => 0x0b,
        }
    }

    fn from_lsx_funct(funct: u32) -> Option<LsKind> {
        Some(match funct {
            0x00 => LsKind::L(LoadOp::Lb),
            0x01 => LsKind::L(LoadOp::Lbu),
            0x02 => LsKind::L(LoadOp::Lh),
            0x03 => LsKind::L(LoadOp::Lhu),
            0x04 => LsKind::L(LoadOp::Lw),
            0x05 => LsKind::S(StoreOp::Sb),
            0x06 => LsKind::S(StoreOp::Sh),
            0x07 => LsKind::S(StoreOp::Sw),
            0x08 => LsKind::Lf(FpFmt::S),
            0x09 => LsKind::Lf(FpFmt::D),
            0x0a => LsKind::Sf(FpFmt::S),
            0x0b => LsKind::Sf(FpFmt::D),
            _ => return None,
        })
    }

    fn disp_op(self) -> u32 {
        match self {
            LsKind::L(LoadOp::Lb) => 0x20,
            LsKind::L(LoadOp::Lh) => 0x21,
            LsKind::L(LoadOp::Lw) => 0x23,
            LsKind::L(LoadOp::Lbu) => 0x24,
            LsKind::L(LoadOp::Lhu) => 0x25,
            LsKind::S(StoreOp::Sb) => 0x28,
            LsKind::S(StoreOp::Sh) => 0x29,
            LsKind::S(StoreOp::Sw) => 0x2b,
            LsKind::Lf(FpFmt::S) => 0x31,
            LsKind::Lf(FpFmt::D) => 0x35,
            LsKind::Sf(FpFmt::S) => 0x39,
            LsKind::Sf(FpFmt::D) => 0x3d,
        }
    }

    fn from_disp_op(op: u32) -> Option<LsKind> {
        Some(match op {
            0x20 => LsKind::L(LoadOp::Lb),
            0x21 => LsKind::L(LoadOp::Lh),
            0x23 => LsKind::L(LoadOp::Lw),
            0x24 => LsKind::L(LoadOp::Lbu),
            0x25 => LsKind::L(LoadOp::Lhu),
            0x28 => LsKind::S(StoreOp::Sb),
            0x29 => LsKind::S(StoreOp::Sh),
            0x2b => LsKind::S(StoreOp::Sw),
            0x31 => LsKind::Lf(FpFmt::S),
            0x35 => LsKind::Lf(FpFmt::D),
            0x39 => LsKind::Sf(FpFmt::S),
            0x3d => LsKind::Sf(FpFmt::D),
            _ => return None,
        })
    }

    fn postinc_op(self) -> u32 {
        match self {
            LsKind::L(LoadOp::Lb) => 0x22,
            LsKind::L(LoadOp::Lbu) => 0x26,
            LsKind::L(LoadOp::Lh) => 0x27,
            LsKind::L(LoadOp::Lhu) => 0x2a,
            LsKind::L(LoadOp::Lw) => 0x2c,
            LsKind::S(StoreOp::Sb) => 0x2d,
            LsKind::S(StoreOp::Sh) => 0x2e,
            LsKind::S(StoreOp::Sw) => 0x2f,
            LsKind::Lf(FpFmt::S) => 0x32,
            LsKind::Lf(FpFmt::D) => 0x36,
            LsKind::Sf(FpFmt::S) => 0x3a,
            LsKind::Sf(FpFmt::D) => 0x3e,
        }
    }

    fn from_postinc_op(op: u32) -> Option<LsKind> {
        Some(match op {
            0x22 => LsKind::L(LoadOp::Lb),
            0x26 => LsKind::L(LoadOp::Lbu),
            0x27 => LsKind::L(LoadOp::Lh),
            0x2a => LsKind::L(LoadOp::Lhu),
            0x2c => LsKind::L(LoadOp::Lw),
            0x2d => LsKind::S(StoreOp::Sb),
            0x2e => LsKind::S(StoreOp::Sh),
            0x2f => LsKind::S(StoreOp::Sw),
            0x32 => LsKind::Lf(FpFmt::S),
            0x36 => LsKind::Lf(FpFmt::D),
            0x3a => LsKind::Sf(FpFmt::S),
            0x3e => LsKind::Sf(FpFmt::D),
            _ => return None,
        })
    }

    fn build(self, data_reg: u32, ea: AddrMode) -> Insn {
        match self {
            LsKind::L(op) => Insn::Load { op, rt: Reg::new(data_reg as u8), ea },
            LsKind::S(op) => Insn::Store { op, rt: Reg::new(data_reg as u8), ea },
            LsKind::Lf(fmt) => Insn::LoadFp { fmt, ft: FReg::new(data_reg as u8), ea },
            LsKind::Sf(fmt) => Insn::StoreFp { fmt, ft: FReg::new(data_reg as u8), ea },
        }
    }
}

fn ls_kind(insn: &Insn) -> Option<(LsKind, u32, AddrMode)> {
    Some(match *insn {
        Insn::Load { op, rt, ea } => (LsKind::L(op), rt.index() as u32, ea),
        Insn::Store { op, rt, ea } => (LsKind::S(op), rt.index() as u32, ea),
        Insn::LoadFp { fmt, ft, ea } => (LsKind::Lf(fmt), ft.index() as u32, ea),
        Insn::StoreFp { fmt, ft, ea } => (LsKind::Sf(fmt), ft.index() as u32, ea),
        _ => return None,
    })
}

fn alu_funct(op: AluOp) -> u32 {
    match op {
        AluOp::Sllv => 0x04,
        AluOp::Srlv => 0x06,
        AluOp::Srav => 0x07,
        AluOp::Add => 0x20,
        AluOp::Addu => 0x21,
        AluOp::Sub => 0x22,
        AluOp::Subu => 0x23,
        AluOp::And => 0x24,
        AluOp::Or => 0x25,
        AluOp::Xor => 0x26,
        AluOp::Nor => 0x27,
        AluOp::Slt => 0x2a,
        AluOp::Sltu => 0x2b,
    }
}

fn alu_from_funct(funct: u32) -> Option<AluOp> {
    Some(match funct {
        0x04 => AluOp::Sllv,
        0x06 => AluOp::Srlv,
        0x07 => AluOp::Srav,
        0x20 => AluOp::Add,
        0x21 => AluOp::Addu,
        0x22 => AluOp::Sub,
        0x23 => AluOp::Subu,
        0x24 => AluOp::And,
        0x25 => AluOp::Or,
        0x26 => AluOp::Xor,
        0x27 => AluOp::Nor,
        0x2a => AluOp::Slt,
        0x2b => AluOp::Sltu,
        _ => return None,
    })
}

fn fp_funct(op: FpOp) -> u32 {
    match op {
        FpOp::Add => 0x00,
        FpOp::Sub => 0x01,
        FpOp::Mul => 0x02,
        FpOp::Div => 0x03,
        FpOp::Sqrt => 0x04,
        FpOp::Abs => 0x05,
        FpOp::Mov => 0x06,
        FpOp::Neg => 0x07,
    }
}

fn fmt_field(fmt: FpFmt) -> u32 {
    match fmt {
        FpFmt::S => 0x10,
        FpFmt::D => 0x11,
    }
}

fn fmt_from_field(field: u32) -> Option<FpFmt> {
    match field {
        0x10 => Some(FpFmt::S),
        0x11 => Some(FpFmt::D),
        _ => None,
    }
}

/// Encodes an instruction into its 32-bit binary form.
///
/// ```
/// use fac_isa::{encode, decode, Insn, Reg, AddrMode, LoadOp};
/// let insn = Insn::Load {
///     op: LoadOp::Lw,
///     rt: Reg::T0,
///     ea: AddrMode::BaseIndex { base: Reg::S0, index: Reg::S1 },
/// };
/// assert_eq!(decode(encode(&insn)).unwrap(), insn);
/// ```
pub fn encode(insn: &Insn) -> u32 {
    match *insn {
        Insn::Nop => 0,
        Insn::Alu { op, rd, rs, rt } => r(
            0,
            rs.index() as u32,
            rt.index() as u32,
            rd.index() as u32,
            0,
            alu_funct(op),
        ),
        Insn::AluImm { op, rt, rs, imm } => {
            let opc = match op {
                AluImmOp::Addi => 0x08,
                AluImmOp::Addiu => 0x09,
                AluImmOp::Slti => 0x0a,
                AluImmOp::Sltiu => 0x0b,
                AluImmOp::Andi => 0x0c,
                AluImmOp::Ori => 0x0d,
                AluImmOp::Xori => 0x0e,
            };
            i(opc, rs.index() as u32, rt.index() as u32, imm as u16)
        }
        Insn::Shift { op, rd, rt, shamt } => {
            let funct = match op {
                ShiftOp::Sll => 0x00,
                ShiftOp::Srl => 0x02,
                ShiftOp::Sra => 0x03,
            };
            r(0, 0, rt.index() as u32, rd.index() as u32, shamt as u32, funct)
        }
        Insn::Lui { rt, imm } => i(0x0f, 0, rt.index() as u32, imm),
        Insn::MulDiv { op, rs, rt } => {
            let funct = match op {
                MulDivOp::Mult => 0x18,
                MulDivOp::Multu => 0x19,
                MulDivOp::Div => 0x1a,
                MulDivOp::Divu => 0x1b,
            };
            r(0, rs.index() as u32, rt.index() as u32, 0, 0, funct)
        }
        Insn::Mfhi { rd } => r(0, 0, 0, rd.index() as u32, 0, 0x10),
        Insn::Mflo { rd } => r(0, 0, 0, rd.index() as u32, 0, 0x12),
        Insn::Load { .. } | Insn::Store { .. } | Insn::LoadFp { .. } | Insn::StoreFp { .. } => {
            let (kind, data, ea) = ls_kind(insn).expect("memory instruction");
            match ea {
                AddrMode::BaseDisp { base, disp } => {
                    i(kind.disp_op(), base.index() as u32, data, disp as u16)
                }
                AddrMode::BaseIndex { base, index } => r(
                    OP_LSX,
                    base.index() as u32,
                    index.index() as u32,
                    data,
                    0,
                    kind.lsx_funct(),
                ),
                AddrMode::PostInc { base, step } => {
                    i(kind.postinc_op(), base.index() as u32, data, step as u16)
                }
            }
        }
        Insn::Fp { op, fmt, fd, fs, ft } => r(
            OP_COP1,
            fmt_field(fmt),
            ft.index() as u32,
            fs.index() as u32,
            fd.index() as u32,
            fp_funct(op),
        ),
        Insn::FpCmp { cond, fmt, fs, ft } => {
            let funct = match cond {
                FpCond::Eq => 0x32,
                FpCond::Lt => 0x3c,
                FpCond::Le => 0x3e,
            };
            r(OP_COP1, fmt_field(fmt), ft.index() as u32, fs.index() as u32, 0, funct)
        }
        Insn::Bc1 { on_true, off } => {
            i(OP_COP1, 0x08, on_true as u32, off as u16)
        }
        Insn::Mtc1 { rt, fs } => r(OP_COP1, 0x04, rt.index() as u32, fs.index() as u32, 0, 0),
        Insn::Mfc1 { rt, fs } => r(OP_COP1, 0x00, rt.index() as u32, fs.index() as u32, 0, 0),
        Insn::CvtFromW { fmt, fd, fs } => {
            let funct = match fmt {
                FpFmt::S => 0x20,
                FpFmt::D => 0x21,
            };
            r(OP_COP1, 0x14, 0, fs.index() as u32, fd.index() as u32, funct)
        }
        Insn::TruncToW { fmt, fd, fs } => r(
            OP_COP1,
            fmt_field(fmt),
            0,
            fs.index() as u32,
            fd.index() as u32,
            0x0d,
        ),
        Insn::Branch { cond, rs, rt, off } => match cond {
            BranchCond::Eq => i(OP_BEQ, rs.index() as u32, rt.index() as u32, off as u16),
            BranchCond::Ne => i(OP_BNE, rs.index() as u32, rt.index() as u32, off as u16),
            BranchCond::Lez => i(OP_BLEZ, rs.index() as u32, 0, off as u16),
            BranchCond::Gtz => i(OP_BGTZ, rs.index() as u32, 0, off as u16),
            BranchCond::Ltz => i(OP_REGIMM, rs.index() as u32, 0, off as u16),
            BranchCond::Gez => i(OP_REGIMM, rs.index() as u32, 1, off as u16),
        },
        Insn::J { target } => (OP_J << 26) | (target & 0x03ff_ffff),
        Insn::Jal { target } => (OP_JAL << 26) | (target & 0x03ff_ffff),
        Insn::Jr { rs } => r(0, rs.index() as u32, 0, 0, 0, 0x08),
        Insn::Jalr { rd, rs } => r(0, rs.index() as u32, 0, rd.index() as u32, 0, 0x09),
        Insn::Halt => r(0, 0, 0, 0, 0, 0x3f),
    }
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the word does not correspond to any
/// instruction in the extended-MIPS encoding.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let err = DecodeError { word };
    let (op, rs, rt, rd, shamt, funct) =
        (f_op(word), f_rs(word), f_rt(word), f_rd(word), f_shamt(word), f_funct(word));
    let insn = match op {
        0x00 => {
            if word == 0 {
                Insn::Nop
            } else if let Some(alu) = alu_from_funct(funct) {
                Insn::Alu {
                    op: alu,
                    rd: Reg::new(rd as u8),
                    rs: Reg::new(rs as u8),
                    rt: Reg::new(rt as u8),
                }
            } else {
                match funct {
                    0x00 => Insn::Shift {
                        op: ShiftOp::Sll,
                        rd: Reg::new(rd as u8),
                        rt: Reg::new(rt as u8),
                        shamt: shamt as u8,
                    },
                    0x02 => Insn::Shift {
                        op: ShiftOp::Srl,
                        rd: Reg::new(rd as u8),
                        rt: Reg::new(rt as u8),
                        shamt: shamt as u8,
                    },
                    0x03 => Insn::Shift {
                        op: ShiftOp::Sra,
                        rd: Reg::new(rd as u8),
                        rt: Reg::new(rt as u8),
                        shamt: shamt as u8,
                    },
                    0x08 => Insn::Jr { rs: Reg::new(rs as u8) },
                    0x09 => Insn::Jalr { rd: Reg::new(rd as u8), rs: Reg::new(rs as u8) },
                    0x10 => Insn::Mfhi { rd: Reg::new(rd as u8) },
                    0x12 => Insn::Mflo { rd: Reg::new(rd as u8) },
                    0x18 => Insn::MulDiv {
                        op: MulDivOp::Mult,
                        rs: Reg::new(rs as u8),
                        rt: Reg::new(rt as u8),
                    },
                    0x19 => Insn::MulDiv {
                        op: MulDivOp::Multu,
                        rs: Reg::new(rs as u8),
                        rt: Reg::new(rt as u8),
                    },
                    0x1a => Insn::MulDiv {
                        op: MulDivOp::Div,
                        rs: Reg::new(rs as u8),
                        rt: Reg::new(rt as u8),
                    },
                    0x1b => Insn::MulDiv {
                        op: MulDivOp::Divu,
                        rs: Reg::new(rs as u8),
                        rt: Reg::new(rt as u8),
                    },
                    0x3f => Insn::Halt,
                    _ => return Err(err),
                }
            }
        }
        OP_REGIMM => {
            let cond = match rt {
                0 => BranchCond::Ltz,
                1 => BranchCond::Gez,
                _ => return Err(err),
            };
            Insn::Branch { cond, rs: Reg::new(rs as u8), rt: Reg::ZERO, off: f_imm(word) }
        }
        OP_J => Insn::J { target: word & 0x03ff_ffff },
        OP_JAL => Insn::Jal { target: word & 0x03ff_ffff },
        OP_BEQ | OP_BNE => Insn::Branch {
            cond: if op == OP_BEQ { BranchCond::Eq } else { BranchCond::Ne },
            rs: Reg::new(rs as u8),
            rt: Reg::new(rt as u8),
            off: f_imm(word),
        },
        OP_BLEZ | OP_BGTZ => Insn::Branch {
            cond: if op == OP_BLEZ { BranchCond::Lez } else { BranchCond::Gtz },
            rs: Reg::new(rs as u8),
            rt: Reg::ZERO,
            off: f_imm(word),
        },
        0x08..=0x0e => {
            let aop = match op {
                0x08 => AluImmOp::Addi,
                0x09 => AluImmOp::Addiu,
                0x0a => AluImmOp::Slti,
                0x0b => AluImmOp::Sltiu,
                0x0c => AluImmOp::Andi,
                0x0d => AluImmOp::Ori,
                _ => AluImmOp::Xori,
            };
            Insn::AluImm {
                op: aop,
                rt: Reg::new(rt as u8),
                rs: Reg::new(rs as u8),
                imm: f_imm(word),
            }
        }
        0x0f => Insn::Lui { rt: Reg::new(rt as u8), imm: (word & 0xffff) as u16 },
        OP_COP1 => match rs {
            0x00 => Insn::Mfc1 { rt: Reg::new(rt as u8), fs: FReg::new(rd as u8) },
            0x04 => Insn::Mtc1 { rt: Reg::new(rt as u8), fs: FReg::new(rd as u8) },
            0x08 => Insn::Bc1 { on_true: rt == 1, off: f_imm(word) },
            0x14 => {
                let fmt = match funct {
                    0x20 => FpFmt::S,
                    0x21 => FpFmt::D,
                    _ => return Err(err),
                };
                Insn::CvtFromW { fmt, fd: FReg::new(shamt as u8), fs: FReg::new(rd as u8) }
            }
            _ => {
                let fmt = fmt_from_field(rs).ok_or(err)?;
                match funct {
                    0x00..=0x07 => {
                        let fop = match funct {
                            0x00 => FpOp::Add,
                            0x01 => FpOp::Sub,
                            0x02 => FpOp::Mul,
                            0x03 => FpOp::Div,
                            0x04 => FpOp::Sqrt,
                            0x05 => FpOp::Abs,
                            0x06 => FpOp::Mov,
                            _ => FpOp::Neg,
                        };
                        Insn::Fp {
                            op: fop,
                            fmt,
                            fd: FReg::new(shamt as u8),
                            fs: FReg::new(rd as u8),
                            ft: FReg::new(rt as u8),
                        }
                    }
                    0x0d => Insn::TruncToW { fmt, fd: FReg::new(shamt as u8), fs: FReg::new(rd as u8) },
                    0x32 => Insn::FpCmp { cond: FpCond::Eq, fmt, fs: FReg::new(rd as u8), ft: FReg::new(rt as u8) },
                    0x3c => Insn::FpCmp { cond: FpCond::Lt, fmt, fs: FReg::new(rd as u8), ft: FReg::new(rt as u8) },
                    0x3e => Insn::FpCmp { cond: FpCond::Le, fmt, fs: FReg::new(rd as u8), ft: FReg::new(rt as u8) },
                    _ => return Err(err),
                }
            }
        },
        OP_LSX => {
            let kind = LsKind::from_lsx_funct(funct).ok_or(err)?;
            kind.build(
                rd,
                AddrMode::BaseIndex { base: Reg::new(rs as u8), index: Reg::new(rt as u8) },
            )
        }
        _ => {
            if let Some(kind) = LsKind::from_disp_op(op) {
                kind.build(rt, AddrMode::BaseDisp { base: Reg::new(rs as u8), disp: f_imm(word) })
            } else if let Some(kind) = LsKind::from_postinc_op(op) {
                kind.build(rt, AddrMode::PostInc { base: Reg::new(rs as u8), step: f_imm(word) })
            } else {
                return Err(err);
            }
        }
    };
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluImmOp, AluOp, MulDivOp, ShiftOp};

    fn roundtrip(insn: Insn) {
        let word = encode(&insn);
        assert_eq!(decode(word), Ok(insn), "word {word:#010x}");
    }

    #[test]
    fn roundtrip_alu() {
        for op in [
            AluOp::Add,
            AluOp::Addu,
            AluOp::Sub,
            AluOp::Subu,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Nor,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Sllv,
            AluOp::Srlv,
            AluOp::Srav,
        ] {
            roundtrip(Insn::Alu { op, rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 });
        }
    }

    #[test]
    fn roundtrip_alu_imm_and_shift() {
        for op in [
            AluImmOp::Addi,
            AluImmOp::Addiu,
            AluImmOp::Slti,
            AluImmOp::Sltiu,
            AluImmOp::Andi,
            AluImmOp::Ori,
            AluImmOp::Xori,
        ] {
            roundtrip(Insn::AluImm { op, rt: Reg::T0, rs: Reg::T1, imm: -42 });
        }
        for op in [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra] {
            roundtrip(Insn::Shift { op, rd: Reg::T2, rt: Reg::T3, shamt: 31 });
        }
        roundtrip(Insn::Lui { rt: Reg::T4, imm: 0xdead });
    }

    #[test]
    fn roundtrip_muldiv_hilo() {
        for op in [MulDivOp::Mult, MulDivOp::Multu, MulDivOp::Div, MulDivOp::Divu] {
            roundtrip(Insn::MulDiv { op, rs: Reg::S0, rt: Reg::S1 });
        }
        roundtrip(Insn::Mfhi { rd: Reg::V0 });
        roundtrip(Insn::Mflo { rd: Reg::V1 });
    }

    #[test]
    fn roundtrip_all_load_store_kinds_all_modes() {
        let modes = [
            AddrMode::BaseDisp { base: Reg::SP, disp: -128 },
            AddrMode::BaseIndex { base: Reg::S0, index: Reg::T7 },
            AddrMode::PostInc { base: Reg::S2, step: -8 },
        ];
        for ea in modes {
            for op in [LoadOp::Lb, LoadOp::Lbu, LoadOp::Lh, LoadOp::Lhu, LoadOp::Lw] {
                roundtrip(Insn::Load { op, rt: Reg::T5, ea });
            }
            for op in [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw] {
                roundtrip(Insn::Store { op, rt: Reg::T6, ea });
            }
            for fmt in [FpFmt::S, FpFmt::D] {
                roundtrip(Insn::LoadFp { fmt, ft: FReg::F4, ea });
                roundtrip(Insn::StoreFp { fmt, ft: FReg::F6, ea });
            }
        }
    }

    #[test]
    fn roundtrip_fp() {
        for op in [
            FpOp::Add,
            FpOp::Sub,
            FpOp::Mul,
            FpOp::Div,
            FpOp::Abs,
            FpOp::Neg,
            FpOp::Mov,
            FpOp::Sqrt,
        ] {
            for fmt in [FpFmt::S, FpFmt::D] {
                roundtrip(Insn::Fp { op, fmt, fd: FReg::F0, fs: FReg::F2, ft: FReg::F4 });
            }
        }
        for cond in [FpCond::Eq, FpCond::Lt, FpCond::Le] {
            roundtrip(Insn::FpCmp { cond, fmt: FpFmt::D, fs: FReg::F8, ft: FReg::F10 });
        }
        roundtrip(Insn::Bc1 { on_true: true, off: -7 });
        roundtrip(Insn::Bc1 { on_true: false, off: 3 });
        roundtrip(Insn::Mtc1 { rt: Reg::T0, fs: FReg::F12 });
        roundtrip(Insn::Mfc1 { rt: Reg::T1, fs: FReg::F14 });
        roundtrip(Insn::CvtFromW { fmt: FpFmt::D, fd: FReg::F2, fs: FReg::F4 });
        roundtrip(Insn::TruncToW { fmt: FpFmt::S, fd: FReg::F6, fs: FReg::F8 });
    }

    #[test]
    fn roundtrip_control() {
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lez,
            BranchCond::Gtz,
            BranchCond::Ltz,
            BranchCond::Gez,
        ] {
            let rt = if cond.uses_rt() { Reg::T1 } else { Reg::ZERO };
            roundtrip(Insn::Branch { cond, rs: Reg::T0, rt, off: -100 });
        }
        roundtrip(Insn::J { target: 0x12345 });
        roundtrip(Insn::Jal { target: 0x3ffffff });
        roundtrip(Insn::Jr { rs: Reg::RA });
        roundtrip(Insn::Jalr { rd: Reg::RA, rs: Reg::T9 });
        roundtrip(Insn::Nop);
        roundtrip(Insn::Halt);
    }

    #[test]
    fn invalid_words_are_rejected() {
        // Unused primary opcode.
        assert!(decode(0x10 << 26).is_err());
        // R-type with unused funct.
        assert!(decode(0x3e).is_err());
        // COP1 with bad sub-op.
        assert!(decode((0x11 << 26) | (0x1f << 21)).is_err());
        // LSX with bad funct.
        assert!(decode((0x1c << 26) | 0x3f).is_err());
    }

    #[test]
    fn decode_error_display() {
        let e = decode(0x10 << 26).unwrap_err();
        assert_eq!(e.to_string(), "invalid instruction word 0x40000000");
    }
}
