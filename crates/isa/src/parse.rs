//! Text-form instruction parsing — the inverse of the disassembler.
//!
//! Accepts exactly the syntax [`Insn`]'s `Display` implementation produces
//! (plus liberal whitespace), so `parse_insn(insn.to_string()) == insn` for
//! every instruction; checked by property tests.

use crate::insn::{AluImmOp, AluOp, MulDivOp, ShiftOp};
use crate::{AddrMode, BranchCond, FReg, FpCond, FpFmt, FpOp, Insn, LoadOp, Reg, StoreOp};
use core::fmt;

/// Error from [`parse_insn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInsnError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseInsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseInsnError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseInsnError> {
    Err(ParseInsnError { message: message.into() })
}

const REG_NAMES: [&str; 32] = [
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3", "$t4",
    "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7", "$t8", "$t9",
    "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
];

fn parse_reg(tok: &str) -> Result<Reg, ParseInsnError> {
    if let Some(i) = REG_NAMES.iter().position(|&n| n == tok) {
        return Ok(Reg::new(i as u8));
    }
    // Also accept numeric form `$12`.
    if let Some(num) = tok.strip_prefix('$') {
        if let Ok(i) = num.parse::<u8>() {
            if i < 32 {
                return Ok(Reg::new(i));
            }
        }
    }
    err(format!("unknown register {tok}"))
}

fn parse_freg(tok: &str) -> Result<FReg, ParseInsnError> {
    if let Some(num) = tok.strip_prefix("$f") {
        if let Ok(i) = num.parse::<u8>() {
            if i < 32 {
                return Ok(FReg::new(i));
            }
        }
    }
    err(format!("unknown fp register {tok}"))
}

fn parse_int(tok: &str) -> Result<i64, ParseInsnError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(format!("bad integer {tok}")),
    }
}

fn parse_i16(tok: &str) -> Result<i16, ParseInsnError> {
    let v = parse_int(tok)?;
    // Accept both signed and raw-u16 spellings (andi prints hex).
    if (-32768..=65535).contains(&v) {
        Ok(v as u16 as i16)
    } else {
        err(format!("immediate {tok} out of 16-bit range"))
    }
}

/// Parses an effective-address operand: `disp(base)`, `(base+index)` or
/// `(base)+step`.
fn parse_ea(tok: &str) -> Result<AddrMode, ParseInsnError> {
    if let Some(open) = tok.find('(') {
        let close = match tok.find(')') {
            Some(c) if c > open => c,
            _ => return err(format!("unbalanced parens in {tok}")),
        };
        let before = &tok[..open];
        let inside = &tok[open + 1..close];
        let after = &tok[close + 1..];
        if !after.is_empty() {
            // `(base)+step`
            if !before.is_empty() {
                return err(format!("unexpected prefix in {tok}"));
            }
            let step = after
                .strip_prefix('+')
                .ok_or_else(|| ParseInsnError { message: format!("expected + in {tok}") })?;
            return Ok(AddrMode::PostInc { base: parse_reg(inside)?, step: parse_i16(step)? });
        }
        if let Some((b, i)) = inside.split_once('+') {
            if !before.is_empty() {
                return err(format!("unexpected displacement on reg+reg in {tok}"));
            }
            return Ok(AddrMode::BaseIndex { base: parse_reg(b)?, index: parse_reg(i)? });
        }
        let disp = if before.is_empty() { 0 } else { parse_i16(before)? };
        return Ok(AddrMode::BaseDisp { base: parse_reg(inside)?, disp });
    }
    err(format!("no effective address in {tok}"))
}

/// Parses one instruction in the disassembler's syntax.
///
/// ```
/// use fac_isa::{parse_insn, Insn, Reg, AddrMode, LoadOp};
///
/// let insn = parse_insn("lw $v0, 16($sp)").unwrap();
/// assert_eq!(
///     insn,
///     Insn::Load { op: LoadOp::Lw, rt: Reg::V0, ea: AddrMode::BaseDisp { base: Reg::SP, disp: 16 } },
/// );
/// assert_eq!(parse_insn(&insn.to_string()).unwrap(), insn);
/// ```
///
/// # Errors
///
/// Returns [`ParseInsnError`] for unknown mnemonics, malformed operands, or
/// out-of-range immediates.
pub fn parse_insn(text: &str) -> Result<Insn, ParseInsnError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), ParseInsnError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(format!("{mnemonic}: expected {n} operands, got {}", ops.len()))
        }
    };

    // Three-register ALU ops.
    let alu = |op: AluOp| -> Result<Insn, ParseInsnError> {
        want(3)?;
        Ok(Insn::Alu { op, rd: parse_reg(ops[0])?, rs: parse_reg(ops[1])?, rt: parse_reg(ops[2])? })
    };
    let alu_imm = |op: AluImmOp| -> Result<Insn, ParseInsnError> {
        want(3)?;
        Ok(Insn::AluImm {
            op,
            rt: parse_reg(ops[0])?,
            rs: parse_reg(ops[1])?,
            imm: parse_i16(ops[2])?,
        })
    };
    let shift = |op: ShiftOp| -> Result<Insn, ParseInsnError> {
        want(3)?;
        let shamt = parse_int(ops[2])?;
        if !(0..32).contains(&shamt) {
            return err("shift amount out of range");
        }
        Ok(Insn::Shift { op, rd: parse_reg(ops[0])?, rt: parse_reg(ops[1])?, shamt: shamt as u8 })
    };
    let muldiv = |op: MulDivOp| -> Result<Insn, ParseInsnError> {
        want(2)?;
        Ok(Insn::MulDiv { op, rs: parse_reg(ops[0])?, rt: parse_reg(ops[1])? })
    };
    let load = |op: LoadOp| -> Result<Insn, ParseInsnError> {
        want(2)?;
        Ok(Insn::Load { op, rt: parse_reg(ops[0])?, ea: parse_ea(ops[1])? })
    };
    let store = |op: StoreOp| -> Result<Insn, ParseInsnError> {
        want(2)?;
        Ok(Insn::Store { op, rt: parse_reg(ops[0])?, ea: parse_ea(ops[1])? })
    };
    let load_fp = |fmt: FpFmt| -> Result<Insn, ParseInsnError> {
        want(2)?;
        Ok(Insn::LoadFp { fmt, ft: parse_freg(ops[0])?, ea: parse_ea(ops[1])? })
    };
    let store_fp = |fmt: FpFmt| -> Result<Insn, ParseInsnError> {
        want(2)?;
        Ok(Insn::StoreFp { fmt, ft: parse_freg(ops[0])?, ea: parse_ea(ops[1])? })
    };
    let branch2 = |cond: BranchCond| -> Result<Insn, ParseInsnError> {
        want(3)?;
        Ok(Insn::Branch {
            cond,
            rs: parse_reg(ops[0])?,
            rt: parse_reg(ops[1])?,
            off: parse_i16(ops[2])?,
        })
    };
    let branch1 = |cond: BranchCond| -> Result<Insn, ParseInsnError> {
        want(2)?;
        Ok(Insn::Branch { cond, rs: parse_reg(ops[0])?, rt: Reg::ZERO, off: parse_i16(ops[1])? })
    };

    // FP mnemonics carry a format suffix.
    if let Some((stem, suffix)) = mnemonic.rsplit_once('.') {
        let fmt = match suffix {
            "s" => Some(FpFmt::S),
            "d" => Some(FpFmt::D),
            _ => None,
        };
        if let Some(fmt) = fmt {
            match stem {
                "l" => return load_fp(fmt),
                "s" => return store_fp(fmt),
                "add" | "sub" | "mul" | "div" => {
                    want(3)?;
                    let op = match stem {
                        "add" => FpOp::Add,
                        "sub" => FpOp::Sub,
                        "mul" => FpOp::Mul,
                        _ => FpOp::Div,
                    };
                    return Ok(Insn::Fp {
                        op,
                        fmt,
                        fd: parse_freg(ops[0])?,
                        fs: parse_freg(ops[1])?,
                        ft: parse_freg(ops[2])?,
                    });
                }
                "abs" | "neg" | "mov" | "sqrt" => {
                    want(2)?;
                    let op = match stem {
                        "abs" => FpOp::Abs,
                        "neg" => FpOp::Neg,
                        "mov" => FpOp::Mov,
                        _ => FpOp::Sqrt,
                    };
                    return Ok(Insn::Fp {
                        op,
                        fmt,
                        fd: parse_freg(ops[0])?,
                        fs: parse_freg(ops[1])?,
                        ft: FReg::new(0),
                    });
                }
                "c.eq" | "c.lt" | "c.le" => {
                    want(2)?;
                    let cond = match stem {
                        "c.eq" => FpCond::Eq,
                        "c.lt" => FpCond::Lt,
                        _ => FpCond::Le,
                    };
                    return Ok(Insn::FpCmp {
                        cond,
                        fmt,
                        fs: parse_freg(ops[0])?,
                        ft: parse_freg(ops[1])?,
                    });
                }
                "cvt.s" | "cvt.d" if suffix == "w" => unreachable!(),
                _ => {}
            }
        }
        // Conversions: cvt.<fmt>.w and trunc.w.<fmt>.
        if mnemonic == "cvt.s.w" || mnemonic == "cvt.d.w" {
            want(2)?;
            let fmt = if mnemonic.contains(".s.") { FpFmt::S } else { FpFmt::D };
            return Ok(Insn::CvtFromW { fmt, fd: parse_freg(ops[0])?, fs: parse_freg(ops[1])? });
        }
        if mnemonic == "trunc.w.s" || mnemonic == "trunc.w.d" {
            want(2)?;
            let fmt = if mnemonic.ends_with(".s") { FpFmt::S } else { FpFmt::D };
            return Ok(Insn::TruncToW { fmt, fd: parse_freg(ops[0])?, fs: parse_freg(ops[1])? });
        }
    }

    match mnemonic {
        "nop" => {
            want(0)?;
            Ok(Insn::Nop)
        }
        "halt" => {
            want(0)?;
            Ok(Insn::Halt)
        }
        "add" => alu(AluOp::Add),
        "addu" => alu(AluOp::Addu),
        "sub" => alu(AluOp::Sub),
        "subu" => alu(AluOp::Subu),
        "and" => alu(AluOp::And),
        "or" => alu(AluOp::Or),
        "xor" => alu(AluOp::Xor),
        "nor" => alu(AluOp::Nor),
        "slt" => alu(AluOp::Slt),
        "sltu" => alu(AluOp::Sltu),
        "sllv" => alu(AluOp::Sllv),
        "srlv" => alu(AluOp::Srlv),
        "srav" => alu(AluOp::Srav),
        "addi" => alu_imm(AluImmOp::Addi),
        "addiu" => alu_imm(AluImmOp::Addiu),
        "slti" => alu_imm(AluImmOp::Slti),
        "sltiu" => alu_imm(AluImmOp::Sltiu),
        "andi" => alu_imm(AluImmOp::Andi),
        "ori" => alu_imm(AluImmOp::Ori),
        "xori" => alu_imm(AluImmOp::Xori),
        "sll" => shift(ShiftOp::Sll),
        "srl" => shift(ShiftOp::Srl),
        "sra" => shift(ShiftOp::Sra),
        "lui" => {
            want(2)?;
            let imm = parse_int(ops[1])?;
            if !(0..=0xffff).contains(&imm) {
                return err("lui immediate out of range");
            }
            Ok(Insn::Lui { rt: parse_reg(ops[0])?, imm: imm as u16 })
        }
        "mult" => muldiv(MulDivOp::Mult),
        "multu" => muldiv(MulDivOp::Multu),
        "div" => muldiv(MulDivOp::Div),
        "divu" => muldiv(MulDivOp::Divu),
        "mfhi" => {
            want(1)?;
            Ok(Insn::Mfhi { rd: parse_reg(ops[0])? })
        }
        "mflo" => {
            want(1)?;
            Ok(Insn::Mflo { rd: parse_reg(ops[0])? })
        }
        "lb" => load(LoadOp::Lb),
        "lbu" => load(LoadOp::Lbu),
        "lh" => load(LoadOp::Lh),
        "lhu" => load(LoadOp::Lhu),
        "lw" => load(LoadOp::Lw),
        "sb" => store(StoreOp::Sb),
        "sh" => store(StoreOp::Sh),
        "sw" => store(StoreOp::Sw),
        "bc1t" | "bc1f" => {
            want(1)?;
            Ok(Insn::Bc1 { on_true: mnemonic == "bc1t", off: parse_i16(ops[0])? })
        }
        "mtc1" => {
            want(2)?;
            Ok(Insn::Mtc1 { rt: parse_reg(ops[0])?, fs: parse_freg(ops[1])? })
        }
        "mfc1" => {
            want(2)?;
            Ok(Insn::Mfc1 { rt: parse_reg(ops[0])?, fs: parse_freg(ops[1])? })
        }
        "beq" => branch2(BranchCond::Eq),
        "bne" => branch2(BranchCond::Ne),
        "blez" => branch1(BranchCond::Lez),
        "bgtz" => branch1(BranchCond::Gtz),
        "bltz" => branch1(BranchCond::Ltz),
        "bgez" => branch1(BranchCond::Gez),
        "j" | "jal" => {
            want(1)?;
            let target = parse_int(ops[0])?;
            if !(0..=0x03ff_ffff).contains(&target) {
                return err("jump target out of range");
            }
            if mnemonic == "j" {
                Ok(Insn::J { target: target as u32 })
            } else {
                Ok(Insn::Jal { target: target as u32 })
            }
        }
        "jr" => {
            want(1)?;
            Ok(Insn::Jr { rs: parse_reg(ops[0])? })
        }
        "jalr" => {
            want(2)?;
            Ok(Insn::Jalr { rd: parse_reg(ops[0])?, rs: parse_reg(ops[1])? })
        }
        _ => err(format!("unknown mnemonic {mnemonic}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_forms() {
        assert_eq!(
            parse_insn("addu $v0, $a0, $a1").unwrap(),
            Insn::Alu { op: AluOp::Addu, rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 }
        );
        assert_eq!(
            parse_insn("addiu $t0, $t1, -42").unwrap(),
            Insn::AluImm { op: AluImmOp::Addiu, rt: Reg::T0, rs: Reg::T1, imm: -42 }
        );
        assert_eq!(parse_insn("nop").unwrap(), Insn::Nop);
        assert_eq!(parse_insn("halt").unwrap(), Insn::Halt);
        assert_eq!(parse_insn("jr $ra").unwrap(), Insn::Jr { rs: Reg::RA });
    }

    #[test]
    fn parses_all_addressing_modes() {
        assert_eq!(
            parse_insn("lw $t3, -8($sp)").unwrap(),
            Insn::Load {
                op: LoadOp::Lw,
                rt: Reg::T3,
                ea: AddrMode::BaseDisp { base: Reg::SP, disp: -8 }
            }
        );
        assert_eq!(
            parse_insn("lw $t3, ($s0+$t2)").unwrap(),
            Insn::Load {
                op: LoadOp::Lw,
                rt: Reg::T3,
                ea: AddrMode::BaseIndex { base: Reg::S0, index: Reg::T2 }
            }
        );
        assert_eq!(
            parse_insn("sw $t3, ($s1)+4").unwrap(),
            Insn::Store {
                op: StoreOp::Sw,
                rt: Reg::T3,
                ea: AddrMode::PostInc { base: Reg::S1, step: 4 }
            }
        );
    }

    #[test]
    fn parses_fp() {
        assert_eq!(
            parse_insn("mul.d $f6, $f2, $f4").unwrap(),
            Insn::Fp { op: FpOp::Mul, fmt: FpFmt::D, fd: FReg::F6, fs: FReg::F2, ft: FReg::F4 }
        );
        assert_eq!(
            parse_insn("c.lt.d $f2, $f4").unwrap(),
            Insn::FpCmp { cond: FpCond::Lt, fmt: FpFmt::D, fs: FReg::F2, ft: FReg::F4 }
        );
        assert_eq!(
            parse_insn("cvt.d.w $f2, $f4").unwrap(),
            Insn::CvtFromW { fmt: FpFmt::D, fd: FReg::F2, fs: FReg::F4 }
        );
        assert_eq!(parse_insn("bc1t -7").unwrap(), Insn::Bc1 { on_true: true, off: -7 });
    }

    #[test]
    fn hex_immediates() {
        assert_eq!(
            parse_insn("andi $t0, $t1, 0xfff").unwrap(),
            Insn::AluImm { op: AluImmOp::Andi, rt: Reg::T0, rs: Reg::T1, imm: 0xfff }
        );
        assert_eq!(
            parse_insn("lui $t4, 0xdead").unwrap(),
            Insn::Lui { rt: Reg::T4, imm: 0xdead }
        );
        assert_eq!(
            parse_insn("j 0x12345").unwrap(),
            Insn::J { target: 0x12345 }
        );
    }

    #[test]
    fn numeric_register_form() {
        assert_eq!(
            parse_insn("addu $2, $4, $5").unwrap(),
            Insn::Alu { op: AluOp::Addu, rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_insn("").is_err());
        assert!(parse_insn("frobnicate $t0").is_err());
        assert!(parse_insn("addu $t0, $t1").is_err());
        assert!(parse_insn("lw $t0, 4[$sp]").is_err());
        assert!(parse_insn("addiu $t0, $t1, 99999").is_err());
        assert!(parse_insn("sll $t0, $t1, 37").is_err());
        assert!(parse_insn("addu $t0, $t1, $zz").is_err());
        assert!(parse_insn("lui $t0, 0x10000").is_err());
        let e = parse_insn("frob $t0").unwrap_err();
        assert!(e.to_string().contains("frob"));
    }
}
