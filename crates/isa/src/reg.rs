//! Integer and floating-point register names.

use core::fmt;

/// An architected integer register, `$0` through `$31`.
///
/// The MIPS software conventions the paper relies on are encoded here:
/// [`Reg::GP`] (r28) is the immutable *global pointer*, [`Reg::SP`] (r29) the
/// stack pointer and [`Reg::FP`] (r30) the frame pointer. The simulator
/// classifies memory references as *global*, *stack* or *general* pointer
/// accesses by looking at which of these supplies the base (paper §2).
///
/// ```
/// use fac_isa::Reg;
/// assert_eq!(Reg::GP.index(), 28);
/// assert_eq!(Reg::SP.to_string(), "$sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Assembler temporary.
    pub const AT: Reg = Reg(1);
    /// First function result register.
    pub const V0: Reg = Reg(2);
    /// Second function result register.
    pub const V1: Reg = Reg(3);
    /// First argument register.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Caller-saved temporaries `$t0`–`$t7` (r8–r15).
    pub const T0: Reg = Reg(8);
    /// Caller-saved temporary.
    pub const T1: Reg = Reg(9);
    /// Caller-saved temporary.
    pub const T2: Reg = Reg(10);
    /// Caller-saved temporary.
    pub const T3: Reg = Reg(11);
    /// Caller-saved temporary.
    pub const T4: Reg = Reg(12);
    /// Caller-saved temporary.
    pub const T5: Reg = Reg(13);
    /// Caller-saved temporary.
    pub const T6: Reg = Reg(14);
    /// Caller-saved temporary.
    pub const T7: Reg = Reg(15);
    /// Callee-saved registers `$s0`–`$s7` (r16–r23).
    pub const S0: Reg = Reg(16);
    /// Callee-saved register.
    pub const S1: Reg = Reg(17);
    /// Callee-saved register.
    pub const S2: Reg = Reg(18);
    /// Callee-saved register.
    pub const S3: Reg = Reg(19);
    /// Callee-saved register.
    pub const S4: Reg = Reg(20);
    /// Callee-saved register.
    pub const S5: Reg = Reg(21);
    /// Callee-saved register.
    pub const S6: Reg = Reg(22);
    /// Callee-saved register.
    pub const S7: Reg = Reg(23);
    /// More caller-saved temporaries (r24, r25).
    pub const T8: Reg = Reg(24);
    /// Caller-saved temporary.
    pub const T9: Reg = Reg(25);
    /// Reserved for kernel (r26, r27); unused by generated code.
    pub const K0: Reg = Reg(26);
    /// Reserved for codegen (allocator scratch).
    pub const K1: Reg = Reg(27);
    /// Global pointer — base register for *global pointer addressing*.
    pub const GP: Reg = Reg(28);
    /// Stack pointer — base register for *stack pointer addressing*.
    pub const SP: Reg = Reg(29);
    /// Frame pointer (also classified as a stack access base).
    pub const FP: Reg = Reg(30);
    /// Return address register.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "integer register index {index} out of range");
        Reg(index)
    }

    /// The architectural index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` for the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// ABI names indexed by register number.
const REG_NAMES: [&str; 32] = [
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3", "$t0", "$t1", "$t2", "$t3", "$t4",
    "$t5", "$t6", "$t7", "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7", "$t8", "$t9",
    "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(REG_NAMES[self.index()])
    }
}

/// An architected floating-point register, `$f0` through `$f31`.
///
/// Each register holds a full double; single-precision operations use the
/// low half, mirroring how the evaluation treats FP state (FP values never
/// participate in address calculation, so the FP register model can stay
/// simple).
///
/// ```
/// use fac_isa::FReg;
/// assert_eq!(FReg::new(12).to_string(), "$f12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// FP result register.
    pub const F0: FReg = FReg(0);
    /// Scratch FP register used by generated code.
    pub const F2: FReg = FReg(2);
    /// Scratch FP register.
    pub const F4: FReg = FReg(4);
    /// Scratch FP register.
    pub const F6: FReg = FReg(6);
    /// Scratch FP register.
    pub const F8: FReg = FReg(8);
    /// Scratch FP register.
    pub const F10: FReg = FReg(10);
    /// First FP argument register.
    pub const F12: FReg = FReg(12);
    /// Scratch FP register.
    pub const F14: FReg = FReg(14);
    /// Scratch FP register.
    pub const F16: FReg = FReg(16);
    /// Scratch FP register.
    pub const F18: FReg = FReg(18);
    /// Scratch FP register.
    pub const F20: FReg = FReg(20);
    /// Scratch FP register.
    pub const F22: FReg = FReg(22);

    /// Creates an FP register from its architectural index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> FReg {
        assert!(index < 32, "fp register index {index} out of range");
        FReg(index)
    }

    /// The architectural index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_follow_mips_convention() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::V0.index(), 2);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::T0.index(), 8);
        assert_eq!(Reg::S0.index(), 16);
        assert_eq!(Reg::GP.index(), 28);
        assert_eq!(Reg::SP.index(), 29);
        assert_eq!(Reg::FP.index(), 30);
        assert_eq!(Reg::RA.index(), 31);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::AT.is_zero());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::new(0).to_string(), "$zero");
        assert_eq!(Reg::new(28).to_string(), "$gp");
        assert_eq!(FReg::new(0).to_string(), "$f0");
        assert_eq!(FReg::new(31).to_string(), "$f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_freg_panics() {
        let _ = FReg::new(32);
    }

    #[test]
    fn ordering_matches_indices() {
        assert!(Reg::ZERO < Reg::RA);
        assert!(FReg::F0 < FReg::F12);
    }
}
