//! Instruction definitions and the disassembler.

use crate::{FReg, Reg};
use core::fmt;

/// Addressing mode of a load or store.
///
/// The paper's extended MIPS (§5.1) supports register+constant addressing
/// (the MIPS-I baseline), register+register addressing and
/// post-increment/decrement. The fast-address-calculation predictor treats
/// the two offset sources differently: constant offsets can have their set
/// index inverted when negative, register offsets arrive too late and any
/// negative register offset forces a misprediction (§3, failure condition 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `disp(base)` — effective address is `base + sign_extend(disp)`.
    BaseDisp {
        /// Base register.
        base: Reg,
        /// Signed 16-bit displacement.
        disp: i16,
    },
    /// `(base+index)` — effective address is `base + index`.
    BaseIndex {
        /// Base register.
        base: Reg,
        /// Index register supplying the offset.
        index: Reg,
    },
    /// `(base)+step` — effective address is `base`; afterwards
    /// `base += sign_extend(step)`. A negative `step` is post-decrement.
    PostInc {
        /// Base register, updated after the access.
        base: Reg,
        /// Signed post-update amount in bytes.
        step: i16,
    },
}

impl AddrMode {
    /// The base register of the access (always present).
    pub fn base(self) -> Reg {
        match self {
            AddrMode::BaseDisp { base, .. }
            | AddrMode::BaseIndex { base, .. }
            | AddrMode::PostInc { base, .. } => base,
        }
    }

    /// `true` when the offset comes from a register (register+register mode).
    pub fn is_reg_reg(self) -> bool {
        matches!(self, AddrMode::BaseIndex { .. })
    }
}

impl fmt::Display for AddrMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AddrMode::BaseDisp { base, disp } => write!(f, "{disp}({base})"),
            AddrMode::BaseIndex { base, index } => write!(f, "({base}+{index})"),
            AddrMode::PostInc { base, step } => write!(f, "({base})+{step}"),
        }
    }
}

/// Three-register ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Signed add (no trap semantics in this model).
    Add,
    /// Unsigned (wrapping) add.
    Addu,
    /// Signed subtract.
    Sub,
    /// Unsigned (wrapping) subtract.
    Subu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set on signed less-than.
    Slt,
    /// Set on unsigned less-than.
    Sltu,
    /// Shift left logical by register (`rs` holds the amount).
    Sllv,
    /// Shift right logical by register.
    Srlv,
    /// Shift right arithmetic by register.
    Srav,
}

impl AluOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Addu => "addu",
            AluOp::Sub => "sub",
            AluOp::Subu => "subu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sllv => "sllv",
            AluOp::Srlv => "srlv",
            AluOp::Srav => "srav",
        }
    }
}

/// Immediate ALU operations. Arithmetic ops sign-extend the immediate,
/// logical ops zero-extend it; the raw 16 bits are stored either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// Add sign-extended immediate.
    Addi,
    /// Add sign-extended immediate (wrapping).
    Addiu,
    /// Set on signed less-than immediate.
    Slti,
    /// Set on unsigned less-than immediate.
    Sltiu,
    /// AND zero-extended immediate.
    Andi,
    /// OR zero-extended immediate.
    Ori,
    /// XOR zero-extended immediate.
    Xori,
}

impl AluImmOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Addiu => "addiu",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
        }
    }

    /// `true` when the immediate is sign-extended before use.
    pub fn sign_extends(self) -> bool {
        matches!(
            self,
            AluImmOp::Addi | AluImmOp::Addiu | AluImmOp::Slti | AluImmOp::Sltiu
        )
    }
}

/// Constant-amount shifts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl ShiftOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
        }
    }
}

/// Multiply/divide operations targeting the HI/LO pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Signed multiply into HI/LO.
    Mult,
    /// Unsigned multiply into HI/LO.
    Multu,
    /// Signed divide (LO=quotient, HI=remainder).
    Div,
    /// Unsigned divide.
    Divu,
}

impl MulDivOp {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mult => "mult",
            MulDivOp::Multu => "multu",
            MulDivOp::Div => "div",
            MulDivOp::Divu => "divu",
        }
    }
}

/// Integer load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign-extended.
    Lb,
    /// Load byte, zero-extended.
    Lbu,
    /// Load halfword, sign-extended.
    Lh,
    /// Load halfword, zero-extended.
    Lhu,
    /// Load word.
    Lw,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lbu => "lbu",
            LoadOp::Lh => "lh",
            LoadOp::Lhu => "lhu",
            LoadOp::Lw => "lw",
        }
    }
}

/// Integer store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store halfword.
    Sh,
    /// Store word.
    Sw,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
        }
    }
}

/// Floating-point operand format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpFmt {
    /// Single precision (32-bit).
    S,
    /// Double precision (64-bit).
    D,
}

impl FpFmt {
    /// Access size in bytes for loads/stores of this format.
    pub fn size(self) -> u32 {
        match self {
            FpFmt::S => 4,
            FpFmt::D => 8,
        }
    }

    /// Format suffix used in mnemonics (`.s` / `.d`).
    pub fn suffix(self) -> &'static str {
        match self {
            FpFmt::S => "s",
            FpFmt::D => "d",
        }
    }
}

/// Floating-point computational operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Absolute value (unary; `ft` ignored).
    Abs,
    /// Negate (unary).
    Neg,
    /// Register move (unary).
    Mov,
    /// Square root (unary).
    Sqrt,
}

impl FpOp {
    /// Assembler mnemonic stem (format suffix appended separately).
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "add",
            FpOp::Sub => "sub",
            FpOp::Mul => "mul",
            FpOp::Div => "div",
            FpOp::Abs => "abs",
            FpOp::Neg => "neg",
            FpOp::Mov => "mov",
            FpOp::Sqrt => "sqrt",
        }
    }

    /// `true` for single-operand operations.
    pub fn is_unary(self) -> bool {
        matches!(self, FpOp::Abs | FpOp::Neg | FpOp::Mov | FpOp::Sqrt)
    }
}

/// Floating-point comparison conditions (set the FP condition flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCond {
    /// Equal.
    Eq,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
}

impl FpCond {
    /// Assembler mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCond::Eq => "c.eq",
            FpCond::Lt => "c.lt",
            FpCond::Le => "c.le",
        }
    }
}

/// Integer branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs == rt`
    Eq,
    /// `rs != rt`
    Ne,
    /// `rs <= 0` (rt unused)
    Lez,
    /// `rs > 0` (rt unused)
    Gtz,
    /// `rs < 0` (rt unused)
    Ltz,
    /// `rs >= 0` (rt unused)
    Gez,
}

impl BranchCond {
    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lez => "blez",
            BranchCond::Gtz => "bgtz",
            BranchCond::Ltz => "bltz",
            BranchCond::Gez => "bgez",
        }
    }

    /// `true` when the condition compares two registers.
    pub fn uses_rt(self) -> bool {
        matches!(self, BranchCond::Eq | BranchCond::Ne)
    }
}

/// A single extended-MIPS instruction.
///
/// Branch offsets are in *instructions* relative to the instruction after
/// the branch (there are no delay slots, §5.1); jump targets are absolute
/// instruction indices. Both are resolved by the linker in `fac-asm`.
///
/// Field names follow the MIPS convention (`rd` destination, `rs`/`rt`
/// sources, `fd`/`fs`/`ft` their FP counterparts, `imm`/`off`/`shamt`
/// immediates) and are not documented individually.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// No operation.
    Nop,
    /// Three-register ALU operation: `rd = rs op rt`.
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    /// Immediate ALU operation: `rt = rs op imm`.
    AluImm { op: AluImmOp, rt: Reg, rs: Reg, imm: i16 },
    /// Constant shift: `rd = rt op shamt`.
    Shift { op: ShiftOp, rd: Reg, rt: Reg, shamt: u8 },
    /// Load upper immediate: `rt = imm << 16`.
    Lui { rt: Reg, imm: u16 },
    /// Multiply/divide into HI/LO.
    MulDiv { op: MulDivOp, rs: Reg, rt: Reg },
    /// Move from HI: `rd = HI`.
    Mfhi { rd: Reg },
    /// Move from LO: `rd = LO`.
    Mflo { rd: Reg },
    /// Integer load.
    Load { op: LoadOp, rt: Reg, ea: AddrMode },
    /// Integer store.
    Store { op: StoreOp, rt: Reg, ea: AddrMode },
    /// Floating-point load (`l.s` / `l.d`).
    LoadFp { fmt: FpFmt, ft: FReg, ea: AddrMode },
    /// Floating-point store (`s.s` / `s.d`).
    StoreFp { fmt: FpFmt, ft: FReg, ea: AddrMode },
    /// Floating-point computation: `fd = fs op ft` (unary ops ignore `ft`).
    Fp { op: FpOp, fmt: FpFmt, fd: FReg, fs: FReg, ft: FReg },
    /// Floating-point compare; sets the FP condition flag.
    FpCmp { cond: FpCond, fmt: FpFmt, fs: FReg, ft: FReg },
    /// Branch on FP condition flag true (`bc1t`) or false (`bc1f`).
    Bc1 { on_true: bool, off: i16 },
    /// Move integer register to FP register (bit pattern).
    Mtc1 { rt: Reg, fs: FReg },
    /// Move FP register to integer register (bit pattern).
    Mfc1 { rt: Reg, fs: FReg },
    /// Convert word (integer bits in `fs`) to floating point.
    CvtFromW { fmt: FpFmt, fd: FReg, fs: FReg },
    /// Truncate floating point to word (integer bits in `fd`).
    TruncToW { fmt: FpFmt, fd: FReg, fs: FReg },
    /// Conditional branch; offset in instructions from the next instruction.
    Branch { cond: BranchCond, rs: Reg, rt: Reg, off: i16 },
    /// Unconditional jump to absolute instruction index.
    J { target: u32 },
    /// Jump and link (`$ra = return address`).
    Jal { target: u32 },
    /// Jump register.
    Jr { rs: Reg },
    /// Jump and link register.
    Jalr { rd: Reg, rs: Reg },
    /// Stop simulation.
    Halt,
}

impl Insn {
    /// `true` for loads and stores (instructions that reference data memory).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Insn::Load { .. } | Insn::Store { .. } | Insn::LoadFp { .. } | Insn::StoreFp { .. }
        )
    }

    /// `true` for loads (integer or FP).
    pub fn is_load(&self) -> bool {
        matches!(self, Insn::Load { .. } | Insn::LoadFp { .. })
    }

    /// `true` for stores (integer or FP).
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::Store { .. } | Insn::StoreFp { .. })
    }

    /// The addressing mode, for loads and stores.
    pub fn addr_mode(&self) -> Option<AddrMode> {
        match *self {
            Insn::Load { ea, .. }
            | Insn::Store { ea, .. }
            | Insn::LoadFp { ea, .. }
            | Insn::StoreFp { ea, .. } => Some(ea),
            _ => None,
        }
    }

    /// `true` for control-transfer instructions.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Branch { .. }
                | Insn::Bc1 { .. }
                | Insn::J { .. }
                | Insn::Jal { .. }
                | Insn::Jr { .. }
                | Insn::Jalr { .. }
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn pad(f: &mut fmt::Formatter<'_>, m: &str) -> fmt::Result {
            write!(f, "{m:<7} ")
        }
        match *self {
            Insn::Nop => f.write_str("nop"),
            Insn::Alu { op, rd, rs, rt } => {
                pad(f, op.mnemonic())?;
                write!(f, "{rd}, {rs}, {rt}")
            }
            Insn::AluImm { op, rt, rs, imm } => {
                pad(f, op.mnemonic())?;
                if op.sign_extends() {
                    write!(f, "{rt}, {rs}, {imm}")
                } else {
                    write!(f, "{rt}, {rs}, {:#x}", imm as u16)
                }
            }
            Insn::Shift { op, rd, rt, shamt } => {
                pad(f, op.mnemonic())?;
                write!(f, "{rd}, {rt}, {shamt}")
            }
            Insn::Lui { rt, imm } => {
                pad(f, "lui")?;
                write!(f, "{rt}, {imm:#x}")
            }
            Insn::MulDiv { op, rs, rt } => {
                pad(f, op.mnemonic())?;
                write!(f, "{rs}, {rt}")
            }
            Insn::Mfhi { rd } => {
                pad(f, "mfhi")?;
                write!(f, "{rd}")
            }
            Insn::Mflo { rd } => {
                pad(f, "mflo")?;
                write!(f, "{rd}")
            }
            Insn::Load { op, rt, ea } => {
                pad(f, op.mnemonic())?;
                write!(f, "{rt}, {ea}")
            }
            Insn::Store { op, rt, ea } => {
                pad(f, op.mnemonic())?;
                write!(f, "{rt}, {ea}")
            }
            Insn::LoadFp { fmt, ft, ea } => {
                pad(f, &format!("l.{}", fmt.suffix()))?;
                write!(f, "{ft}, {ea}")
            }
            Insn::StoreFp { fmt, ft, ea } => {
                pad(f, &format!("s.{}", fmt.suffix()))?;
                write!(f, "{ft}, {ea}")
            }
            Insn::Fp { op, fmt, fd, fs, ft } => {
                pad(f, &format!("{}.{}", op.mnemonic(), fmt.suffix()))?;
                if op.is_unary() {
                    write!(f, "{fd}, {fs}")
                } else {
                    write!(f, "{fd}, {fs}, {ft}")
                }
            }
            Insn::FpCmp { cond, fmt, fs, ft } => {
                pad(f, &format!("{}.{}", cond.mnemonic(), fmt.suffix()))?;
                write!(f, "{fs}, {ft}")
            }
            Insn::Bc1 { on_true, off } => {
                pad(f, if on_true { "bc1t" } else { "bc1f" })?;
                write!(f, "{off}")
            }
            Insn::Mtc1 { rt, fs } => {
                pad(f, "mtc1")?;
                write!(f, "{rt}, {fs}")
            }
            Insn::Mfc1 { rt, fs } => {
                pad(f, "mfc1")?;
                write!(f, "{rt}, {fs}")
            }
            Insn::CvtFromW { fmt, fd, fs } => {
                pad(f, &format!("cvt.{}.w", fmt.suffix()))?;
                write!(f, "{fd}, {fs}")
            }
            Insn::TruncToW { fmt, fd, fs } => {
                pad(f, &format!("trunc.w.{}", fmt.suffix()))?;
                write!(f, "{fd}, {fs}")
            }
            Insn::Branch { cond, rs, rt, off } => {
                pad(f, cond.mnemonic())?;
                if cond.uses_rt() {
                    write!(f, "{rs}, {rt}, {off}")
                } else {
                    write!(f, "{rs}, {off}")
                }
            }
            Insn::J { target } => {
                pad(f, "j")?;
                write!(f, "{target:#x}")
            }
            Insn::Jal { target } => {
                pad(f, "jal")?;
                write!(f, "{target:#x}")
            }
            Insn::Jr { rs } => {
                pad(f, "jr")?;
                write!(f, "{rs}")
            }
            Insn::Jalr { rd, rs } => {
                pad(f, "jalr")?;
                write!(f, "{rd}, {rs}")
            }
            Insn::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_mode_base_and_reg_reg() {
        let bd = AddrMode::BaseDisp { base: Reg::SP, disp: -8 };
        let bi = AddrMode::BaseIndex { base: Reg::T0, index: Reg::T1 };
        let pi = AddrMode::PostInc { base: Reg::S0, step: 4 };
        assert_eq!(bd.base(), Reg::SP);
        assert_eq!(bi.base(), Reg::T0);
        assert_eq!(pi.base(), Reg::S0);
        assert!(bi.is_reg_reg());
        assert!(!bd.is_reg_reg());
        assert!(!pi.is_reg_reg());
    }

    #[test]
    fn classification_helpers() {
        let lw = Insn::Load {
            op: LoadOp::Lw,
            rt: Reg::T0,
            ea: AddrMode::BaseDisp { base: Reg::GP, disp: 0 },
        };
        let sw = Insn::Store {
            op: StoreOp::Sw,
            rt: Reg::T0,
            ea: AddrMode::BaseDisp { base: Reg::SP, disp: 4 },
        };
        assert!(lw.is_mem() && lw.is_load() && !lw.is_store());
        assert!(sw.is_mem() && sw.is_store() && !sw.is_load());
        assert!(!Insn::Nop.is_mem());
        assert!(Insn::J { target: 0 }.is_control());
        assert!(!lw.is_control());
        assert_eq!(sw.addr_mode().unwrap().base(), Reg::SP);
        assert_eq!(Insn::Halt.addr_mode(), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(LoadOp::Lb.size(), 1);
        assert_eq!(LoadOp::Lhu.size(), 2);
        assert_eq!(LoadOp::Lw.size(), 4);
        assert_eq!(StoreOp::Sb.size(), 1);
        assert_eq!(StoreOp::Sw.size(), 4);
        assert_eq!(FpFmt::S.size(), 4);
        assert_eq!(FpFmt::D.size(), 8);
    }

    #[test]
    fn disassembly_smoke() {
        let i = Insn::Alu { op: AluOp::Addu, rd: Reg::V0, rs: Reg::A0, rt: Reg::A1 };
        assert_eq!(i.to_string(), "addu    $v0, $a0, $a1");
        let i = Insn::Load {
            op: LoadOp::Lw,
            rt: Reg::T3,
            ea: AddrMode::BaseIndex { base: Reg::S0, index: Reg::T2 },
        };
        assert_eq!(i.to_string(), "lw      $t3, ($s0+$t2)");
        let i = Insn::LoadFp {
            fmt: FpFmt::D,
            ft: FReg::F4,
            ea: AddrMode::PostInc { base: Reg::S1, step: 8 },
        };
        assert_eq!(i.to_string(), "l.d     $f4, ($s1)+8");
        let i = Insn::Branch { cond: BranchCond::Ne, rs: Reg::T0, rt: Reg::ZERO, off: -3 };
        assert_eq!(i.to_string(), "bne     $t0, $zero, -3");
    }

    #[test]
    fn unary_fp_display_omits_ft() {
        let i = Insn::Fp { op: FpOp::Neg, fmt: FpFmt::D, fd: FReg::F2, fs: FReg::F4, ft: FReg::F0 };
        assert_eq!(i.to_string(), "neg.d   $f2, $f4");
    }
}
