#![warn(missing_docs)]

//! # fac-isa — the extended-MIPS instruction set
//!
//! Instruction-set architecture used throughout the fast-address-calculation
//! reproduction. It is functionally the MIPS-I ISA with the extensions the
//! paper describes (§5.1):
//!
//! * **register+register addressing** for loads and stores (base supplied by
//!   a register, offset supplied by a second *index* register),
//! * **post-increment / post-decrement** addressing,
//! * **no architected delay slots** (branches take effect immediately).
//!
//! The crate provides the register file naming ([`Reg`], [`FReg`]), the
//! instruction enum ([`Insn`]), addressing modes ([`AddrMode`]), a binary
//! encoder/decoder ([`encode`]/[`decode`]) and a disassembler (the
//! [`core::fmt::Display`] impl on [`Insn`]).
//!
//! ```
//! use fac_isa::{Insn, Reg, AddrMode, LoadOp};
//!
//! let load = Insn::Load {
//!     op: LoadOp::Lw,
//!     rt: Reg::V0,
//!     ea: AddrMode::BaseDisp { base: Reg::SP, disp: 16 },
//! };
//! assert_eq!(load.to_string(), "lw      $v0, 16($sp)");
//! let word = fac_isa::encode(&load);
//! assert_eq!(fac_isa::decode(word).unwrap(), load);
//! ```

mod encoding;
mod insn;
mod parse;
mod reg;

pub use encoding::{decode, encode, DecodeError};
pub use insn::{
    AddrMode, AluImmOp, AluOp, BranchCond, FpCond, FpFmt, FpOp, Insn, LoadOp, MulDivOp, ShiftOp,
    StoreOp,
};
pub use parse::{parse_insn, ParseInsnError};
pub use reg::{FReg, Reg};

/// Number of architected integer registers.
pub const NUM_REGS: usize = 32;
/// Number of architected floating-point registers.
pub const NUM_FREGS: usize = 32;
