//! Differential verification of the tiered execution engine.
//!
//! Three independent executors retire every program here: the fast
//! functional tier (`fac_sim::tier`), the golden oracle, and the detailed
//! pipeline. The fast tier is checked against the oracle *per instruction*
//! (full register file, HI/LO/fcc, PC) and against the pipeline's final
//! architectural state and memory image, over hand-written kernels and a
//! fuzz-seed sweep. The step-budget boundary (`SimError::Runaway`) is
//! pinned to the identical instruction count across every tier.

use fac_asm::{assemble_and_link, fuzz_source, Asm, Program, SoftwareSupport};
use fac_isa::Reg;
use fac_sim::tier::{run_fast, run_fast_verified, run_sampled, Functional, SampleSpec};
use fac_sim::{functional_snapshot, Machine, MachineConfig, Oracle, SimError};

fn sum_program() -> Program {
    let mut a = Asm::new();
    a.gp_array("data", 256, 4);
    a.gp_word("checksum", 0);
    a.gp_addr(Reg::S0, "data", 0);
    a.li(Reg::T0, 64);
    a.li(Reg::T1, 3);
    a.label("fill");
    a.sw_pi(Reg::T1, Reg::S0, 4);
    a.addiu(Reg::T1, Reg::T1, 7);
    a.addiu(Reg::T0, Reg::T0, -1);
    a.bgtz(Reg::T0, "fill");
    a.gp_addr(Reg::S0, "data", 0);
    a.li(Reg::T0, 64);
    a.li(Reg::V0, 0);
    a.label("sum");
    a.lw_pi(Reg::T2, Reg::S0, 4);
    a.addu(Reg::V0, Reg::V0, Reg::T2);
    a.addiu(Reg::T0, Reg::T0, -1);
    a.bgtz(Reg::T0, "sum");
    a.sw_gp(Reg::V0, "checksum", 0);
    a.halt();
    a.link("sum", &SoftwareSupport::on()).unwrap()
}

/// Asserts the fast tier and a detailed pipeline run agree on the complete
/// architectural outcome.
fn assert_three_way(program: &Program, cfg: MachineConfig, label: &str) {
    // Fast vs oracle: per-step lockstep inside run_fast_verified.
    let fast = run_fast_verified(&cfg, program, 10_000_000)
        .unwrap_or_else(|e| panic!("{label}: fast tier diverged from oracle: {e}"));
    // Fast vs pipeline: final architectural state, bit for bit.
    let full = Machine::new(cfg)
        .run(program)
        .unwrap_or_else(|e| panic!("{label}: detailed run failed: {e}"));
    assert_eq!(fast.insts, full.stats.insts, "{label}: retired instruction counts differ");
    assert_eq!(fast.final_state.regs, full.final_state.regs, "{label}: integer registers differ");
    assert_eq!(fast.final_state.fregs, full.final_state.fregs, "{label}: FP registers differ");
    assert_eq!(fast.final_state.hi, full.final_state.hi, "{label}: HI differs");
    assert_eq!(fast.final_state.lo, full.final_state.lo, "{label}: LO differs");
    assert_eq!(fast.final_state.fcc, full.final_state.fcc, "{label}: fcc differs");
    assert_eq!(fast.final_state.pc, full.final_state.pc, "{label}: final PC differs");
    assert_eq!(fast.final_state.mem, full.final_state.mem, "{label}: memory images differ");
}

/// 200 fuzz seeds through all three executors. The per-step fast-vs-oracle
/// lockstep runs for every seed; the (much slower) detailed pipeline
/// cross-check runs on a fixed subsample so the suite stays fast in debug
/// builds — the full 19-workload × config pipeline matrix lives in
/// `crates/bench/tests/tiered_matrix.rs`.
#[test]
fn fuzz_seeds_three_way_differential() {
    for seed in 0..200u64 {
        let source = fuzz_source(seed);
        let program = assemble_and_link(&source, &format!("fuzz-{seed}"), &SoftwareSupport::on())
            .unwrap_or_else(|e| panic!("seed {seed} does not assemble: {e}"));
        let cfg = MachineConfig::paper_baseline().with_fac();
        let fast = run_fast_verified(&cfg, &program, 2_000_000)
            .unwrap_or_else(|e| panic!("seed {seed}: fast tier diverged from oracle: {e}"));
        assert!(fast.final_state.halted, "seed {seed} did not halt");
        if seed % 8 == 0 {
            assert_three_way(&program, cfg, &format!("seed {seed}"));
        }
    }
}

#[test]
fn hand_kernels_three_way_differential() {
    let program = sum_program();
    for (label, cfg) in [
        ("baseline", MachineConfig::paper_baseline()),
        ("fac", MachineConfig::paper_baseline().with_fac()),
        ("fac+tlb", MachineConfig::paper_baseline().with_fac().with_tlb()),
        ("strict", MachineConfig::paper_baseline().with_strict_memory()),
    ] {
        assert_three_way(&program, cfg, label);
    }
}

/// The shared budget rule: a program retiring exactly N instructions
/// succeeds with budget N, and fails with `Runaway` at budget N−1 — on
/// every tier, at the same count.
#[test]
fn runaway_boundary_is_identical_across_tiers() {
    let program = sum_program();
    let cfg = MachineConfig::paper_baseline();

    // Discover N from the oracle.
    let mut o = Oracle::new(&program);
    let n = o.run(&program, u64::MAX).unwrap();
    assert!(n > 10);

    let expect_runaway = |r: Result<u64, SimError>, tier: &str, budget: u64| match r {
        Err(SimError::Runaway(max)) => {
            assert_eq!(max, budget, "{tier}: Runaway reports wrong budget")
        }
        other => panic!("{tier}: budget {budget} should be Runaway, got {other:?}"),
    };

    for budget in [n, n + 1] {
        let mut o = Oracle::new(&program);
        assert_eq!(o.run(&program, budget).unwrap(), n, "oracle at budget {budget}");

        let full = Machine::new(cfg).with_max_insts(budget).run(&program).unwrap();
        assert_eq!(full.stats.insts, n, "machine at budget {budget}");

        let ls = fac_sim::Lockstep::new(cfg).with_max_insts(budget).run(&program).unwrap();
        assert_eq!(ls.stats.insts, n, "lockstep at budget {budget}");

        let fast = run_fast(&cfg, &program, budget).unwrap();
        assert_eq!(fast.insts, n, "fast tier at budget {budget}");

        let sampled =
            run_sampled(&cfg, &program, SampleSpec { every: 40, window: 10 }, budget).unwrap();
        assert_eq!(sampled.insts, n, "sampled tier at budget {budget}");
    }

    let budget = n - 1;
    let mut o = Oracle::new(&program);
    expect_runaway(o.run(&program, budget), "oracle", budget);
    expect_runaway(
        Machine::new(cfg).with_max_insts(budget).run(&program).map(|r| r.stats.insts),
        "machine",
        budget,
    );
    expect_runaway(
        fac_sim::Lockstep::new(cfg).with_max_insts(budget).run(&program).map(|r| r.stats.insts),
        "lockstep",
        budget,
    );
    expect_runaway(run_fast(&cfg, &program, budget).map(|r| r.insts), "fast tier", budget);
    expect_runaway(
        run_sampled(&cfg, &program, SampleSpec { every: 40, window: 10 }, budget)
            .map(|r| r.insts),
        "sampled tier",
        budget,
    );
}

/// The functional → detailed hand-off: fast-forward half the program
/// functionally, snapshot, restore into a detailed machine, run to halt.
/// The final architectural state must equal a straight detailed run's.
#[test]
fn functional_snapshot_hands_off_to_detailed_machine() {
    let program = sum_program();
    let cfg = MachineConfig::paper_baseline().with_fac();
    let machine = Machine::new(cfg);
    let straight = machine.run(&program).unwrap();

    let mut fun = Functional::new(&program).with_strict_mem(cfg.strict_mem);
    let skipped = fun.run(straight.stats.insts / 2).unwrap();
    assert!(skipped > 0 && !fun.halted());

    let snap = functional_snapshot(&cfg, &program, fun.state());
    let resumed = machine.restore(&program, &snap).unwrap().run().unwrap();
    assert_eq!(resumed.stats.insts + skipped, straight.stats.insts);
    assert_eq!(resumed.final_state, straight.final_state);
}

/// A functional snapshot refuses to restore under a different
/// configuration or program, exactly like a detailed checkpoint.
#[test]
fn functional_snapshot_is_fingerprint_guarded() {
    let program = sum_program();
    let cfg = MachineConfig::paper_baseline();
    let mut fun = Functional::new(&program);
    fun.run(5).unwrap();
    let snap = functional_snapshot(&cfg, &program, fun.state());

    let other_cfg = MachineConfig::paper_baseline().with_fac();
    assert!(matches!(
        Machine::new(other_cfg).restore(&program, &snap),
        Err(SimError::Checkpoint { .. })
    ));

    let mut a = Asm::new();
    a.li(Reg::T0, 1);
    a.halt();
    let other = a.link("other", &SoftwareSupport::on()).unwrap();
    assert!(matches!(
        Machine::new(cfg).restore(&other, &snap),
        Err(SimError::Checkpoint { .. })
    ));
}

/// Strict-memory traps fire identically on the fast tier and the detailed
/// machine: same error variant, same faulting PC and address.
#[test]
fn strict_memory_traps_match_the_detailed_machine() {
    let mut a = Asm::new();
    a.gp_array("data", 64, 4);
    a.gp_addr(Reg::S0, "data", 0);
    a.addiu(Reg::S0, Reg::S0, 2);
    a.lw(Reg::T0, 0, Reg::S0); // misaligned word load
    a.halt();
    let program = a.link("misaligned", &SoftwareSupport::on()).unwrap();
    let cfg = MachineConfig::paper_baseline().with_strict_memory();

    let detailed = Machine::new(cfg).run(&program).unwrap_err();
    let fast = run_fast(&cfg, &program, 1_000).unwrap_err();
    assert_eq!(format!("{fast}"), format!("{detailed}"), "trap mismatch");
    assert!(matches!(fast, SimError::Exec(_)));
}

/// Sampling parameters are validated up front.
#[test]
fn bad_sample_spec_is_a_typed_config_error() {
    let program = sum_program();
    let cfg = MachineConfig::paper_baseline();
    let err =
        run_sampled(&cfg, &program, SampleSpec { every: 10, window: 0 }, 1_000_000).unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "got {err:?}");
    let err =
        run_sampled(&cfg, &program, SampleSpec { every: 10, window: 11 }, 1_000_000).unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig(_)), "got {err:?}");
}

/// A long repetitive kernel for CPI-convergence checks: windows must be
/// long enough to amortize the per-window pipeline fill/drain (the
/// cold-start bias DESIGN.md §13 documents — short windows overstate CPI).
fn long_loop_program(iters: u32) -> Program {
    let mut a = Asm::new();
    a.gp_array("data", 4096, 4);
    a.gp_addr(Reg::S0, "data", 0);
    a.li(Reg::T0, iters as i32);
    a.li(Reg::T1, 3);
    a.label("fill");
    a.sw_pi(Reg::T1, Reg::S0, 4);
    a.addiu(Reg::T1, Reg::T1, 7);
    a.andi(Reg::T2, Reg::T1, 0xfff);
    a.addu(Reg::T3, Reg::T2, Reg::T1);
    a.addiu(Reg::T0, Reg::T0, -1);
    a.bgtz(Reg::T0, "fill");
    a.halt();
    a.link("longloop", &SoftwareSupport::on()).unwrap()
}

/// The sampled estimate converges on the exact cycle count when windows
/// amortize the drain, and its reported error bound is finite.
#[test]
fn sampled_cpi_tracks_full_detail() {
    let program = long_loop_program(1000);
    let cfg = MachineConfig::paper_baseline().with_fac();
    let full = Machine::new(cfg).run(&program).unwrap();
    let full_cpi = full.stats.cycles as f64 / full.stats.insts as f64;

    let sampled =
        run_sampled(&cfg, &program, SampleSpec { every: 1024, window: 512 }, 1_000_000).unwrap();
    assert_eq!(sampled.insts, full.stats.insts);
    assert!(sampled.cpi.is_finite() && sampled.cpi > 0.0);
    assert!(sampled.cpi_stderr.is_finite() && sampled.cpi_stderr >= 0.0);
    // Half of every period measured in 512-inst windows: the estimate must
    // land close. 15% is deliberately loose — this pins "sane", not
    // "exact"; the exactness case (window == every) is pinned below.
    let rel = (sampled.cpi - full_cpi).abs() / full_cpi;
    assert!(
        rel < 0.15,
        "sampled CPI {:.4} vs full {:.4} (rel err {:.3})",
        sampled.cpi,
        full_cpi,
        rel
    );

    // window == every measures everything: exact by construction.
    let program = sum_program();
    let full = Machine::new(cfg).run(&program).unwrap();
    let exact =
        run_sampled(&cfg, &program, SampleSpec { every: 64, window: 64 }, 1_000_000).unwrap();
    assert_eq!(exact.measured_insts, full.stats.insts);
    assert_eq!(exact.final_state, full.final_state);
}

/// Sampled runs are pure functions of (config, program, spec): two
/// invocations agree field for field, including the floating-point
/// estimates — the determinism the byte-identical `--json` artifacts in
/// the bench suite build on.
#[test]
fn sampled_run_is_deterministic() {
    let program = sum_program();
    let cfg = MachineConfig::paper_baseline().with_fac();
    let spec = SampleSpec { every: 50, window: 13 };
    let a = run_sampled(&cfg, &program, spec, 1_000_000).unwrap();
    let b = run_sampled(&cfg, &program, spec, 1_000_000).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
    assert_eq!(a.cpi_stderr.to_bits(), b.cpi_stderr.to_bits());
}
