//! Regression: `RegList::push` asserts on overflow (capacity 4). Prove the
//! assert is unreachable from `src_regs`/`dst_regs` for every *encodable*
//! instruction — i.e. a hostile program image can crash the simulator only
//! with a typed error, never a panic in the scoreboard bookkeeping.

use fac_isa::{decode, encode};
use fac_sim::{dst_regs, src_regs};

/// Sweeps every combination of the shape-selecting bits of the encoding
/// (major opcode + function/format fields) with several register-field
/// patterns. Register numbers never change *how many* pushes an opcode
/// performs (only `$zero` is skipped), so covering every decodable shape
/// covers every reachable push count.
#[test]
fn no_encodable_insn_overflows_the_reg_lists() {
    // Register-field patterns: all zeros, all ones, and two mixed patterns
    // (so base == index aliasing and hi/lo fields are both exercised).
    let mids: [u32; 4] = [0x0000, 0xffff, 0xa5a5, 0x5a5a];
    let mut decoded = 0u64;
    for hi in 0u32..256 {
        for lo in 0u32..4096 {
            for mid in mids {
                let word = (hi << 24) | (mid << 8) | lo;
                let Ok(insn) = decode(word) else { continue };
                decoded += 1;
                let s = src_regs(&insn);
                let d = dst_regs(&insn);
                assert!(s.len() <= 3, "{insn:?}: {} sources", s.len());
                assert!(d.len() <= 2, "{insn:?}: {} destinations", d.len());
            }
        }
    }
    assert!(decoded > 1000, "sweep decoded only {decoded} instructions");
}

/// Deterministic pseudo-random sweep over full 32-bit words, so bit
/// positions outside the structured sweep above get exercised too.
#[test]
fn random_words_never_overflow_the_reg_lists() {
    let mut state = 0x5eed_cafe_f00d_u64;
    let mut decoded = 0u64;
    for _ in 0..2_000_000 {
        state = state
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let word = (state >> 16) as u32;
        let Ok(insn) = decode(word) else { continue };
        decoded += 1;
        // Round-trip: whatever decodes must re-encode to something that
        // decodes to the same instruction (the set of encodable insns).
        let canon = decode(encode(&insn)).expect("canonical form decodes");
        let _ = (src_regs(&canon), dst_regs(&canon));
        let s = src_regs(&insn);
        let d = dst_regs(&insn);
        assert!(s.len() + d.len() <= 5, "{insn:?}");
    }
    assert!(decoded > 0, "random sweep never hit a valid encoding");
}
