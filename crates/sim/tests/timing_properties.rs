//! Property tests over the timing model itself: per-instruction timings
//! from `run_traced` must satisfy the pipeline's structural invariants on
//! arbitrary generated programs.

use fac_asm::{Asm, SoftwareSupport};
use fac_isa::Reg;
use fac_sim::{Machine, MachineConfig, TracedInsn};
use proptest::prelude::*;

/// Generates a small random-but-terminating program: straight-line blocks
/// of ALU/memory ops with a counted loop around them.
fn arb_program() -> impl Strategy<Value = (Vec<u8>, u8)> {
    (proptest::collection::vec(any::<u8>(), 4..40), 1u8..6)
}

fn build(ops: &[u8], iters: u8) -> fac_asm::Program {
    let mut a = Asm::new();
    a.gp_array("buf", 512, 4);
    a.gp_addr(Reg::S0, "buf", 0);
    a.li(Reg::S1, iters as i32);
    a.label("loop");
    for (i, &op) in ops.iter().enumerate() {
        let r = Reg::new(8 + (i % 8) as u8);
        let disp = ((op as i16) % 64) * 4;
        match op % 7 {
            0 => a.addiu(r, Reg::S0, (op as i16) % 100),
            1 => a.lw(r, disp.abs(), Reg::S0),
            2 => a.sw(Reg::S1, disp.abs(), Reg::S0),
            3 => a.sll(r, Reg::S1, op % 31),
            4 => a.lbu(r, disp.abs() / 2, Reg::S0),
            5 => a.xor_(r, Reg::S1, Reg::S0),
            _ => a.addu(r, Reg::S1, Reg::S1),
        }
    }
    a.addiu(Reg::S1, Reg::S1, -1);
    a.bgtz(Reg::S1, "loop");
    a.halt();
    a.link("prop", &SoftwareSupport::on()).unwrap()
}

fn check_invariants(trace: &[TracedInsn], issue_width: u64) -> Result<(), TestCaseError> {
    let mut prev_issue = 0u64;
    let mut per_cycle = std::collections::HashMap::new();
    for (i, t) in trace.iter().enumerate() {
        let ti = t.timing;
        // The pipe has two stages before execute.
        prop_assert!(ti.issue >= ti.fetch + 2, "insn {i}: issue {} < fetch {} + 2", ti.issue, ti.fetch);
        // Results appear after issue.
        prop_assert!(ti.complete > ti.issue, "insn {i}: complete {} <= issue {}", ti.complete, ti.issue);
        // In-order issue.
        prop_assert!(ti.issue >= prev_issue, "insn {i}: issue went backwards");
        prev_issue = ti.issue;
        // Issue width respected.
        let n = per_cycle.entry(ti.issue).or_insert(0u64);
        *n += 1;
        prop_assert!(*n <= issue_width, "insn {i}: more than {issue_width} issued at {}", ti.issue);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants hold for every machine configuration.
    #[test]
    fn trace_invariants_hold((ops, iters) in arb_program(), fac in any::<bool>(), agi in any::<bool>()) {
        let p = build(&ops, iters);
        let mut cfg = MachineConfig::paper_baseline();
        if fac { cfg = cfg.with_fac(); }
        if agi { cfg = cfg.with_agi_pipeline(); }
        let (report, trace) = Machine::new(cfg).run_traced(&p).unwrap();
        check_invariants(&trace, cfg.issue_width as u64)?;
        // The cycle count covers every completion.
        let last = trace.iter().map(|t| t.timing.complete).max().unwrap();
        prop_assert!(report.stats.cycles >= last);
        prop_assert_eq!(report.stats.insts as usize, trace.len());
    }

    /// FAC stays within a small margin of the baseline even on adversarial
    /// access patterns (the paper conditions its no-degradation claim on
    /// "sufficient data cache bandwidth" — replays can steal a few cycles),
    /// and the 1-cycle-load oracle bounds FAC from below.
    #[test]
    fn fac_bounded_by_oracle((ops, iters) in arb_program()) {
        let p = build(&ops, iters);
        let base = Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();
        let fac = Machine::new(MachineConfig::paper_baseline().with_fac()).run(&p).unwrap();
        let oracle = Machine::new(MachineConfig::paper_baseline().with_one_cycle_loads())
            .run(&p)
            .unwrap();
        prop_assert!(
            fac.stats.cycles as f64 <= base.stats.cycles as f64 * 1.05 + 8.0,
            "fac {} vs base {}",
            fac.stats.cycles,
            base.stats.cycles
        );
        prop_assert!(fac.stats.cycles + 2 >= oracle.stats.cycles);
    }

    /// Loads per cycle never exceed the configured maximum (checked through
    /// the statistics identity, which counts every load exactly once).
    #[test]
    fn memory_issue_limits_respected((ops, iters) in arb_program()) {
        let p = build(&ops, iters);
        let cfg = MachineConfig::paper_baseline().with_fac();
        let (_, trace) = Machine::new(cfg).run_traced(&p).unwrap();
        let mut loads_per_cycle = std::collections::HashMap::new();
        let mut stores_per_cycle = std::collections::HashMap::new();
        for t in &trace {
            if t.insn.is_load() {
                *loads_per_cycle.entry(t.timing.issue).or_insert(0u32) += 1;
            }
            if t.insn.is_store() {
                *stores_per_cycle.entry(t.timing.issue).or_insert(0u32) += 1;
            }
        }
        prop_assert!(loads_per_cycle.values().all(|&n| n <= cfg.max_loads_per_cycle));
        prop_assert!(stores_per_cycle.values().all(|&n| n <= cfg.max_stores_per_cycle));
    }
}
