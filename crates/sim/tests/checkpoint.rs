//! Checkpoint integrity: a restored snapshot replays to the same report
//! as an uninterrupted run, and every corrupted snapshot is rejected with
//! a typed error before any state is touched.

use fac_asm::{assemble_and_link, fuzz_source, Program, SoftwareSupport};
use fac_core::FaultPlan;
use fac_sim::{Machine, MachineConfig, SimError};
use proptest::prelude::*;

/// Every machine shape with distinct snapshot content: the paper baseline,
/// FAC, FAC under each built-in fault plan (exercising the fault RNG
/// stream), and FAC with the TLB and LTB structures enabled.
fn config_matrix() -> Vec<MachineConfig> {
    let mut matrix = vec![
        MachineConfig::paper_baseline(),
        MachineConfig::paper_baseline().with_fac(),
        MachineConfig::paper_baseline().with_fac().with_tlb().with_ltb(64),
    ];
    for plan in FaultPlan::builtin() {
        matrix.push(MachineConfig::paper_baseline().with_fac().with_fault_plan(plan));
    }
    matrix
}

fn program(seed: u64) -> Program {
    assemble_and_link(&fuzz_source(seed), &format!("fuzz:{seed}"), &SoftwareSupport::on())
        .expect("generated program assembles")
}

/// Runs to completion with a checkpoint/restore cycle after `at`
/// instructions, returning (straight report, resumed report, snapshot).
fn split_run(cfg: MachineConfig, p: &Program, at: u64) -> (fac_sim::SimReport, fac_sim::SimReport, Vec<u8>) {
    let machine = Machine::new(cfg);
    let straight = machine.run(p).expect("straight run succeeds");

    let mut session = machine.begin(p).unwrap();
    while session.insts() < at && session.step().unwrap() {}
    let snapshot = session.checkpoint();
    drop(session); // the interrupted run is abandoned, like a killed process

    let resumed = machine.restore(p, &snapshot).unwrap().run().expect("resumed run succeeds");
    (straight, resumed, snapshot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint/restore at an arbitrary point of an arbitrary program is
    /// invisible: the resumed run produces the very same report (cycles,
    /// every statistic, final architectural state) on every configuration.
    #[test]
    fn restore_replays_bit_identically(seed in 0u64..5000, frac in 0u64..100) {
        let p = program(seed);
        for cfg in config_matrix() {
            let total = Machine::new(cfg).run(&p).unwrap().stats.insts;
            let at = total * frac / 100;
            let (straight, resumed, _) = split_run(cfg, &p, at);
            prop_assert_eq!(&straight, &resumed, "config {:?} split at {}", cfg, at);
        }
    }
}

#[test]
fn restore_at_boundaries_is_identical() {
    let p = program(7);
    for cfg in config_matrix() {
        let total = Machine::new(cfg).run(&p).unwrap().stats.insts;
        for at in [0, 1, total / 2, total.saturating_sub(1), total] {
            let (straight, resumed, _) = split_run(cfg, &p, at);
            assert_eq!(straight, resumed, "config {cfg:?} split at {at}");
        }
    }
}

#[test]
fn every_byte_flip_is_rejected() {
    let p = program(11);
    let cfg = MachineConfig::paper_baseline().with_fac();
    let machine = Machine::new(cfg);
    let (_, _, snapshot) = split_run(cfg, &p, 50);

    for i in 0..snapshot.len() {
        let mut bad = snapshot.clone();
        bad[i] ^= 0x01;
        match machine.restore(&p, &bad) {
            Err(SimError::Checkpoint { .. }) => {}
            Err(e) => panic!("flip at byte {i}: wrong error kind {e}"),
            Ok(_) => panic!("flip at byte {i} was accepted"),
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    let p = program(11);
    let cfg = MachineConfig::paper_baseline().with_fac();
    let machine = Machine::new(cfg);
    let (_, _, snapshot) = split_run(cfg, &p, 50);

    // Every prefix in the framing region, then sampled prefixes beyond.
    let cuts = (0..snapshot.len()).filter(|n| *n < 64 || n % 97 == 0 || *n + 16 > snapshot.len());
    for n in cuts {
        assert!(
            matches!(machine.restore(&p, &snapshot[..n]), Err(SimError::Checkpoint { .. })),
            "prefix of {n} bytes accepted"
        );
    }
}

#[test]
fn wrong_version_is_rejected() {
    let p = program(3);
    let cfg = MachineConfig::paper_baseline();
    let machine = Machine::new(cfg);
    let (_, _, mut snapshot) = split_run(cfg, &p, 10);
    snapshot[8..12].copy_from_slice(&99u32.to_le_bytes());
    let err = machine.restore(&p, &snapshot).unwrap_err();
    match err {
        SimError::Checkpoint { reason, .. } => {
            assert!(reason.contains("version"), "got: {reason}")
        }
        other => panic!("wrong error kind: {other}"),
    }
}

#[test]
fn config_mismatch_is_rejected() {
    let p = program(3);
    let fac = MachineConfig::paper_baseline().with_fac();
    let (_, _, snapshot) = split_run(fac, &p, 10);
    let err = Machine::new(MachineConfig::paper_baseline()).restore(&p, &snapshot).unwrap_err();
    match err {
        SimError::Checkpoint { reason, .. } => {
            assert!(reason.contains("configuration"), "got: {reason}")
        }
        other => panic!("wrong error kind: {other}"),
    }
}

#[test]
fn program_mismatch_is_rejected() {
    let p = program(3);
    let other = program(4);
    let cfg = MachineConfig::paper_baseline();
    let (_, _, snapshot) = split_run(cfg, &p, 10);
    let err = Machine::new(cfg).restore(&other, &snapshot).unwrap_err();
    match err {
        SimError::Checkpoint { reason, .. } => {
            assert!(reason.contains("different program"), "got: {reason}")
        }
        other => panic!("wrong error kind: {other}"),
    }
}

#[test]
fn file_roundtrip_is_atomic_and_identical() {
    let dir = std::env::temp_dir().join(format!("fac_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid.facsnap");

    let p = program(21);
    let cfg = MachineConfig::paper_baseline().with_fac();
    let machine = Machine::new(cfg);
    let straight = machine.run(&p).unwrap();

    let mut session = machine.begin(&p).unwrap();
    for _ in 0..40 {
        session.step().unwrap();
    }
    session.checkpoint_to(&path).unwrap();
    drop(session);

    // The temporary staging file must not survive a successful commit.
    assert!(!path.with_extension("tmp").exists(), "staging file left behind");

    let resumed = machine.restore_from(&p, &path).unwrap().run().unwrap();
    assert_eq!(straight, resumed);

    // A missing file surfaces as a typed I/O error, not a panic.
    let missing = dir.join("nope.facsnap");
    assert!(matches!(machine.restore_from(&p, &missing), Err(SimError::Io { .. })));

    std::fs::remove_dir_all(&dir).ok();
}
