//! Property tests: the functional executor agrees with host arithmetic,
//! and the timing model never changes architectural results.

use fac_asm::{Asm, Program, SoftwareSupport};
use fac_isa::{AluOp, Reg};
use fac_sim::{ArchState, Machine, MachineConfig};
use proptest::prelude::*;

fn run_to_halt(p: &Program) -> ArchState {
    let mut st = ArchState::new(p);
    for _ in 0..1_000_000 {
        if st.halted {
            return st;
        }
        st.step(p).expect("in-bounds execution");
    }
    panic!("program did not halt");
}

fn alu_program(op: AluOp, a: i32, b: i32) -> Program {
    let mut asm = Asm::new();
    asm.li(Reg::T0, a);
    asm.li(Reg::T1, b);
    asm.op3(op, Reg::V0, Reg::T0, Reg::T1);
    asm.halt();
    asm.link("alu", &SoftwareSupport::on()).unwrap()
}

fn host_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add | AluOp::Addu => a.wrapping_add(b),
        AluOp::Sub | AluOp::Subu => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Nor => !(a | b),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Sllv => b.wrapping_shl(a & 31),
        AluOp::Srlv => b.wrapping_shr(a & 31),
        AluOp::Srav => ((b as i32).wrapping_shr(a & 31)) as u32,
    }
}

proptest! {
    #[test]
    fn alu_semantics_match_host(
        op in prop_oneof![
            Just(AluOp::Addu), Just(AluOp::Subu), Just(AluOp::And), Just(AluOp::Or),
            Just(AluOp::Xor), Just(AluOp::Nor), Just(AluOp::Slt), Just(AluOp::Sltu),
            Just(AluOp::Sllv), Just(AluOp::Srlv), Just(AluOp::Srav),
        ],
        a in any::<i32>(),
        b in any::<i32>(),
    ) {
        let st = run_to_halt(&alu_program(op, a, b));
        prop_assert_eq!(
            st.regs[Reg::V0.index()],
            host_alu(op, a as u32, b as u32),
            "{:?} {} {}", op, a, b
        );
    }

    #[test]
    fn muldiv_semantics_match_host(a in any::<i32>(), b in any::<i32>()) {
        let mut asm = Asm::new();
        asm.li(Reg::T0, a);
        asm.li(Reg::T1, b);
        asm.mult(Reg::T0, Reg::T1);
        asm.mflo(Reg::V0);
        asm.mfhi(Reg::V1);
        asm.divu(Reg::T0, Reg::T1);
        asm.mflo(Reg::A0);
        asm.mfhi(Reg::A1);
        asm.halt();
        let p = asm.link("md", &SoftwareSupport::on()).unwrap();
        let st = run_to_halt(&p);
        let prod = (a as i64).wrapping_mul(b as i64) as u64;
        prop_assert_eq!(st.regs[Reg::V0.index()], prod as u32);
        prop_assert_eq!(st.regs[Reg::V1.index()], (prod >> 32) as u32);
        let (au, bu) = (a as u32, b as u32);
        prop_assert_eq!(st.regs[Reg::A0.index()], au.checked_div(bu).unwrap_or(0));
        if bu != 0 {
            prop_assert_eq!(st.regs[Reg::A1.index()], au % bu);
        }
    }

    #[test]
    fn memory_roundtrip_all_widths(addr_off in 0u32..2000, v in any::<u32>()) {
        let mut asm = Asm::new();
        asm.far_array("buf", 2048 + 8, 8);
        asm.la(Reg::S0, "buf", addr_off as i32);
        asm.li(Reg::T0, v as i32);
        asm.sw(Reg::T0, 0, Reg::S0);
        asm.lw(Reg::V0, 0, Reg::S0);
        asm.lb(Reg::V1, 0, Reg::S0);
        asm.lbu(Reg::A0, 0, Reg::S0);
        asm.lhu(Reg::A1, 0, Reg::S0);
        asm.halt();
        let p = asm.link("mem", &SoftwareSupport::on()).unwrap();
        let st = run_to_halt(&p);
        prop_assert_eq!(st.regs[Reg::V0.index()], v);
        prop_assert_eq!(st.regs[Reg::V1.index()], v as u8 as i8 as i32 as u32);
        prop_assert_eq!(st.regs[Reg::A0.index()], v as u8 as u32);
        prop_assert_eq!(st.regs[Reg::A1.index()], v as u16 as u32);
    }

    #[test]
    fn fp_double_arithmetic_matches_host(x in -1000i32..1000, y in 1i32..1000) {
        use fac_isa::FReg;
        let mut asm = Asm::new();
        asm.gp_double("out", 0.0);
        asm.li_d(FReg::F2, x);
        asm.li_d(FReg::F4, y);
        asm.div_d(FReg::F6, FReg::F2, FReg::F4);
        asm.mul_d(FReg::F6, FReg::F6, FReg::F6);
        asm.sqrt_d(FReg::F8, FReg::F6);
        asm.s_d_gp(FReg::F8, "out", 0);
        asm.halt();
        let p = asm.link("fp", &SoftwareSupport::on()).unwrap();
        let st = run_to_halt(&p);
        let expected = ((x as f64 / y as f64) * (x as f64 / y as f64)).sqrt();
        prop_assert_eq!(st.mem.read_f64(p.symbol("out")), expected);
    }

    /// The invariant underneath the entire evaluation: timing configuration
    /// never changes architectural results.
    #[test]
    fn timing_is_observationally_pure(
        seed in any::<u16>(),
        fac in any::<bool>(),
        block16 in any::<bool>(),
    ) {
        // A small data-dependent program derived from the seed.
        let mut asm = Asm::new();
        asm.gp_array("buf", 256, 4);
        asm.gp_addr(Reg::S0, "buf", 0);
        asm.li(Reg::T0, seed as i32 | 1);
        asm.li(Reg::S1, 50);
        asm.label("loop");
        asm.andi(Reg::T1, Reg::T0, 0xfc);
        asm.sw_x(Reg::T0, Reg::S0, Reg::T1);
        asm.lw_x(Reg::T2, Reg::S0, Reg::T1);
        asm.addu(Reg::T0, Reg::T0, Reg::T2);
        asm.addiu(Reg::T0, Reg::T0, 13);
        asm.addiu(Reg::S1, Reg::S1, -1);
        asm.bgtz(Reg::S1, "loop");
        asm.halt();
        let p = asm.link("rand", &SoftwareSupport::on()).unwrap();

        let reference = run_to_halt(&p).regs[Reg::T0.index()];
        let mut cfg = MachineConfig::paper_baseline();
        if fac { cfg = cfg.with_fac(); }
        if block16 { cfg = cfg.with_block_size(16); }
        let r = Machine::new(cfg).run(&p).unwrap();
        prop_assert_eq!(r.final_state.regs[Reg::T0.index()], reference);
    }
}
