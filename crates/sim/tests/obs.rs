//! Observability-layer guarantees:
//!
//! 1. the metrics JSON export round-trips exactly (counters bit-for-bit,
//!    gauges by shortest-round-trip float formatting) on arbitrary
//!    registries, including escaping-hostile metric names;
//! 2. attaching an observer never perturbs the simulation — `Stats` and
//!    the cycle count are bit-identical with and without one.

use fac_asm::{Asm, SoftwareSupport};
use fac_isa::Reg;
use fac_sim::obs::{
    Event, Json, JsonlWriter, MetricsRegistry, Recorder, RegisterMetrics, VecObserver,
};
use fac_sim::{Machine, MachineConfig};
use proptest::prelude::*;

/// Metric-name characters, deliberately including JSON-hostile ones.
fn name_char(b: u8) -> char {
    const SET: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', '.', '_', '-', '/', ' ', '"', '\\', '\n', '\t',
        '\u{8}', 'µ', '✓', '\u{1f}',
    ];
    SET[b as usize % SET.len()]
}

fn arb_metrics() -> impl Strategy<Value = Vec<(Vec<u8>, Result<u64, f64>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 1..12),
            prop_oneof![
                any::<u64>().prop_map(Ok),
                any::<f64>().prop_map(Err),
                // Non-finite gauges, explicitly: the registry zeroes them
                // on registration and the JSON writer emits `null` for any
                // that slip through elsewhere — either way the export must
                // never carry a NaN/Infinity token.
                Just(Err(f64::NAN)),
                Just(Err(f64::INFINITY)),
                Just(Err(f64::NEG_INFINITY)),
            ],
        ),
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `from_json(to_json(reg)) == reg` for arbitrary registries.
    #[test]
    fn metrics_json_round_trips(entries in arb_metrics()) {
        let mut reg = MetricsRegistry::new();
        for (name_bytes, value) in &entries {
            let name: String = name_bytes.iter().map(|&b| name_char(b)).collect();
            match value {
                Ok(c) => reg.counter(&name, *c),
                Err(g) => reg.gauge(&name, *g),
            }
        }
        let text = reg.to_json().to_string();
        for token in ["NaN", "Infinity", "inf"] {
            prop_assert!(
                !text.contains(token),
                "export must not contain a non-finite token {}: {}", token, text
            );
        }
        let back = MetricsRegistry::from_json(&text).unwrap();
        prop_assert_eq!(back, reg, "export was: {}", text);
    }

    /// Every event's JSONL line parses back as a JSON object carrying the
    /// event's tag and cycle.
    #[test]
    fn event_lines_parse(cycle in any::<u64>(), pc in any::<u32>()) {
        let ev = Event::FaultInjected { cycle, pc, predicted: 1, actual: 2 };
        let doc = fac_sim::obs::json::parse(&ev.to_json().to_string()).unwrap();
        prop_assert_eq!(doc.get("t").and_then(Json::as_str), Some("fault_injected"));
        prop_assert_eq!(doc.get("cycle").and_then(Json::as_u64), Some(cycle));
    }
}

/// A workload with global, stack and general references, block-crossing
/// offsets (replays under FAC) and enough iterations to fill caches.
fn workload() -> fac_asm::Program {
    let mut a = Asm::new();
    a.gp_word("g", 7);
    a.gp_array("buf", 4096, 4);
    a.far_array("far", 8192, 4);
    a.gp_addr(Reg::S0, "buf", 0);
    a.la(Reg::S2, "far", 28);
    a.li(Reg::S1, 200);
    a.label("loop");
    a.lw_gp(Reg::T0, "g", 0);
    a.lw(Reg::T1, 8, Reg::S2); // 28+8 crosses a block boundary: replays
    a.sw_pi(Reg::T0, Reg::S0, 4);
    a.lw(Reg::T2, -4, Reg::SP);
    a.sw(Reg::T2, -8, Reg::SP);
    a.addiu(Reg::S2, Reg::S2, 36);
    a.addiu(Reg::S1, Reg::S1, -1);
    a.bgtz(Reg::S1, "loop");
    a.halt();
    a.link("obs-workload", &SoftwareSupport::on()).unwrap()
}

fn configs() -> Vec<MachineConfig> {
    vec![
        MachineConfig::paper_baseline(),
        MachineConfig::paper_baseline().with_fac(),
        MachineConfig::paper_baseline().with_fac().with_tlb(),
        MachineConfig::paper_baseline().with_ltb(512),
    ]
}

/// The tentpole guarantee: an attached observer changes nothing — the
/// statistics (including the cycle count) are bit-identical to a plain run.
#[test]
fn observed_run_is_bit_identical() {
    let p = workload();
    for cfg in configs() {
        let plain = Machine::new(cfg).run(&p).unwrap();
        let mut vec_obs = VecObserver::default();
        let observed = Machine::new(cfg).run_observed(&p, &mut vec_obs).unwrap();
        assert_eq!(plain.stats, observed.stats, "VecObserver perturbed the run");

        let mut rec = Recorder::new().with_sampler(64).with_sink(Box::new(Vec::new()));
        let recorded = Machine::new(cfg).run_observed(&p, &mut rec).unwrap();
        assert_eq!(plain.stats, recorded.stats, "Recorder perturbed the run");
        assert_eq!(plain.stats.cycles, recorded.stats.cycles);
        rec.finish_sink().unwrap();
    }
}

/// The event stream agrees with the aggregate counters it refines.
#[test]
fn event_stream_matches_counters() {
    let p = workload();
    let cfg = MachineConfig::paper_baseline().with_fac();
    let mut obs = VecObserver::default();
    let report = Machine::new(cfg).run_observed(&p, &mut obs).unwrap();
    let s = &report.stats;

    let count = |f: &dyn Fn(&Event) -> bool| obs.events.iter().filter(|e| f(e)).count() as u64;
    let speculations = count(&|e| matches!(e, Event::Speculate { .. }));
    let replays = count(&|e| matches!(e, Event::Replay { .. }));
    let dmisses = count(&|e| {
        matches!(e, Event::CacheMiss { cache: fac_sim::obs::CacheKind::DCache, .. })
    });
    let imisses = count(&|e| {
        matches!(e, Event::CacheMiss { cache: fac_sim::obs::CacheKind::ICache, .. })
    });

    assert_eq!(speculations, s.pred_loads.attempts() + s.pred_stores.attempts());
    assert_eq!(replays, s.pred_loads.fails() + s.pred_stores.fails());
    assert_eq!(replays, s.extra_accesses);
    assert_eq!(dmisses, s.dcache.misses);
    assert_eq!(imisses, s.icache.misses);
    let cause_total: u64 = obs
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Replay { cause: Some(_), .. } => Some(1),
            _ => None,
        })
        .sum();
    assert_eq!(cause_total, s.fail_causes.iter().sum::<u64>());
}

/// The recorder's attribution table and its JSONL sink agree with the run.
#[test]
fn recorder_attributes_and_streams() {
    let p = workload();
    let mut sink = Vec::new();
    let mut rec = Recorder::new().with_sampler(128);
    let report = {
        let mut pair = (&mut rec, JsonlWriter::new(&mut sink));
        let r = Machine::new(MachineConfig::paper_baseline().with_fac())
            .run_observed(&p, &mut pair)
            .unwrap();
        pair.1.finish().unwrap();
        r
    };
    let s = &report.stats;

    assert_eq!(
        rec.attribution.total_replays(),
        s.pred_loads.fails() + s.pred_stores.fails()
    );
    let top = rec.attribution.top_sites(3);
    assert!(!top.is_empty());
    assert!(top[0].replays >= top.last().unwrap().replays, "ranked by replays");

    // Every line of the sink parses; the stream is as long as the recorder
    // says it is.
    let text = String::from_utf8(sink).unwrap();
    assert_eq!(text.lines().count() as u64, rec.events_seen);
    for line in text.lines() {
        fac_sim::obs::json::parse(line).expect("JSONL line parses");
    }

    // Sampled windows sum to the aggregate replay count.
    let sampled: u64 =
        rec.sampler.as_ref().unwrap().samples().iter().map(|w| w.replays).sum();
    assert_eq!(sampled, rec.attribution.total_replays());

    // The whole run document is one valid JSON object.
    let doc = rec.to_json(5).to_pretty(2);
    fac_sim::obs::json::parse(&doc).expect("run document parses");
}

/// A full `SimStats` registration exports to JSON and reconstructs.
#[test]
fn simstats_metrics_round_trip() {
    let p = workload();
    let report =
        Machine::new(MachineConfig::paper_baseline().with_fac().with_tlb()).run(&p).unwrap();
    let mut reg = MetricsRegistry::new();
    report.stats.register_metrics(&mut reg, "sim");
    assert!(reg.len() > 80, "got {}", reg.len());
    let back = MetricsRegistry::from_json(&reg.to_json().to_string()).unwrap();
    assert_eq!(back, reg);
    assert_eq!(
        back.get("sim.cycles"),
        Some(fac_sim::obs::Metric::Counter(report.stats.cycles))
    );
}

/// Observers also ride along under `--ltb`: wrong LTB guesses replay with
/// `cause: None` and are attributed per PC.
#[test]
fn ltb_replays_have_no_cause() {
    let p = workload();
    let mut obs = VecObserver::default();
    Machine::new(MachineConfig::paper_baseline().with_ltb(512)).run_observed(&p, &mut obs).unwrap();
    let ltb_replays: Vec<&Event> =
        obs.events.iter().filter(|e| matches!(e, Event::Replay { .. })).collect();
    assert!(
        ltb_replays.iter().all(|e| matches!(e, Event::Replay { cause: None, .. })),
        "LTB misses fire no failure-cause signal"
    );
}
