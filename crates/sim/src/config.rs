//! Machine configuration (the paper's Table 5 plus FAC options).

use fac_core::{FaultPlan, PredictorConfig};
use fac_mem::CacheConfig;

/// A machine configuration the simulator cannot honour. Produced by
/// [`MachineConfig::validate`], which [`crate::Machine::run`] calls before
/// building any hardware structures — so a bad config surfaces as a typed
/// error instead of a panic deep inside the cache or predictor geometry
/// asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A cache parameter that must be a power of two is not.
    NotPowerOfTwo {
        /// Which parameter (e.g. `"dcache.size_bytes"`).
        what: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A parameter that must be nonzero is zero.
    Zero {
        /// Which parameter.
        what: &'static str,
    },
    /// The cache block is a single byte, leaving no block-offset bit for
    /// the fast-address-calculation adder.
    BlockTooSmall {
        /// Which cache.
        what: &'static str,
    },
    /// `block_bytes * ways` exceeds the cache size, i.e. fewer than one set.
    NoSets {
        /// Which cache.
        what: &'static str,
    },
    /// A fault plan was configured but FAC is off: there is no prediction
    /// circuit to corrupt, so the plan would silently do nothing.
    FaultPlanWithoutFac,
    /// An LTB was requested with zero entries.
    EmptyLtb,
    /// A command-line flag no binary flag table recognizes. Produced by
    /// the strict argv validation in `fac-bench` — a typo like `--smokee`
    /// must not silently fall through to a Paper-scale sweep.
    UnknownFlag {
        /// The offending argument, verbatim.
        flag: String,
        /// The flags the binary does accept, for the error message.
        expected: String,
    },
    /// A flag that requires a value was the last argument (or its value
    /// slot held another flag).
    MissingFlagValue {
        /// The flag missing its value.
        flag: String,
    },
    /// A flag value that did not parse (e.g. `--jobs zero`).
    BadFlagValue {
        /// The flag.
        flag: String,
        /// The unparseable value, verbatim.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A sampling specification the tiered engine cannot honour: the
    /// measurement window must be nonzero and no longer than the sampling
    /// period (see [`crate::tier::SampleSpec`]).
    BadSampleSpec {
        /// The sampling period (instructions per period).
        every: u64,
        /// The measurement window (detailed instructions per period).
        window: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::Zero { what } => write!(f, "{what} must be nonzero"),
            ConfigError::BlockTooSmall { what } => {
                write!(f, "{what} blocks must be at least 2 bytes (need a block-offset bit)")
            }
            ConfigError::NoSets { what } => {
                write!(f, "{what}: block_bytes * ways exceeds the cache size (no sets)")
            }
            ConfigError::FaultPlanWithoutFac => {
                write!(f, "a fault plan needs fast address calculation enabled (no circuit to corrupt)")
            }
            ConfigError::EmptyLtb => write!(f, "ltb_entries must be nonzero when the LTB is enabled"),
            ConfigError::UnknownFlag { flag, expected } => {
                write!(f, "unrecognized flag '{flag}' (accepted: {expected})")
            }
            ConfigError::MissingFlagValue { flag } => {
                write!(f, "flag '{flag}' requires a value")
            }
            ConfigError::BadFlagValue { flag, value, expected } => {
                write!(f, "bad value '{value}' for flag '{flag}' (expected {expected})")
            }
            ConfigError::BadSampleSpec { every, window } => {
                write!(
                    f,
                    "sample window must satisfy 1 <= window <= every, \
                     got window {window} with period {every}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Load-latency experiment modes (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadLatencyMode {
    /// Normal 5-stage pipeline: address generation in EX, cache in MEM —
    /// 2-cycle loads.
    #[default]
    Normal,
    /// What-if: every load completes its cache access in EX (1-cycle
    /// loads). Used only for the Figure 2 potential study.
    OneCycle,
}

/// Latency (total) and issue interval (cycles before the unit can accept
/// another operation) of one functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuTiming {
    /// Result latency in cycles.
    pub latency: u64,
    /// Issue interval (1 = fully pipelined).
    pub interval: u64,
}

/// Functional-unit pool configuration (Table 5).
///
/// Table 5's latency column is partially garbled in surviving copies of the
/// paper ("integer ALU-/, load/store-2/, integer MULT-3/, …"); the standard
/// readings used here are: ALU 1/1, load/store 2/1, integer MULT 3/1,
/// integer DIV 20/20, FP add 2/1, FP MULT 4/1, FP DIV 12/12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Number of integer ALUs (branches execute here too).
    pub int_alu_units: u32,
    /// Number of load/store units (address generation + cache port).
    pub load_store_units: u32,
    /// Number of FP adders.
    pub fp_add_units: u32,
    /// Integer multiply/divide units (shared).
    pub int_mul_units: u32,
    /// FP multiply/divide units (shared).
    pub fp_mul_units: u32,
    /// Integer ALU timing.
    pub int_alu: FuTiming,
    /// Integer multiply timing.
    pub int_mul: FuTiming,
    /// Integer divide timing.
    pub int_div: FuTiming,
    /// FP add/sub/compare/convert timing.
    pub fp_add: FuTiming,
    /// FP multiply timing.
    pub fp_mul: FuTiming,
    /// FP divide / square-root timing.
    pub fp_div: FuTiming,
}

impl Default for FuConfig {
    fn default() -> FuConfig {
        FuConfig {
            int_alu_units: 4,
            load_store_units: 2,
            fp_add_units: 2,
            int_mul_units: 1,
            fp_mul_units: 1,
            int_alu: FuTiming { latency: 1, interval: 1 },
            int_mul: FuTiming { latency: 3, interval: 1 },
            int_div: FuTiming { latency: 20, interval: 20 },
            fp_add: FuTiming { latency: 2, interval: 1 },
            fp_mul: FuTiming { latency: 4, interval: 1 },
            fp_div: FuTiming { latency: 12, interval: 12 },
        }
    }
}

/// Pipeline organization (§6's Golden & Mudge comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineOrg {
    /// The traditional 5-stage "load-use interlock" pipeline: ALU ops
    /// execute in EX, loads compute addresses in EX and access the cache
    /// in MEM (the paper's baseline).
    #[default]
    Lui,
    /// The "address generation interlock" organization (Jouppi's
    /// MultiTitan, the R8000/TFP): a dedicated address-generation stage,
    /// with ALU execution pushed down next to cache access. Removes the
    /// load-use hazard, introduces an address-use hazard and one extra
    /// cycle of branch-resolution delay.
    Agi,
}

/// Fast-address-calculation pipeline support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FacConfig {
    /// The prediction circuit configuration (geometry comes from the data
    /// cache).
    pub predictor: PredictorConfig,
}


/// Full machine configuration. [`MachineConfig::paper_baseline`] reproduces
/// Table 5; the builder-style `with_*` methods derive the evaluated
/// variants.
///
/// ```
/// use fac_sim::MachineConfig;
///
/// let base = MachineConfig::paper_baseline();
/// assert_eq!(base.issue_width, 4);
/// assert_eq!(base.dcache.size_bytes, 16 * 1024);
/// let fac = base.with_fac();
/// assert!(fac.fac.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (any 4 contiguous).
    pub fetch_width: u32,
    /// In-order issue width.
    pub issue_width: u32,
    /// Maximum loads issued per cycle.
    pub max_loads_per_cycle: u32,
    /// Maximum stores issued per cycle.
    pub max_stores_per_cycle: u32,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Miss latency (cycles) for both caches.
    pub miss_latency: u64,
    /// Data-cache read ports (Table 5: dual-ported via replication).
    pub dcache_read_ports: u32,
    /// Data-cache write ports (used by store-buffer retirement).
    pub dcache_write_ports: u32,
    /// Branch-target-buffer entries (direct-mapped, 2-bit counters).
    pub btb_entries: u32,
    /// Extra fetch penalty on a branch misprediction.
    pub branch_mispredict_penalty: u64,
    /// Store-buffer capacity (non-merging).
    pub store_buffer_entries: usize,
    /// Miss status holding registers of the non-blocking D-cache (Table 5:
    /// "non-blocking interface, 1 outstanding miss per register" — we model
    /// a bounded MSHR file with fill merging).
    pub mshr_entries: u32,
    /// Functional units.
    pub fu: FuConfig,
    /// Fast address calculation; `None` = the baseline pipeline.
    pub fac: Option<FacConfig>,
    /// Load-target-buffer address prediction (the §6 related-work
    /// comparator); entries of a direct-mapped stride-predicting LTB.
    /// Ignored when `fac` is set.
    pub ltb_entries: Option<u32>,
    /// Pipeline organization: load-use interlock (baseline) or address
    /// generation interlock.
    pub pipeline_org: PipelineOrg,
    /// Load-latency what-if mode (Figure 2).
    pub load_latency: LoadLatencyMode,
    /// Perfect data cache (0-cycle misses, Figure 2).
    pub perfect_dcache: bool,
    /// Model a data TLB (64-entry fully associative, 4 KB pages) for the
    /// §5.4 virtual-memory check.
    pub model_tlb: bool,
    /// Inject a fault into the prediction circuit (requires `fac`): the
    /// verification-path robustness harness. `None` = the exact circuit.
    pub fault_plan: Option<FaultPlan>,
    /// Run the per-cycle invariant checker even in release builds (debug
    /// builds always check). Violations surface as
    /// [`crate::SimError::Invariant`].
    pub checks: bool,
    /// Trap misaligned and never-mapped data accesses as typed
    /// [`crate::ExecError`]s instead of the lenient byte-wise semantics.
    pub strict_mem: bool,
}

impl MachineConfig {
    /// The Table 5 baseline: 4-way in-order superscalar, 16 KB
    /// direct-mapped I/D caches with 32-byte blocks, 6-cycle miss latency,
    /// 16-entry store buffer, no fast address calculation.
    pub fn paper_baseline() -> MachineConfig {
        MachineConfig {
            fetch_width: 4,
            issue_width: 4,
            max_loads_per_cycle: 2,
            max_stores_per_cycle: 1,
            icache: CacheConfig::direct_mapped(16 * 1024, 32),
            dcache: CacheConfig::direct_mapped(16 * 1024, 32),
            miss_latency: 6,
            dcache_read_ports: 2,
            dcache_write_ports: 1,
            btb_entries: 2048,
            branch_mispredict_penalty: 2,
            store_buffer_entries: 16,
            mshr_entries: 8,
            fu: FuConfig::default(),
            fac: None,
            ltb_entries: None,
            pipeline_org: PipelineOrg::Lui,
            load_latency: LoadLatencyMode::Normal,
            perfect_dcache: false,
            model_tlb: false,
            fault_plan: None,
            checks: false,
            strict_mem: false,
        }
    }

    /// Enables fast address calculation with the default circuit.
    pub fn with_fac(mut self) -> MachineConfig {
        self.fac = Some(FacConfig::default());
        self
    }

    /// Enables fast address calculation with a specific circuit config.
    pub fn with_fac_config(mut self, predictor: PredictorConfig) -> MachineConfig {
        self.fac = Some(FacConfig { predictor });
        self
    }

    /// Changes the D-cache block size (the paper evaluates 16 and 32).
    pub fn with_block_size(mut self, block_bytes: u32) -> MachineConfig {
        self.dcache.block_bytes = block_bytes;
        self
    }

    /// Figure 2 what-if: 1-cycle loads.
    pub fn with_one_cycle_loads(mut self) -> MachineConfig {
        self.load_latency = LoadLatencyMode::OneCycle;
        self
    }

    /// Figure 2 what-if: perfect (never-miss-penalty) data cache.
    pub fn with_perfect_dcache(mut self) -> MachineConfig {
        self.perfect_dcache = true;
        self
    }

    /// Enables the data-TLB model.
    pub fn with_tlb(mut self) -> MachineConfig {
        self.model_tlb = true;
        self
    }

    /// Enables load-target-buffer address prediction instead of FAC.
    pub fn with_ltb(mut self, entries: u32) -> MachineConfig {
        self.ltb_entries = Some(entries);
        self
    }

    /// Switches to the address-generation-interlock pipeline organization.
    pub fn with_agi_pipeline(mut self) -> MachineConfig {
        self.pipeline_org = PipelineOrg::Agi;
        self
    }

    /// Injects `plan` into the prediction circuit. Only meaningful together
    /// with [`MachineConfig::with_fac`]; [`MachineConfig::validate`] rejects
    /// the combination without it.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> MachineConfig {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables the per-cycle invariant checker in release builds too.
    pub fn with_checks(mut self) -> MachineConfig {
        self.checks = true;
        self
    }

    /// Enables strict data-memory semantics (trap misaligned / never-mapped
    /// accesses).
    pub fn with_strict_memory(mut self) -> MachineConfig {
        self.strict_mem = true;
        self
    }

    /// Checks that the configuration describes a machine the simulator can
    /// actually build — cache geometries with at least one set and one
    /// block-offset bit, nonzero widths and unit counts, and a fault plan
    /// only where there is a circuit to corrupt.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn cache(what: [&'static str; 3], c: &CacheConfig) -> Result<(), ConfigError> {
            let [size, block, ways] = what;
            for (what, v) in [(size, c.size_bytes), (block, c.block_bytes), (ways, c.ways)] {
                if v == 0 {
                    return Err(ConfigError::Zero { what });
                }
                if !v.is_power_of_two() {
                    return Err(ConfigError::NotPowerOfTwo { what, value: v });
                }
            }
            if c.block_bytes < 2 {
                return Err(ConfigError::BlockTooSmall { what: size });
            }
            if c.block_bytes.saturating_mul(c.ways) > c.size_bytes {
                return Err(ConfigError::NoSets { what: size });
            }
            Ok(())
        }
        cache(["icache.size_bytes", "icache.block_bytes", "icache.ways"], &self.icache)?;
        cache(["dcache.size_bytes", "dcache.block_bytes", "dcache.ways"], &self.dcache)?;
        for (what, v) in [
            ("fetch_width", self.fetch_width),
            ("issue_width", self.issue_width),
            ("max_loads_per_cycle", self.max_loads_per_cycle),
            ("max_stores_per_cycle", self.max_stores_per_cycle),
            ("dcache_read_ports", self.dcache_read_ports),
            ("dcache_write_ports", self.dcache_write_ports),
            ("mshr_entries", self.mshr_entries),
            ("fu.int_alu_units", self.fu.int_alu_units),
            ("fu.load_store_units", self.fu.load_store_units),
            ("fu.fp_add_units", self.fu.fp_add_units),
            ("fu.int_mul_units", self.fu.int_mul_units),
            ("fu.fp_mul_units", self.fu.fp_mul_units),
        ] {
            if v == 0 {
                return Err(ConfigError::Zero { what });
            }
        }
        if self.store_buffer_entries == 0 {
            return Err(ConfigError::Zero { what: "store_buffer_entries" });
        }
        if self.fault_plan.is_some() && self.fac.is_none() {
            return Err(ConfigError::FaultPlanWithoutFac);
        }
        if self.ltb_entries == Some(0) {
            return Err(ConfigError::EmptyLtb);
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table5() {
        let c = MachineConfig::paper_baseline();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.icache.size_bytes, 16 * 1024);
        assert_eq!(c.icache.block_bytes, 32);
        assert_eq!(c.dcache.size_bytes, 16 * 1024);
        assert_eq!(c.miss_latency, 6);
        assert_eq!(c.store_buffer_entries, 16);
        assert_eq!(c.fu.int_alu_units, 4);
        assert_eq!(c.fu.load_store_units, 2);
        assert_eq!(c.fu.fp_add_units, 2);
        assert!(c.fac.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::paper_baseline()
            .with_fac()
            .with_block_size(16)
            .with_tlb();
        assert!(c.fac.is_some());
        assert_eq!(c.dcache.block_bytes, 16);
        assert!(c.model_tlb);
        assert_eq!(c.icache.block_bytes, 32, "icache untouched");
    }

    #[test]
    fn what_if_modes() {
        let c = MachineConfig::paper_baseline()
            .with_one_cycle_loads()
            .with_perfect_dcache();
        assert_eq!(c.load_latency, LoadLatencyMode::OneCycle);
        assert!(c.perfect_dcache);
    }

    #[test]
    fn baseline_and_variants_validate() {
        for c in [
            MachineConfig::paper_baseline(),
            MachineConfig::paper_baseline().with_fac(),
            MachineConfig::paper_baseline().with_fac().with_block_size(16),
            MachineConfig::paper_baseline().with_ltb(512),
            MachineConfig::paper_baseline()
                .with_fac()
                .with_fault_plan(FaultPlan::new(fac_core::FaultKind::AlwaysWrong))
                .with_checks()
                .with_strict_memory(),
        ] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = MachineConfig::paper_baseline();
        c.dcache.size_bytes = 3000;
        assert_eq!(
            c.validate(),
            Err(ConfigError::NotPowerOfTwo { what: "dcache.size_bytes", value: 3000 })
        );

        let mut c = MachineConfig::paper_baseline();
        c.icache.ways = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { what: "icache.ways" }));

        let mut c = MachineConfig::paper_baseline();
        c.dcache.block_bytes = 1;
        assert_eq!(c.validate(), Err(ConfigError::BlockTooSmall { what: "dcache.size_bytes" }));

        let mut c = MachineConfig::paper_baseline();
        c.dcache.block_bytes = 32 * 1024;
        assert_eq!(c.validate(), Err(ConfigError::NoSets { what: "dcache.size_bytes" }));

        let mut c = MachineConfig::paper_baseline();
        c.issue_width = 0;
        assert_eq!(c.validate(), Err(ConfigError::Zero { what: "issue_width" }));
    }

    #[test]
    fn validate_rejects_orphan_fault_plan_and_empty_ltb() {
        let c = MachineConfig::paper_baseline()
            .with_fault_plan(FaultPlan::new(fac_core::FaultKind::SilentWrong));
        assert_eq!(c.validate(), Err(ConfigError::FaultPlanWithoutFac));

        let c = MachineConfig::paper_baseline().with_ltb(0);
        assert_eq!(c.validate(), Err(ConfigError::EmptyLtb));
    }

    #[test]
    fn config_errors_display() {
        for (err, needle) in [
            (ConfigError::NotPowerOfTwo { what: "x", value: 7 }, "power of two"),
            (ConfigError::Zero { what: "x" }, "nonzero"),
            (ConfigError::BlockTooSmall { what: "x" }, "block-offset"),
            (ConfigError::NoSets { what: "x" }, "no sets"),
            (ConfigError::FaultPlanWithoutFac, "no circuit"),
            (ConfigError::EmptyLtb, "ltb_entries"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
