//! Machine configuration (the paper's Table 5 plus FAC options).

use fac_core::PredictorConfig;
use fac_mem::CacheConfig;

/// Load-latency experiment modes (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadLatencyMode {
    /// Normal 5-stage pipeline: address generation in EX, cache in MEM —
    /// 2-cycle loads.
    #[default]
    Normal,
    /// What-if: every load completes its cache access in EX (1-cycle
    /// loads). Used only for the Figure 2 potential study.
    OneCycle,
}

/// Latency (total) and issue interval (cycles before the unit can accept
/// another operation) of one functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuTiming {
    /// Result latency in cycles.
    pub latency: u64,
    /// Issue interval (1 = fully pipelined).
    pub interval: u64,
}

/// Functional-unit pool configuration (Table 5).
///
/// Table 5's latency column is partially garbled in surviving copies of the
/// paper ("integer ALU-/, load/store-2/, integer MULT-3/, …"); the standard
/// readings used here are: ALU 1/1, load/store 2/1, integer MULT 3/1,
/// integer DIV 20/20, FP add 2/1, FP MULT 4/1, FP DIV 12/12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Number of integer ALUs (branches execute here too).
    pub int_alu_units: u32,
    /// Number of load/store units (address generation + cache port).
    pub load_store_units: u32,
    /// Number of FP adders.
    pub fp_add_units: u32,
    /// Integer multiply/divide units (shared).
    pub int_mul_units: u32,
    /// FP multiply/divide units (shared).
    pub fp_mul_units: u32,
    /// Integer ALU timing.
    pub int_alu: FuTiming,
    /// Integer multiply timing.
    pub int_mul: FuTiming,
    /// Integer divide timing.
    pub int_div: FuTiming,
    /// FP add/sub/compare/convert timing.
    pub fp_add: FuTiming,
    /// FP multiply timing.
    pub fp_mul: FuTiming,
    /// FP divide / square-root timing.
    pub fp_div: FuTiming,
}

impl Default for FuConfig {
    fn default() -> FuConfig {
        FuConfig {
            int_alu_units: 4,
            load_store_units: 2,
            fp_add_units: 2,
            int_mul_units: 1,
            fp_mul_units: 1,
            int_alu: FuTiming { latency: 1, interval: 1 },
            int_mul: FuTiming { latency: 3, interval: 1 },
            int_div: FuTiming { latency: 20, interval: 20 },
            fp_add: FuTiming { latency: 2, interval: 1 },
            fp_mul: FuTiming { latency: 4, interval: 1 },
            fp_div: FuTiming { latency: 12, interval: 12 },
        }
    }
}

/// Pipeline organization (§6's Golden & Mudge comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineOrg {
    /// The traditional 5-stage "load-use interlock" pipeline: ALU ops
    /// execute in EX, loads compute addresses in EX and access the cache
    /// in MEM (the paper's baseline).
    #[default]
    Lui,
    /// The "address generation interlock" organization (Jouppi's
    /// MultiTitan, the R8000/TFP): a dedicated address-generation stage,
    /// with ALU execution pushed down next to cache access. Removes the
    /// load-use hazard, introduces an address-use hazard and one extra
    /// cycle of branch-resolution delay.
    Agi,
}

/// Fast-address-calculation pipeline support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FacConfig {
    /// The prediction circuit configuration (geometry comes from the data
    /// cache).
    pub predictor: PredictorConfig,
}

impl Default for FacConfig {
    fn default() -> FacConfig {
        FacConfig { predictor: PredictorConfig::default() }
    }
}

/// Full machine configuration. [`MachineConfig::paper_baseline`] reproduces
/// Table 5; the builder-style `with_*` methods derive the evaluated
/// variants.
///
/// ```
/// use fac_sim::MachineConfig;
///
/// let base = MachineConfig::paper_baseline();
/// assert_eq!(base.issue_width, 4);
/// assert_eq!(base.dcache.size_bytes, 16 * 1024);
/// let fac = base.with_fac();
/// assert!(fac.fac.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Instructions fetched per cycle (any 4 contiguous).
    pub fetch_width: u32,
    /// In-order issue width.
    pub issue_width: u32,
    /// Maximum loads issued per cycle.
    pub max_loads_per_cycle: u32,
    /// Maximum stores issued per cycle.
    pub max_stores_per_cycle: u32,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Miss latency (cycles) for both caches.
    pub miss_latency: u64,
    /// Data-cache read ports (Table 5: dual-ported via replication).
    pub dcache_read_ports: u32,
    /// Data-cache write ports (used by store-buffer retirement).
    pub dcache_write_ports: u32,
    /// Branch-target-buffer entries (direct-mapped, 2-bit counters).
    pub btb_entries: u32,
    /// Extra fetch penalty on a branch misprediction.
    pub branch_mispredict_penalty: u64,
    /// Store-buffer capacity (non-merging).
    pub store_buffer_entries: usize,
    /// Miss status holding registers of the non-blocking D-cache (Table 5:
    /// "non-blocking interface, 1 outstanding miss per register" — we model
    /// a bounded MSHR file with fill merging).
    pub mshr_entries: u32,
    /// Functional units.
    pub fu: FuConfig,
    /// Fast address calculation; `None` = the baseline pipeline.
    pub fac: Option<FacConfig>,
    /// Load-target-buffer address prediction (the §6 related-work
    /// comparator); entries of a direct-mapped stride-predicting LTB.
    /// Ignored when `fac` is set.
    pub ltb_entries: Option<u32>,
    /// Pipeline organization: load-use interlock (baseline) or address
    /// generation interlock.
    pub pipeline_org: PipelineOrg,
    /// Load-latency what-if mode (Figure 2).
    pub load_latency: LoadLatencyMode,
    /// Perfect data cache (0-cycle misses, Figure 2).
    pub perfect_dcache: bool,
    /// Model a data TLB (64-entry fully associative, 4 KB pages) for the
    /// §5.4 virtual-memory check.
    pub model_tlb: bool,
}

impl MachineConfig {
    /// The Table 5 baseline: 4-way in-order superscalar, 16 KB
    /// direct-mapped I/D caches with 32-byte blocks, 6-cycle miss latency,
    /// 16-entry store buffer, no fast address calculation.
    pub fn paper_baseline() -> MachineConfig {
        MachineConfig {
            fetch_width: 4,
            issue_width: 4,
            max_loads_per_cycle: 2,
            max_stores_per_cycle: 1,
            icache: CacheConfig::direct_mapped(16 * 1024, 32),
            dcache: CacheConfig::direct_mapped(16 * 1024, 32),
            miss_latency: 6,
            dcache_read_ports: 2,
            dcache_write_ports: 1,
            btb_entries: 2048,
            branch_mispredict_penalty: 2,
            store_buffer_entries: 16,
            mshr_entries: 8,
            fu: FuConfig::default(),
            fac: None,
            ltb_entries: None,
            pipeline_org: PipelineOrg::Lui,
            load_latency: LoadLatencyMode::Normal,
            perfect_dcache: false,
            model_tlb: false,
        }
    }

    /// Enables fast address calculation with the default circuit.
    pub fn with_fac(mut self) -> MachineConfig {
        self.fac = Some(FacConfig::default());
        self
    }

    /// Enables fast address calculation with a specific circuit config.
    pub fn with_fac_config(mut self, predictor: PredictorConfig) -> MachineConfig {
        self.fac = Some(FacConfig { predictor });
        self
    }

    /// Changes the D-cache block size (the paper evaluates 16 and 32).
    pub fn with_block_size(mut self, block_bytes: u32) -> MachineConfig {
        self.dcache.block_bytes = block_bytes;
        self
    }

    /// Figure 2 what-if: 1-cycle loads.
    pub fn with_one_cycle_loads(mut self) -> MachineConfig {
        self.load_latency = LoadLatencyMode::OneCycle;
        self
    }

    /// Figure 2 what-if: perfect (never-miss-penalty) data cache.
    pub fn with_perfect_dcache(mut self) -> MachineConfig {
        self.perfect_dcache = true;
        self
    }

    /// Enables the data-TLB model.
    pub fn with_tlb(mut self) -> MachineConfig {
        self.model_tlb = true;
        self
    }

    /// Enables load-target-buffer address prediction instead of FAC.
    pub fn with_ltb(mut self, entries: u32) -> MachineConfig {
        self.ltb_entries = Some(entries);
        self
    }

    /// Switches to the address-generation-interlock pipeline organization.
    pub fn with_agi_pipeline(mut self) -> MachineConfig {
        self.pipeline_org = PipelineOrg::Agi;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table5() {
        let c = MachineConfig::paper_baseline();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.icache.size_bytes, 16 * 1024);
        assert_eq!(c.icache.block_bytes, 32);
        assert_eq!(c.dcache.size_bytes, 16 * 1024);
        assert_eq!(c.miss_latency, 6);
        assert_eq!(c.store_buffer_entries, 16);
        assert_eq!(c.fu.int_alu_units, 4);
        assert_eq!(c.fu.load_store_units, 2);
        assert_eq!(c.fu.fp_add_units, 2);
        assert!(c.fac.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::paper_baseline()
            .with_fac()
            .with_block_size(16)
            .with_tlb();
        assert!(c.fac.is_some());
        assert_eq!(c.dcache.block_bytes, 16);
        assert!(c.model_tlb);
        assert_eq!(c.icache.block_bytes, 32, "icache untouched");
    }

    #[test]
    fn what_if_modes() {
        let c = MachineConfig::paper_baseline()
            .with_one_cycle_loads()
            .with_perfect_dcache();
        assert_eq!(c.load_latency, LoadLatencyMode::OneCycle);
        assert!(c.perfect_dcache);
    }
}
