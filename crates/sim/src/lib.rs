#![warn(missing_docs)]

//! # fac-sim — the detailed superscalar timing simulator
//!
//! Reimplementation of the paper's evaluation vehicle (Table 5): a 4-way
//! in-order-issue superscalar with out-of-order completion, a traditional
//! 5-stage pipeline, 16 KB direct-mapped instruction and data caches with
//! 32-byte blocks and a 6-cycle miss latency, a 2048-entry BTB with 2-bit
//! counters, a 16-entry non-merging store buffer, and the functional-unit
//! mix of the paper.
//!
//! Fast address calculation is integrated exactly as §5.5 describes: loads
//! and stores whose set index predicts correctly access the data cache in
//! EX and complete in one cycle; mispredictions replay in MEM, consume an
//! extra cache access (the Table 6 bandwidth overhead), and block the
//! speculation slot of accesses issued in the following cycle — except that
//! a load may speculate immediately after a misspeculated load. Stores are
//! speculated into the store buffer and their buffered address fixed on
//! misprediction.
//!
//! ```
//! use fac_asm::{Asm, SoftwareSupport};
//! use fac_isa::Reg;
//! use fac_sim::{Machine, MachineConfig};
//!
//! let mut a = Asm::new();
//! a.gp_word("x", 7);
//! a.lw_gp(Reg::T0, "x", 0);
//! a.addiu(Reg::T0, Reg::T0, 1);
//! a.halt();
//! let program = a.link("inc", &SoftwareSupport::on()).unwrap();
//!
//! let base = Machine::new(MachineConfig::paper_baseline()).run(&program).unwrap();
//! let fac = Machine::new(MachineConfig::paper_baseline().with_fac()).run(&program).unwrap();
//! assert!(fac.stats.cycles <= base.stats.cycles);
//! ```

mod btb;
mod checker;
mod ckpt;
mod config;
mod exec;
mod machine;
pub mod obs;
pub mod oracle;
mod pipeline;
mod profiler;
mod stats;
pub mod tier;
mod trace;

pub use btb::Btb;
pub use checker::{InvariantChecker, InvariantViolation};
pub use ckpt::{config_fingerprint, functional_snapshot, program_fingerprint};
pub use config::{
    ConfigError, FacConfig, FuConfig, FuTiming, LoadLatencyMode, MachineConfig, PipelineOrg,
};
pub use exec::{dst_regs, src_regs, ArchState, ExecError, Executed, MemRef, RegList};
pub use machine::{Machine, Session, SimError, SimReport};
pub use oracle::{GoldenMem, GoldenStep, GoldenStore, Lockstep, Oracle};
pub use pipeline::{IssueInfo, Pipeline};
pub use profiler::{profile_predictions, ProfileReport};
pub use trace::{chrome_trace, render_diagram, TracedInsn};
pub use stats::{OffsetHistogram, PredCounters, RefClass, SimStats};
