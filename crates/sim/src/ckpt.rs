//! Checkpoint framing: the container around a serialized machine state.
//!
//! A snapshot file is self-describing and tamper-evident:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `"FACSNAP\0"` |
//! | 8      | 4    | format version (little-endian u32, currently 1) |
//! | 12     | 8    | payload length (little-endian u64) |
//! | 20     | n    | payload (see [`crate::Session::checkpoint`]) |
//! | 20 + n | 8    | FNV-1a checksum of the payload (little-endian u64) |
//!
//! The payload itself opens with two fingerprints — FNV-1a digests of the
//! machine configuration and of the program — so a snapshot can only be
//! restored into the exact (configuration, program) pair that produced it.
//! Everything after the fingerprints is the field-by-field machine state
//! written with [`fac_core::snap::SnapWriter`].
//!
//! Any deviation — wrong magic, unknown version, truncation, trailing
//! bytes, checksum mismatch, fingerprint mismatch, or an implausible field
//! while decoding — is rejected with a typed error before any simulation
//! state is touched.

use crate::checker::InvariantChecker;
use crate::exec::ArchState;
use crate::pipeline::Pipeline;
use crate::stats::SimStats;
use crate::MachineConfig;
use fac_asm::Program;
use fac_core::snap::{fnv1a, SnapError, SnapReader, SnapWriter, FNV_OFFSET};
use fac_mem::{CacheStats, TlbStats};

/// File magic: identifies a fast-address-calculation machine snapshot.
pub(crate) const MAGIC: &[u8; 8] = b"FACSNAP\0";
/// Current snapshot format version.
pub(crate) const VERSION: u32 = 1;
/// Bytes of framing around the payload (magic + version + length + checksum).
const OVERHEAD: usize = 8 + 4 + 8 + 8;

/// Wraps a payload in the snapshot container (magic, version, length,
/// payload, checksum).
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + OVERHEAD);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(FNV_OFFSET, payload).to_le_bytes());
    out
}

/// Validates the container and returns the payload slice.
pub(crate) fn unframe(bytes: &[u8]) -> Result<&[u8], SnapError> {
    if bytes.len() < OVERHEAD {
        return Err(SnapError::new(format!(
            "truncated snapshot: {} bytes, need at least {OVERHEAD}",
            bytes.len()
        )));
    }
    if &bytes[..8] != MAGIC {
        return Err(SnapError::new("not a FACSNAP snapshot (bad magic)".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapError::new(format!(
            "unsupported snapshot version {version} (this build reads version {VERSION})"
        )));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let expected = (bytes.len() - OVERHEAD) as u64;
    if len != expected {
        return Err(SnapError::new(format!(
            "snapshot length mismatch: header claims {len} payload bytes, file holds {expected}"
        )));
    }
    let payload = &bytes[20..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let computed = fnv1a(FNV_OFFSET, payload);
    if stored != computed {
        return Err(SnapError::new(format!(
            "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(payload)
}

/// FNV-1a digest of the machine configuration's canonical rendering. The
/// configuration is plain `Copy` data (no maps), so its `Debug` output is
/// deterministic and captures every timing-relevant knob.
///
/// Public because the campaign server keys its content-addressed result
/// cache on (configuration fingerprint × program fingerprint) — the same
/// identities the checkpoint frames verify on restore.
pub fn config_fingerprint(config: &crate::MachineConfig) -> u64 {
    fnv1a(FNV_OFFSET, format!("{config:?}").as_bytes())
}

/// FNV-1a digest of the program identity: name, layout registers, every
/// instruction and every data blob. Symbol tables are deliberately
/// excluded (their map order is not canonical, and they do not affect
/// execution).
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, program.name.as_bytes());
    for word in [
        program.text_base,
        program.entry,
        program.gp,
        program.sp,
        program.heap_base,
    ] {
        h = fnv1a(h, &word.to_le_bytes());
    }
    h = fnv1a(h, &program.static_bytes.to_le_bytes());
    h = fnv1a(h, &(program.text.len() as u64).to_le_bytes());
    for insn in &program.text {
        h = fnv1a(h, format!("{insn:?}").as_bytes());
    }
    h = fnv1a(h, &(program.data.len() as u64).to_le_bytes());
    for blob in &program.data {
        h = fnv1a(h, format!("{blob:?}").as_bytes());
    }
    h
}

/// Wraps a purely architectural state in a full machine snapshot — the
/// hand-off from the fast functional tier ([`crate::tier`]) to the
/// detailed pipeline. The payload is byte-compatible with
/// [`crate::Session::checkpoint`]: the architectural registers and memory
/// come from `state`, while every timing structure (pipeline, statistics,
/// invariant checker) is written *fresh*, exactly as [`crate::Machine::begin`]
/// would build it. Restoring the result with [`crate::Machine::restore`]
/// therefore yields a detailed session that starts timing from a cold
/// pipeline at `state`'s program point, with zeroed statistics — so a
/// measurement window's CPI is purely the window's own work.
///
/// The caller is responsible for `state.strict_mem` matching
/// `config.strict_mem` (the fast tier guarantees this by construction);
/// the fingerprints guard config/program identity as for any snapshot.
pub fn functional_snapshot(
    config: &MachineConfig,
    program: &Program,
    state: &ArchState,
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u64(config_fingerprint(config));
    w.u64(program_fingerprint(program));
    state.save_state(&mut w);
    save_stats(&SimStats::default(), &mut w);
    Pipeline::new(*config).save_state(&mut w);
    // Always carry fresh checker state: a checking machine (debug builds,
    // --checks) requires it, and a non-checking machine skips past it.
    w.u8(1);
    InvariantChecker::new(config).save_state(&mut w);
    frame(&w.into_bytes())
}

fn save_cache_stats(s: &CacheStats, w: &mut SnapWriter) {
    w.u64(s.accesses);
    w.u64(s.reads);
    w.u64(s.writes);
    w.u64(s.misses);
    w.u64(s.read_misses);
    w.u64(s.writebacks);
}

fn load_cache_stats(r: &mut SnapReader<'_>) -> Result<CacheStats, SnapError> {
    Ok(CacheStats {
        accesses: r.u64("cache stats accesses")?,
        reads: r.u64("cache stats reads")?,
        writes: r.u64("cache stats writes")?,
        misses: r.u64("cache stats misses")?,
        read_misses: r.u64("cache stats read_misses")?,
        writebacks: r.u64("cache stats writebacks")?,
    })
}

/// Serializes every statistics counter.
pub(crate) fn save_stats(s: &SimStats, w: &mut SnapWriter) {
    w.u64(s.insts);
    w.u64(s.cycles);
    w.u64(s.loads);
    w.u64(s.stores);
    for v in s.loads_by_class {
        w.u64(v);
    }
    for v in s.stores_by_class {
        w.u64(v);
    }
    w.u64(s.loads_reg_reg);
    for h in &s.load_offsets {
        w.u64(h.neg);
        for v in h.by_bits {
            w.u64(v);
        }
        w.u64(h.more);
    }
    w.u64(s.branches);
    w.u64(s.branch_mispredicts);
    for p in [&s.pred_loads, &s.pred_stores] {
        w.u64(p.attempts_const);
        w.u64(p.fails_const);
        w.u64(p.attempts_rr);
        w.u64(p.fails_rr);
        w.u64(p.not_speculated);
    }
    for v in s.fail_causes {
        w.u64(v);
    }
    w.u64(s.verify_catches);
    w.u64(s.extra_accesses);
    w.u64(s.store_buffer_stalls);
    save_cache_stats(&s.icache, w);
    save_cache_stats(&s.dcache, w);
    match &s.tlb {
        None => w.bool(false),
        Some(t) => {
            w.bool(true);
            w.u64(t.accesses);
            w.u64(t.misses);
        }
    }
    match &s.ltb {
        None => w.bool(false),
        Some(l) => {
            w.bool(true);
            w.u64(l.predictions);
            w.u64(l.correct);
            w.u64(l.no_prediction);
        }
    }
    w.u64(s.mem_footprint);
}

/// Restores [`save_stats`].
pub(crate) fn load_stats(r: &mut SnapReader<'_>) -> Result<SimStats, SnapError> {
    let mut s = SimStats {
        insts: r.u64("stats insts")?,
        cycles: r.u64("stats cycles")?,
        loads: r.u64("stats loads")?,
        stores: r.u64("stats stores")?,
        ..SimStats::default()
    };
    for v in &mut s.loads_by_class {
        *v = r.u64("stats loads_by_class")?;
    }
    for v in &mut s.stores_by_class {
        *v = r.u64("stats stores_by_class")?;
    }
    s.loads_reg_reg = r.u64("stats loads_reg_reg")?;
    for h in &mut s.load_offsets {
        h.neg = r.u64("offset histogram neg")?;
        for v in &mut h.by_bits {
            *v = r.u64("offset histogram bucket")?;
        }
        h.more = r.u64("offset histogram more")?;
    }
    s.branches = r.u64("stats branches")?;
    s.branch_mispredicts = r.u64("stats branch_mispredicts")?;
    for p in [&mut s.pred_loads, &mut s.pred_stores] {
        p.attempts_const = r.u64("pred attempts_const")?;
        p.fails_const = r.u64("pred fails_const")?;
        p.attempts_rr = r.u64("pred attempts_rr")?;
        p.fails_rr = r.u64("pred fails_rr")?;
        p.not_speculated = r.u64("pred not_speculated")?;
    }
    for v in &mut s.fail_causes {
        *v = r.u64("stats fail_causes")?;
    }
    s.verify_catches = r.u64("stats verify_catches")?;
    s.extra_accesses = r.u64("stats extra_accesses")?;
    s.store_buffer_stalls = r.u64("stats store_buffer_stalls")?;
    s.icache = load_cache_stats(r)?;
    s.dcache = load_cache_stats(r)?;
    s.tlb = if r.bool("tlb stats present")? {
        Some(TlbStats { accesses: r.u64("tlb stats accesses")?, misses: r.u64("tlb stats misses")? })
    } else {
        None
    };
    s.ltb = if r.bool("ltb stats present")? {
        Some(fac_core::LtbStats {
            predictions: r.u64("ltb stats predictions")?,
            correct: r.u64("ltb stats correct")?,
            no_prediction: r.u64("ltb stats no_prediction")?,
        })
    } else {
        None
    };
    s.mem_footprint = r.u64("stats mem_footprint")?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let payload = b"hello snapshot".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let framed = frame(&[]);
        assert_eq!(unframe(&framed).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let framed = frame(b"payload bytes here");
        for n in 0..framed.len() {
            assert!(unframe(&framed[..n]).is_err(), "prefix of {n} bytes accepted");
        }
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let framed = frame(b"sensitive machine state");
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            assert!(unframe(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut framed = frame(b"x");
        framed[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = unframe(&framed).unwrap_err();
        assert!(err.to_string().contains("version"), "got {err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut framed = frame(b"x");
        framed.push(0);
        assert!(unframe(&framed).is_err());
    }

    #[test]
    fn stats_roundtrip() {
        let mut s = SimStats { insts: 7, cycles: 11, loads: 3, ..SimStats::default() };
        s.load_offsets[1].record(42);
        s.tlb = Some(TlbStats { accesses: 5, misses: 2 });
        s.ltb = Some(fac_core::LtbStats { predictions: 9, correct: 8, no_prediction: 1 });
        let mut w = SnapWriter::new();
        save_stats(&s, &mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = load_stats(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }
}
