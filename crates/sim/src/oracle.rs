//! The golden reference oracle and the lockstep differential checker.
//!
//! The paper's safety claim — speculative cache access behind fast address
//! calculation is *architecturally invisible* — deserves machine-checked
//! ground truth, not just reviewed code. This module provides it in two
//! layers:
//!
//! * [`Oracle`]: a deliberately simple, non-pipelined, non-speculative
//!   interpreter over `fac-isa` programs. It shares **no execution code**
//!   with `exec.rs`/`pipeline.rs` — only the instruction definitions — and
//!   keeps its own independent paged memory ([`GoldenMem`]). Anything the
//!   two executors disagree on is a bug in one of them, by construction.
//! * [`Lockstep`]: runs the full [`Machine`](crate::Machine) (functional
//!   executor **and** timing pipeline, including any
//!   [`FaultPlan`](fac_core::FaultPlan) under test) side by side with the
//!   oracle, comparing the complete architectural state after every
//!   retired instruction and the touched memory at halt. The *first*
//!   mismatch surfaces as [`SimError::Divergence`] with a readable diff.
//!
//! Both executors run under the same watchdog step budget, so a program
//! that never halts becomes [`SimError::Runaway`] instead of a hang — a
//! property the fuzz harness in `fac-bench` depends on.

use crate::config::MachineConfig;
use crate::exec::{ArchState, ExecError};
use crate::machine::{check_budget, record_ref, SimError, SimReport};
use crate::obs::{NullObserver, Observer};
use crate::pipeline::Pipeline;
use crate::stats::SimStats;
use fac_asm::Program;
use fac_core::{AddrFields, FaultPlan, FaultyPredictor, Predictor};
use fac_isa::{
    AddrMode, AluImmOp, AluOp, BranchCond, FReg, FpCond, FpFmt, FpOp, Insn, LoadOp, MulDivOp,
    Reg, ShiftOp,
};
use std::collections::HashMap;

/// Page granule of the golden memory. Deliberately different from the main
/// simulator's page size so a paging bug in either store cannot mask the
/// same bug in the other.
const GOLD_PAGE: u32 = 1024;

/// The oracle's private sparse byte store: little-endian, zero on untouched
/// reads, independent of `fac_mem::Memory`.
#[derive(Debug, Clone, Default)]
pub struct GoldenMem {
    pages: HashMap<u32, Box<[u8; GOLD_PAGE as usize]>>,
}

impl GoldenMem {
    /// An empty memory.
    pub fn new() -> GoldenMem {
        GoldenMem::default()
    }

    /// One byte (zero if the page was never written).
    pub fn byte(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr / GOLD_PAGE)) {
            Some(page) => page[(addr % GOLD_PAGE) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    pub fn set_byte(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr / GOLD_PAGE)
            .or_insert_with(|| Box::new([0u8; GOLD_PAGE as usize]));
        page[(addr % GOLD_PAGE) as usize] = value;
    }

    /// A little-endian read of `size` (1, 2, 4 or 8) bytes, composed
    /// byte-wise so unaligned and page-straddling accesses need no special
    /// cases — the same lenient semantics the main simulator models.
    pub fn read(&self, addr: u32, size: u32) -> u64 {
        let mut v = 0u64;
        for i in (0..size).rev() {
            v = (v << 8) | u64::from(self.byte(addr.wrapping_add(i)));
        }
        v
    }

    /// The little-endian write matching [`GoldenMem::read`].
    pub fn write(&mut self, addr: u32, size: u32, value: u64) {
        for i in 0..size {
            self.set_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Bulk image load (used for the program's data segment).
    pub fn load(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.set_byte(addr.wrapping_add(i as u32), b);
        }
    }

    /// Iterates every allocated page as `(base_address, bytes)`, in
    /// unspecified order.
    pub fn pages(&self) -> impl Iterator<Item = (u32, &[u8; GOLD_PAGE as usize])> {
        self.pages.iter().map(|(idx, page)| (idx * GOLD_PAGE, page.as_ref()))
    }
}

/// The memory effect of one retired oracle instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenStore {
    /// Effective address of the store.
    pub addr: u32,
    /// Bytes written.
    pub size: u32,
    /// The value written (zero-extended into 64 bits).
    pub value: u64,
}

/// One entry of the oracle's retirement-ordered architectural trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldenStep {
    /// PC of the retired instruction.
    pub pc: u32,
    /// The instruction itself.
    pub insn: Insn,
    /// PC after the instruction (fall-through or taken target).
    pub next_pc: u32,
    /// The store effect, if the instruction was a store.
    pub store: Option<GoldenStore>,
}

/// The golden reference interpreter: one instruction per step, no pipeline,
/// no speculation, no cache — architectural semantics only.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Program counter.
    pub pc: u32,
    /// Integer register file (`regs[0]` pinned to zero).
    pub regs: [u32; 32],
    /// FP register file, raw bits.
    pub fregs: [u64; 32],
    /// HI register.
    pub hi: u32,
    /// LO register.
    pub lo: u32,
    /// FP condition flag.
    pub fcc: bool,
    /// The oracle's own memory.
    pub mem: GoldenMem,
    /// Set by `halt`.
    pub halted: bool,
}

impl Oracle {
    /// Initial state for `program`: data image loaded, `$gp`/`$sp` set, PC
    /// at the entry point.
    pub fn new(program: &Program) -> Oracle {
        let mut mem = GoldenMem::new();
        for blob in &program.data {
            mem.load(blob.addr, &blob.bytes);
        }
        let mut regs = [0u32; 32];
        regs[Reg::GP.index()] = program.gp;
        regs[Reg::SP.index()] = program.sp;
        Oracle {
            pc: program.entry,
            regs,
            fregs: [0u64; 32],
            hi: 0,
            lo: 0,
            fcc: false,
            mem,
            halted: false,
        }
    }

    /// Retires one instruction.
    ///
    /// # Errors
    ///
    /// [`SimError::Exec`] with `BadPc` when the PC leaves the text segment.
    pub fn step(&mut self, program: &Program) -> Result<GoldenStep, SimError> {
        let insn = match program.insn_index(self.pc) {
            Some(idx) => program.text[idx],
            None => return Err(SimError::Exec(ExecError::BadPc(self.pc))),
        };
        let pc = self.pc;
        let eff = exec_insn(self, pc, insn).map_err(SimError::Exec)?;
        self.pc = eff.next_pc;
        Ok(GoldenStep { pc, insn, next_pc: eff.next_pc, store: eff.store })
    }

    /// Runs `program` to halt under a watchdog budget, returning the number
    /// of retired instructions.
    ///
    /// # Errors
    ///
    /// [`SimError::Runaway`] when `max_steps` instructions retire without a
    /// halt; [`SimError::Exec`] when the PC leaves the text segment.
    pub fn run(&mut self, program: &Program, max_steps: u64) -> Result<u64, SimError> {
        let mut steps = 0u64;
        while !self.halted {
            check_budget(steps, max_steps)?;
            self.step(program)?;
            steps += 1;
        }
        Ok(steps)
    }
}

/// The architectural register file and memory an [`exec_insn`] call reads
/// and writes — everything instruction semantics need, nothing an executor
/// is free to represent its own way.
///
/// Two independent cores implement this: the [`Oracle`] over its private
/// [`GoldenMem`], and the fast functional tier in [`crate::tier`] over the
/// main simulator's [`ArchState`]. Both therefore retire every instruction
/// through the *same* semantics function, so "the fast tier computes what
/// the oracle computes" holds by construction, while the detailed
/// pipeline's executor (`exec.rs`) remains fully independent code for the
/// differential checks to bite on.
pub trait ExecCore {
    /// Reads an integer register (`$zero` reads 0).
    fn reg(&self, r: Reg) -> u32;
    /// Writes an integer register (writes to `$zero` are dropped).
    fn set_reg(&mut self, r: Reg, v: u32);
    /// Reads an FP register's raw bits.
    fn freg(&self, f: FReg) -> u64;
    /// Writes an FP register's raw bits.
    fn set_freg(&mut self, f: FReg, v: u64);
    /// Reads HI.
    fn hi(&self) -> u32;
    /// Writes HI.
    fn set_hi(&mut self, v: u32);
    /// Reads LO.
    fn lo(&self) -> u32;
    /// Writes LO.
    fn set_lo(&mut self, v: u32);
    /// Reads the FP condition flag.
    fn fcc(&self) -> bool;
    /// Writes the FP condition flag.
    fn set_fcc(&mut self, v: bool);
    /// Marks the core halted (the `halt` instruction).
    fn halt(&mut self);
    /// Loads `size` bytes (1, 2, 4 or 8) at `addr`, zero-extended and
    /// little-endian. `pc` is the faulting instruction for strict-memory
    /// traps; the lenient oracle never fails.
    ///
    /// # Errors
    ///
    /// A strict-memory core returns [`ExecError::Misaligned`] or
    /// [`ExecError::Unmapped`].
    fn load(&mut self, pc: u32, addr: u32, size: u32) -> Result<u64, ExecError>;
    /// Stores the low `size` bytes of `value` at `addr`, little-endian.
    ///
    /// # Errors
    ///
    /// A strict-memory core returns [`ExecError::Misaligned`].
    fn store(&mut self, pc: u32, addr: u32, size: u32, value: u64) -> Result<(), ExecError>;
}

/// What [`exec_insn`] tells its caller beyond the state updates it already
/// applied: where control goes next, and the store effect (for lockstep
/// memory comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEffect {
    /// PC after the instruction (fall-through or taken target).
    pub next_pc: u32,
    /// The memory write, if the instruction was a store.
    pub store: Option<GoldenStore>,
}

/// Effective address and optional post-update of an addressing mode.
fn address<C: ExecCore>(core: &C, ea: AddrMode) -> (u32, Option<(Reg, u32)>) {
    match ea {
        AddrMode::BaseDisp { base, disp } => {
            let a = (i64::from(core.reg(base)) + i64::from(disp)) as u32;
            (a, None)
        }
        AddrMode::BaseIndex { base, index } => {
            let a = (i64::from(core.reg(base)) + i64::from(core.reg(index))) as u32;
            (a, None)
        }
        AddrMode::PostInc { base, step } => {
            let b = core.reg(base);
            let updated = (i64::from(b) + i64::from(step)) as u32;
            (b, Some((base, updated)))
        }
    }
}

/// Executes one instruction against `core`: the single architectural
/// semantics shared by the [`Oracle`] and the fast functional tier
/// ([`crate::tier`]). The caller owns instruction fetch (it knows where
/// `insn` came from) and the PC update (it knows how it tracks control
/// flow); this function applies every register, flag, and memory effect
/// and reports the successor PC.
///
/// # Errors
///
/// Whatever the core's [`ExecCore::load`] / [`ExecCore::store`] return —
/// strict-memory traps surface here, before any architectural update from
/// the faulting instruction is applied.
pub fn exec_insn<C: ExecCore>(core: &mut C, pc: u32, insn: Insn) -> Result<ExecEffect, ExecError> {
    let fall = pc.wrapping_add(4);
    let mut next = fall;
    let mut store = None;
    let branch_target = |off: i16| fall.wrapping_add((i32::from(off) as u32) << 2);

    match insn {
        Insn::Nop => {}
        Insn::Halt => core.halt(),
        Insn::Alu { op, rd, rs, rt } => {
            let (a, b) = (core.reg(rs), core.reg(rt));
            let v = match op {
                AluOp::Add | AluOp::Addu => (i64::from(a) + i64::from(b)) as u32,
                AluOp::Sub | AluOp::Subu => (i64::from(a) - i64::from(b)) as u32,
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Nor => !(a | b),
                AluOp::Slt => u32::from((a as i32) < (b as i32)),
                AluOp::Sltu => u32::from(a < b),
                AluOp::Sllv => b << (a & 31),
                AluOp::Srlv => b >> (a & 31),
                AluOp::Srav => ((b as i32) >> (a & 31)) as u32,
            };
            core.set_reg(rd, v);
        }
        Insn::AluImm { op, rt, rs, imm } => {
            let a = core.reg(rs);
            let v = match op {
                AluImmOp::Addi | AluImmOp::Addiu => (i64::from(a) + i64::from(imm)) as u32,
                AluImmOp::Slti => u32::from((a as i32) < i32::from(imm)),
                AluImmOp::Sltiu => u32::from(a < (i32::from(imm) as u32)),
                AluImmOp::Andi => a & u32::from(imm as u16),
                AluImmOp::Ori => a | u32::from(imm as u16),
                AluImmOp::Xori => a ^ u32::from(imm as u16),
            };
            core.set_reg(rt, v);
        }
        Insn::Shift { op, rd, rt, shamt } => {
            let b = core.reg(rt);
            let s = u32::from(shamt) & 31;
            let v = match op {
                ShiftOp::Sll => b << s,
                ShiftOp::Srl => b >> s,
                ShiftOp::Sra => ((b as i32) >> s) as u32,
            };
            core.set_reg(rd, v);
        }
        Insn::Lui { rt, imm } => core.set_reg(rt, u32::from(imm) << 16),
        Insn::MulDiv { op, rs, rt } => {
            let (a, b) = (core.reg(rs), core.reg(rt));
            let (hi, lo) = match op {
                MulDivOp::Mult => {
                    let p = i64::from(a as i32) * i64::from(b as i32);
                    (((p as u64) >> 32) as u32, p as u32)
                }
                MulDivOp::Multu => {
                    let p = u64::from(a) * u64::from(b);
                    ((p >> 32) as u32, p as u32)
                }
                MulDivOp::Div => {
                    if b == 0 {
                        (0, 0)
                    } else {
                        let (sa, sb) = (a as i32, b as i32);
                        (sa.wrapping_rem(sb) as u32, sa.wrapping_div(sb) as u32)
                    }
                }
                MulDivOp::Divu => {
                    if b == 0 {
                        (0, 0)
                    } else {
                        (a % b, a / b)
                    }
                }
            };
            core.set_hi(hi);
            core.set_lo(lo);
        }
        Insn::Mfhi { rd } => {
            let v = core.hi();
            core.set_reg(rd, v);
        }
        Insn::Mflo { rd } => {
            let v = core.lo();
            core.set_reg(rd, v);
        }
        Insn::Load { op, rt, ea } => {
            let (addr, post) = address(core, ea);
            let raw = core.load(pc, addr, op.size())?;
            let v = match op {
                LoadOp::Lb => i32::from(raw as u8 as i8) as u32,
                LoadOp::Lbu => raw as u32,
                LoadOp::Lh => i32::from(raw as u16 as i16) as u32,
                LoadOp::Lhu => raw as u32,
                LoadOp::Lw => raw as u32,
            };
            core.set_reg(rt, v);
            if let Some((base, updated)) = post {
                core.set_reg(base, updated);
            }
        }
        Insn::Store { op, rt, ea } => {
            let (addr, post) = address(core, ea);
            let size = op.size();
            let value = u64::from(core.reg(rt)) & (u64::MAX >> (64 - 8 * size));
            core.store(pc, addr, size, value)?;
            if let Some((base, updated)) = post {
                core.set_reg(base, updated);
            }
            store = Some(GoldenStore { addr, size, value });
        }
        Insn::LoadFp { fmt, ft, ea } => {
            let (addr, post) = address(core, ea);
            let raw = core.load(pc, addr, fmt.size())?;
            core.set_freg(ft, raw);
            if let Some((base, updated)) = post {
                core.set_reg(base, updated);
            }
        }
        Insn::StoreFp { fmt, ft, ea } => {
            let (addr, post) = address(core, ea);
            let size = fmt.size();
            let value = match fmt {
                FpFmt::S => u64::from(core.freg(ft) as u32),
                FpFmt::D => core.freg(ft),
            };
            core.store(pc, addr, size, value)?;
            if let Some((base, updated)) = post {
                core.set_reg(base, updated);
            }
            store = Some(GoldenStore { addr, size, value });
        }
        Insn::Fp { op, fmt, fd, fs, ft } => match fmt {
            FpFmt::D => {
                let a = f64::from_bits(core.freg(fs));
                let b = f64::from_bits(core.freg(ft));
                core.set_freg(fd, fp_op(op, a, b).to_bits());
            }
            FpFmt::S => {
                let a = f32::from_bits(core.freg(fs) as u32);
                let b = f32::from_bits(core.freg(ft) as u32);
                core.set_freg(fd, u64::from(fp_op32(op, a, b).to_bits()));
            }
        },
        Insn::FpCmp { cond, fmt, fs, ft } => {
            let (a, b) = match fmt {
                FpFmt::D => (f64::from_bits(core.freg(fs)), f64::from_bits(core.freg(ft))),
                FpFmt::S => (
                    f64::from(f32::from_bits(core.freg(fs) as u32)),
                    f64::from(f32::from_bits(core.freg(ft) as u32)),
                ),
            };
            core.set_fcc(match cond {
                FpCond::Eq => a == b,
                FpCond::Lt => a < b,
                FpCond::Le => a <= b,
            });
        }
        Insn::Bc1 { on_true, off } => {
            if core.fcc() == on_true {
                next = branch_target(off);
            }
        }
        Insn::Mtc1 { rt, fs } => {
            let v = u64::from(core.reg(rt));
            core.set_freg(fs, v);
        }
        Insn::Mfc1 { rt, fs } => {
            let bits = core.freg(fs) as u32;
            core.set_reg(rt, bits);
        }
        Insn::CvtFromW { fmt, fd, fs } => {
            let w = core.freg(fs) as u32 as i32;
            let v = match fmt {
                FpFmt::D => f64::from(w).to_bits(),
                FpFmt::S => u64::from((w as f32).to_bits()),
            };
            core.set_freg(fd, v);
        }
        Insn::TruncToW { fmt, fd, fs } => {
            let v = match fmt {
                FpFmt::D => f64::from_bits(core.freg(fs)),
                FpFmt::S => f64::from(f32::from_bits(core.freg(fs) as u32)),
            };
            core.set_freg(fd, u64::from((v as i32) as u32));
        }
        Insn::Branch { cond, rs, rt, off } => {
            let (a, b) = (core.reg(rs), core.reg(rt));
            let taken = match cond {
                BranchCond::Eq => a == b,
                BranchCond::Ne => a != b,
                BranchCond::Lez => (a as i32) <= 0,
                BranchCond::Gtz => (a as i32) > 0,
                BranchCond::Ltz => (a as i32) < 0,
                BranchCond::Gez => (a as i32) >= 0,
            };
            if taken {
                next = branch_target(off);
            }
        }
        Insn::J { target } => next = target << 2,
        Insn::Jal { target } => {
            core.set_reg(Reg::RA, fall);
            next = target << 2;
        }
        Insn::Jr { rs } => next = core.reg(rs),
        Insn::Jalr { rd, rs } => {
            let t = core.reg(rs);
            core.set_reg(rd, fall);
            next = t;
        }
    }

    Ok(ExecEffect { next_pc: next, store })
}

impl ExecCore for Oracle {
    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    fn freg(&self, f: FReg) -> u64 {
        self.fregs[f.index()]
    }

    fn set_freg(&mut self, f: FReg, v: u64) {
        self.fregs[f.index()] = v;
    }

    fn hi(&self) -> u32 {
        self.hi
    }

    fn set_hi(&mut self, v: u32) {
        self.hi = v;
    }

    fn lo(&self) -> u32 {
        self.lo
    }

    fn set_lo(&mut self, v: u32) {
        self.lo = v;
    }

    fn fcc(&self) -> bool {
        self.fcc
    }

    fn set_fcc(&mut self, v: bool) {
        self.fcc = v;
    }

    fn halt(&mut self) {
        self.halted = true;
    }

    fn load(&mut self, _pc: u32, addr: u32, size: u32) -> Result<u64, ExecError> {
        Ok(self.mem.read(addr, size))
    }

    fn store(&mut self, _pc: u32, addr: u32, size: u32, value: u64) -> Result<(), ExecError> {
        self.mem.write(addr, size, value);
        Ok(())
    }
}

fn fp_op(op: FpOp, a: f64, b: f64) -> f64 {
    match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
        FpOp::Abs => a.abs(),
        FpOp::Neg => -a,
        FpOp::Mov => a,
        FpOp::Sqrt => a.sqrt(),
    }
}

fn fp_op32(op: FpOp, a: f32, b: f32) -> f32 {
    match op {
        FpOp::Add => a + b,
        FpOp::Sub => a - b,
        FpOp::Mul => a * b,
        FpOp::Div => a / b,
        FpOp::Abs => a.abs(),
        FpOp::Neg => -a,
        FpOp::Mov => a,
        FpOp::Sqrt => a.sqrt(),
    }
}

/// The lockstep differential checker: the full machine and the oracle, one
/// instruction at a time, with the complete architectural state compared at
/// every retirement.
///
/// ```
/// use fac_asm::{Asm, SoftwareSupport};
/// use fac_isa::Reg;
/// use fac_sim::{Lockstep, MachineConfig};
///
/// let mut a = Asm::new();
/// a.gp_word("x", 20);
/// a.lw_gp(Reg::T0, "x", 0);
/// a.addiu(Reg::T0, Reg::T0, 22);
/// a.sw_gp(Reg::T0, "x", 0);
/// a.halt();
/// let program = a.link("demo", &SoftwareSupport::on()).unwrap();
///
/// let report = Lockstep::new(MachineConfig::paper_baseline().with_fac())
///     .run(&program)
///     .unwrap();
/// assert_eq!(report.final_state.regs[Reg::T0.index()], 42);
/// ```
#[derive(Debug, Clone)]
pub struct Lockstep {
    config: MachineConfig,
    max_insts: u64,
    escape: Option<FaultPlan>,
}

impl Lockstep {
    /// A lockstep run of the machine described by `config` against the
    /// oracle, with the default watchdog budget.
    pub fn new(config: MachineConfig) -> Lockstep {
        Lockstep { config, max_insts: 2_000_000_000, escape: None }
    }

    /// Caps both executors at `max` retired instructions
    /// ([`SimError::Runaway`] past that).
    pub fn with_max_insts(mut self, max: u64) -> Lockstep {
        self.max_insts = max;
        self
    }

    /// Sabotage mode for self-testing the checker: model a broken pipeline
    /// whose *verification circuit is disconnected*, so a speculated load
    /// whose fault plan mispredicts silently retires the value read at the
    /// **predicted** (wrong) address. A sound verification path makes this
    /// state unreachable — [`Lockstep::run`] under this mode must therefore
    /// report [`SimError::Divergence`], and a checker that stays silent is
    /// itself broken.
    pub fn with_escaped_speculation(mut self, plan: FaultPlan) -> Lockstep {
        self.escape = Some(plan);
        self
    }

    /// The watchdog budget.
    pub fn max_insts(&self) -> u64 {
        self.max_insts
    }

    /// Runs machine and oracle in lockstep. On success the report is the
    /// machine's own (timing statistics included), so `--oracle` runs
    /// compose with all existing reporting.
    ///
    /// # Errors
    ///
    /// Everything [`crate::Machine::run`] can return, plus
    /// [`SimError::Divergence`] at the first architectural mismatch.
    pub fn run(&self, program: &Program) -> Result<SimReport, SimError> {
        self.run_observed(program, &mut NullObserver)
    }

    /// [`Lockstep::run`] with a live [`Observer`] on the machine side (the
    /// oracle is invisible to observers — it has no timing to report).
    ///
    /// # Errors
    ///
    /// Same as [`Lockstep::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.config.validate()?;
        let mut state = ArchState::new(program);
        state.strict_mem = self.config.strict_mem;
        let mut pipe = Pipeline::new(self.config);
        let mut stats = SimStats::default();
        let mut oracle = Oracle::new(program);
        let mut saboteur = self.escape.map(|plan| {
            let fields = AddrFields::for_set_associative(
                self.config.dcache.size_bytes,
                self.config.dcache.block_bytes,
                self.config.dcache.ways,
            );
            let pred_cfg = self.config.fac.map(|f| f.predictor).unwrap_or_default();
            FaultyPredictor::new(Predictor::new(fields, pred_cfg), plan)
        });

        while !state.halted {
            check_budget(stats.insts, self.max_insts)?;
            let step = stats.insts;
            let ex = state.step(program)?;
            if let Some(fp) = &mut saboteur {
                escape_speculation(fp, &mut state, &ex);
            }
            let gold = oracle.step(program)?;
            stats.insts += 1;
            record_ref(&mut stats, &ex);
            compare_step(step, &state, &ex, &oracle, &gold)?;
            pipe.advance_obs(&ex, &mut stats, obs);
        }

        if !oracle.halted {
            return Err(SimError::Divergence {
                step: stats.insts,
                pc: oracle.pc,
                expected: "oracle still running".into(),
                actual: "machine halted".into(),
            });
        }
        compare_memory(stats.insts, &state, &oracle)?;

        stats.cycles = pipe.finish(&mut stats);
        stats.mem_footprint = state.mem.footprint();
        Ok(SimReport { program: program.name.clone(), stats, final_state: state })
    }
}

/// Models escaped speculation (see [`Lockstep::with_escaped_speculation`]):
/// when the faulted predictor claims success on a wrong predicted address,
/// the machine's destination register silently receives the data at that
/// wrong address.
fn escape_speculation(fp: &mut FaultyPredictor, state: &mut ArchState, ex: &crate::Executed) {
    let Some(mref) = &ex.mem else { return };
    if mref.is_store || !fp.should_speculate(mref.offset, false) {
        return;
    }
    let pred = fp.predict(mref.base_value, mref.offset);
    if pred.signals.any() || pred.predicted == pred.actual {
        return; // flagged for replay, or coincidentally right: no escape
    }
    let Insn::Load { op, rt, ea } = ex.insn else { return };
    if let AddrMode::PostInc { base, .. } = ea {
        if base == rt {
            return; // the post-update overwrote the loaded value anyway
        }
    }
    let wrong = match op {
        LoadOp::Lb => state.mem.read_u8(pred.predicted) as i8 as i32 as u32,
        LoadOp::Lbu => u32::from(state.mem.read_u8(pred.predicted)),
        LoadOp::Lh => state.mem.read_u16(pred.predicted) as i16 as i32 as u32,
        LoadOp::Lhu => u32::from(state.mem.read_u16(pred.predicted)),
        LoadOp::Lw => state.mem.read_u32(pred.predicted),
    };
    if !rt.is_zero() {
        state.regs[rt.index()] = wrong;
    }
}

/// Builds the divergence error for one mismatched quantity.
pub(crate) fn diverged<T: std::fmt::LowerHex>(
    step: u64,
    pc: u32,
    what: impl std::fmt::Display,
    expected: T,
    actual: T,
) -> SimError {
    SimError::Divergence {
        step,
        pc,
        expected: format!("{what} = {expected:#010x}"),
        actual: format!("{what} = {actual:#010x}"),
    }
}

/// Compares the full architectural state after one lockstep retirement.
fn compare_step(
    step: u64,
    state: &ArchState,
    ex: &crate::Executed,
    oracle: &Oracle,
    gold: &GoldenStep,
) -> Result<(), SimError> {
    let pc = gold.pc;
    if ex.pc != gold.pc {
        return Err(diverged(step, pc, "retired pc", gold.pc, ex.pc));
    }
    if ex.insn != gold.insn {
        return Err(SimError::Divergence {
            step,
            pc,
            expected: format!("insn `{}`", gold.insn),
            actual: format!("insn `{}`", ex.insn),
        });
    }
    if let Some(st) = &gold.store {
        let machine_wrote = state.mem.read_bytes(st.addr, st.size as usize);
        let oracle_wrote: Vec<u8> =
            (0..st.size).map(|i| oracle.mem.byte(st.addr.wrapping_add(i))).collect();
        if machine_wrote != oracle_wrote {
            return Err(SimError::Divergence {
                step,
                pc,
                expected: format!("mem[{:#010x};{}] = {:02x?}", st.addr, st.size, oracle_wrote),
                actual: format!("mem[{:#010x};{}] = {:02x?}", st.addr, st.size, machine_wrote),
            });
        }
        match &ex.mem {
            Some(m) if m.is_store => {
                if m.addr != st.addr {
                    return Err(diverged(step, pc, "store address", st.addr, m.addr));
                }
            }
            _ => {
                return Err(SimError::Divergence {
                    step,
                    pc,
                    expected: format!("a store to {:#010x}", st.addr),
                    actual: "no store effect".into(),
                });
            }
        }
    }
    for i in 1..32 {
        if state.regs[i] != oracle.regs[i] {
            return Err(diverged(step, pc, Reg::new(i as u8), oracle.regs[i], state.regs[i]));
        }
    }
    for i in 0..32 {
        if state.fregs[i] != oracle.fregs[i] {
            return Err(diverged(
                step,
                pc,
                fac_isa::FReg::new(i as u8),
                oracle.fregs[i],
                state.fregs[i],
            ));
        }
    }
    if state.hi != oracle.hi {
        return Err(diverged(step, pc, "hi", oracle.hi, state.hi));
    }
    if state.lo != oracle.lo {
        return Err(diverged(step, pc, "lo", oracle.lo, state.lo));
    }
    if state.fcc != oracle.fcc {
        return Err(SimError::Divergence {
            step,
            pc,
            expected: format!("fcc = {}", oracle.fcc),
            actual: format!("fcc = {}", state.fcc),
        });
    }
    if state.pc != oracle.pc {
        return Err(diverged(step, pc, "next pc", oracle.pc, state.pc));
    }
    Ok(())
}

/// Final sweep at halt: every byte the oracle's memory holds must read back
/// identically from the machine's memory. (The converse needs no sweep —
/// every machine store was already matched against the oracle's at
/// retirement.)
pub(crate) fn compare_memory(step: u64, state: &ArchState, oracle: &Oracle) -> Result<(), SimError> {
    for (base, page) in oracle.mem.pages() {
        for (i, &want) in page.iter().enumerate() {
            let addr = base.wrapping_add(i as u32);
            let got = state.mem.read_u8(addr);
            if got != want {
                return Err(SimError::Divergence {
                    step,
                    pc: state.pc,
                    expected: format!("final mem[{addr:#010x}] = {want:#04x}"),
                    actual: format!("final mem[{addr:#010x}] = {got:#04x}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_asm::{Asm, SoftwareSupport};
    use fac_core::FaultKind;

    fn sum_program() -> Program {
        let mut a = Asm::new();
        a.gp_array("data", 256, 4);
        a.gp_word("checksum", 0);
        a.gp_addr(Reg::S0, "data", 0);
        a.li(Reg::T0, 64);
        a.li(Reg::T1, 3);
        a.label("fill");
        a.sw_pi(Reg::T1, Reg::S0, 4);
        a.addiu(Reg::T1, Reg::T1, 7);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "fill");
        a.gp_addr(Reg::S0, "data", 0);
        a.li(Reg::T0, 64);
        a.li(Reg::V0, 0);
        a.label("sum");
        a.lw_pi(Reg::T2, Reg::S0, 4);
        a.addu(Reg::V0, Reg::V0, Reg::T2);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "sum");
        a.sw_gp(Reg::V0, "checksum", 0);
        a.halt();
        a.link("sum", &SoftwareSupport::on()).unwrap()
    }

    #[test]
    fn oracle_alone_matches_expected_arithmetic() {
        let p = sum_program();
        let mut o = Oracle::new(&p);
        let steps = o.run(&p, 100_000).unwrap();
        assert!(o.halted);
        assert!(steps > 0);
        let expected: u32 = (0..64).map(|i| 3 + 7 * i).sum();
        assert_eq!(o.regs[Reg::V0.index()], expected);
        assert_eq!(o.mem.read(p.symbol("checksum"), 4) as u32, expected);
    }

    #[test]
    fn lockstep_agrees_on_baseline_and_fac() {
        let p = sum_program();
        for cfg in [
            MachineConfig::paper_baseline(),
            MachineConfig::paper_baseline().with_fac(),
            MachineConfig::paper_baseline().with_fac().with_tlb(),
        ] {
            let r = Lockstep::new(cfg).run(&p).unwrap();
            assert!(r.stats.cycles > 0);
        }
    }

    #[test]
    fn lockstep_agrees_under_every_builtin_fault_plan() {
        let p = sum_program();
        for plan in FaultPlan::builtin() {
            let cfg = MachineConfig::paper_baseline().with_fac().with_fault_plan(plan);
            Lockstep::new(cfg).run(&p).unwrap_or_else(|e| panic!("{plan}: {e}"));
        }
    }

    #[test]
    fn escaped_speculation_is_detected_as_divergence() {
        let p = sum_program();
        let plan = FaultPlan::new(FaultKind::SilentWrong);
        let err = Lockstep::new(MachineConfig::paper_baseline().with_fac())
            .with_escaped_speculation(plan)
            .run(&p)
            .unwrap_err();
        match err {
            SimError::Divergence { expected, actual, .. } => assert_ne!(expected, actual),
            other => panic!("expected a divergence, got {other}"),
        }
    }

    #[test]
    fn oracle_watchdog_fires() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.link("spin", &SoftwareSupport::on()).unwrap();
        let mut o = Oracle::new(&p);
        assert_eq!(o.run(&p, 500).unwrap_err(), SimError::Runaway(500));
        let err = Lockstep::new(MachineConfig::paper_baseline())
            .with_max_insts(500)
            .run(&p)
            .unwrap_err();
        assert_eq!(err, SimError::Runaway(500));
    }

    #[test]
    fn golden_mem_is_little_endian_and_zero_filled() {
        let mut m = GoldenMem::new();
        assert_eq!(m.read(0x1234, 8), 0);
        m.write(0x10, 4, 0x0403_0201);
        assert_eq!(m.byte(0x10), 0x01);
        assert_eq!(m.byte(0x13), 0x04);
        assert_eq!(m.read(0x0e, 4), 0x0201_0000); // straddles the write start
        // Page-straddling write.
        m.write(GOLD_PAGE - 2, 4, 0xdead_beef);
        assert_eq!(m.read(GOLD_PAGE - 2, 4), 0xdead_beef);
    }
}
