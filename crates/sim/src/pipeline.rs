//! The cycle-level timing model: a 4-way in-order-issue superscalar with
//! out-of-order completion, modelled as a constrained scoreboard over the
//! dynamic instruction stream (the classic trace-driven structure of the
//! paper's era).
//!
//! Pipeline shape (§5.5): a traditional 5-stage pipe — IF, ID, EX, MEM, WB —
//! so an instruction fetched in cycle `f` issues (enters EX) no earlier than
//! `f + 2`. ALU results are ready after EX; non-speculative loads compute
//! their address in EX and access the cache in MEM (2-cycle latency). With
//! fast address calculation, a load whose address predicts correctly
//! accesses the cache during EX and completes in 1 cycle; a misprediction
//! replays the access in MEM, and accesses issued in the following cycle
//! lose their speculation slot (except a load directly after a misspeculated
//! load).

use crate::btb::Btb;
use crate::config::{FuTiming, LoadLatencyMode, MachineConfig, PipelineOrg};
use crate::exec::{dst_regs, src_regs, Executed, MemRef, SB_REGS};
use crate::obs::{CacheKind, Event, NullObserver, Observer, StallKind};
use crate::stats::{RefClass, SimStats};
use fac_core::{AddrFields, AnyPredictor, Ltb, Predictor};
use fac_mem::{Cache, Tlb};
use std::collections::VecDeque;

/// Ring buffer tracking data-cache port usage per cycle. Slots are lazily
/// reset when a new cycle maps onto them, so no global clearing is needed.
#[derive(Debug, Clone)]
struct PortRing {
    slots: Vec<(u64, u32, u32)>, // (cycle, reads, writes)
}

const PORT_RING: usize = 1 << 14;

impl PortRing {
    fn new() -> PortRing {
        PortRing { slots: vec![(u64::MAX, 0, 0); PORT_RING] }
    }

    fn slot(&mut self, cycle: u64) -> &mut (u64, u32, u32) {
        let s = &mut self.slots[(cycle as usize) & (PORT_RING - 1)];
        if s.0 != cycle {
            *s = (cycle, 0, 0);
        }
        s
    }

    fn reads(&mut self, cycle: u64) -> u32 {
        self.slot(cycle).1
    }

    fn add_read(&mut self, cycle: u64) {
        self.slot(cycle).1 += 1;
    }

    fn add_write(&mut self, cycle: u64) {
        self.slot(cycle).2 += 1;
    }

    fn writes(&mut self, cycle: u64) -> u32 {
        self.slot(cycle).2
    }
}

/// One functional-unit pool.
#[derive(Debug, Clone)]
struct Pool {
    next_free: Vec<u64>,
}

impl Pool {
    fn new(units: u32) -> Pool {
        Pool { next_free: vec![0; units.max(1) as usize] }
    }

    /// Earliest cycle ≥ `c` at which a unit is free.
    fn earliest(&self, c: u64) -> u64 {
        self.next_free.iter().copied().min().unwrap_or(0).max(c)
    }

    /// Claims a unit at cycle `c` for `interval` cycles. A pool can never be
    /// empty ([`Pool::new`] allocates at least one unit), but the claim
    /// degrades to a no-op rather than panicking if it somehow were.
    fn claim(&mut self, c: u64, interval: u64) {
        if let Some(unit) = self.next_free.iter_mut().min_by_key(|f| **f) {
            debug_assert!(*unit <= c);
            *unit = c + interval;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuClass {
    None,
    IntAlu,
    LoadStore,
    FpAdd,
    IntMul(FuKind),
    FpMul(FuKind),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuKind {
    Mul,
    Div,
}

fn classify_fu(insn: &fac_isa::Insn) -> FuClass {
    use fac_isa::{FpOp, Insn, MulDivOp};
    match insn {
        Insn::Nop | Insn::Halt => FuClass::None,
        Insn::Load { .. } | Insn::Store { .. } | Insn::LoadFp { .. } | Insn::StoreFp { .. } => {
            FuClass::LoadStore
        }
        Insn::MulDiv { op, .. } => match op {
            MulDivOp::Mult | MulDivOp::Multu => FuClass::IntMul(FuKind::Mul),
            MulDivOp::Div | MulDivOp::Divu => FuClass::IntMul(FuKind::Div),
        },
        Insn::Fp { op, .. } => match op {
            FpOp::Mul => FuClass::FpMul(FuKind::Mul),
            FpOp::Div | FpOp::Sqrt => FuClass::FpMul(FuKind::Div),
            _ => FuClass::FpAdd,
        },
        Insn::FpCmp { .. } | Insn::CvtFromW { .. } | Insn::TruncToW { .. } => FuClass::FpAdd,
        _ => FuClass::IntAlu,
    }
}

/// Per-instruction pipeline timing, as reported by
/// [`Pipeline::advance_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueInfo {
    /// Cycle the instruction's fetch group was fetched.
    pub fetch: u64,
    /// Cycle the instruction issued (entered EX).
    pub issue: u64,
    /// Cycle its result became available.
    pub complete: u64,
    /// The access replayed in MEM after an address misprediction.
    pub replayed: bool,
}

/// The timing engine. Feed it the dynamic instruction stream (from
/// [`crate::ArchState::step`]) in program order via [`Pipeline::advance`];
/// read the final cycle count from [`Pipeline::finish`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: MachineConfig,
    predictor: Option<AnyPredictor>,
    ltb: Option<Ltb>,
    icache: Cache,
    dcache: Cache,
    btb: Btb,
    tlb: Option<Tlb>,

    reg_ready: [u64; SB_REGS],
    last_issue: u64,
    issued_now: u32,
    loads_now: u32,
    stores_now: u32,
    ports: PortRing,

    pools_int: Pool,
    pools_ls: Pool,
    pools_fpadd: Pool,
    pools_imul: Pool,
    pools_fpmul: Pool,

    next_fetch: u64,
    group_fetch: u64,
    group_left: u32,
    group_block: u32,

    /// Enter cycles of stores waiting in the store buffer.
    sb_queue: VecDeque<u64>,
    /// Next cycle to examine for store-buffer retirement.
    sb_cursor: u64,

    /// `(cycle, was_load)` of the most recent misprediction replay.
    mispredict_block: Option<(u64, bool)>,
    /// Cycle of the most recent *store* access: memory operations execute
    /// in order (§5.5), so a later access may not reach the cache before an
    /// earlier store has — the reason the paper speculates stores at all.
    last_store_access: u64,
    /// Miss status holding registers of the non-blocking cache:
    /// `(fill_completion_cycle, block_address)` per outstanding miss.
    mshrs: Vec<(u64, u32)>,
    max_complete: u64,
}

impl Pipeline {
    /// Creates a cold pipeline for the given machine.
    pub fn new(cfg: MachineConfig) -> Pipeline {
        let predictor = cfg.fac.map(|f| {
            AnyPredictor::new(
                Predictor::new(
                    AddrFields::for_set_associative(
                        cfg.dcache.size_bytes,
                        cfg.dcache.block_bytes,
                        cfg.dcache.ways,
                    ),
                    f.predictor,
                ),
                cfg.fault_plan,
            )
        });
        let ltb = match (&predictor, cfg.ltb_entries) {
            (None, Some(entries)) => Some(Ltb::new(entries)),
            _ => None,
        };
        Pipeline {
            predictor,
            ltb,
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            btb: Btb::new(cfg.btb_entries),
            tlb: cfg.model_tlb.then(|| Tlb::new(64, 4096)),
            reg_ready: [0; SB_REGS],
            last_issue: 0,
            issued_now: 0,
            loads_now: 0,
            stores_now: 0,
            ports: PortRing::new(),
            pools_int: Pool::new(cfg.fu.int_alu_units),
            pools_ls: Pool::new(cfg.fu.load_store_units),
            pools_fpadd: Pool::new(cfg.fu.fp_add_units),
            pools_imul: Pool::new(cfg.fu.int_mul_units),
            pools_fpmul: Pool::new(cfg.fu.fp_mul_units),
            next_fetch: 0,
            group_fetch: 0,
            group_left: 0,
            group_block: u32::MAX,
            sb_queue: VecDeque::new(),
            sb_cursor: 0,
            mispredict_block: None,
            last_store_access: 0,
            mshrs: vec![(0, u32::MAX); cfg.mshr_entries.max(1) as usize],
            max_complete: 0,
            cfg,
        }
    }

    fn fu_timing(&self, class: FuClass) -> FuTiming {
        match class {
            FuClass::None => FuTiming { latency: 1, interval: 1 },
            FuClass::IntAlu => self.cfg.fu.int_alu,
            FuClass::LoadStore => FuTiming { latency: 1, interval: 1 }, // handled by mem path
            FuClass::FpAdd => self.cfg.fu.fp_add,
            FuClass::IntMul(FuKind::Mul) => self.cfg.fu.int_mul,
            FuClass::IntMul(FuKind::Div) => self.cfg.fu.int_div,
            FuClass::FpMul(FuKind::Mul) => self.cfg.fu.fp_mul,
            FuClass::FpMul(FuKind::Div) => self.cfg.fu.fp_div,
        }
    }

    fn pool(&mut self, class: FuClass) -> Option<&mut Pool> {
        match class {
            FuClass::None => None,
            FuClass::IntAlu => Some(&mut self.pools_int),
            FuClass::LoadStore => Some(&mut self.pools_ls),
            FuClass::FpAdd => Some(&mut self.pools_fpadd),
            FuClass::IntMul(_) => Some(&mut self.pools_imul),
            FuClass::FpMul(_) => Some(&mut self.pools_fpmul),
        }
    }

    /// Assigns a fetch cycle to the next dynamic instruction.
    ///
    /// The front end fetches **any** `fetch_width` contiguous instructions
    /// per cycle (Table 5), so a fetch group may span an I-cache block
    /// boundary; each block the group touches costs an I-cache access, and
    /// a miss on either delays the group.
    fn fetch_cycle<O: Observer>(&mut self, pc: u32, stats: &mut SimStats, obs: &mut O) -> u64 {
        let block = pc / self.cfg.icache.block_bytes;
        if self.group_left == 0 {
            // New fetch group: bounded run-ahead of the issue stage (small
            // fetch buffer), plus the I-cache access for the group.
            let mut f = self.next_fetch.max(self.last_issue.saturating_sub(4));
            if !self.icache.access(pc, false).hit {
                if obs.enabled() {
                    obs.on_event(&Event::CacheMiss {
                        cycle: f,
                        cache: CacheKind::ICache,
                        pc,
                        addr: pc,
                        is_store: false,
                    });
                }
                f += self.cfg.miss_latency;
            }
            stats.icache = *self.icache.stats();
            self.group_fetch = f;
            self.next_fetch = f + 1;
            self.group_left = self.cfg.fetch_width;
            self.group_block = block;
        } else if block != self.group_block {
            // The group ran into the next block: a second I-cache access,
            // stalling the group if it misses.
            self.group_block = block;
            if !self.icache.access(pc, false).hit {
                if obs.enabled() {
                    obs.on_event(&Event::CacheMiss {
                        cycle: self.group_fetch,
                        cache: CacheKind::ICache,
                        pc,
                        addr: pc,
                        is_store: false,
                    });
                }
                self.group_fetch += self.cfg.miss_latency;
                self.next_fetch = self.group_fetch + 1;
            }
            stats.icache = *self.icache.stats();
        }
        self.group_left -= 1;
        self.group_fetch
    }

    /// Extra cycles a miss at `access` costs, through the miss status
    /// holding registers: a miss to a block already being filled merges
    /// into that MSHR (finishing when the fill does); otherwise it claims a
    /// free MSHR, waiting for the oldest fill when all are busy (Table 5's
    /// bounded non-blocking interface).
    fn miss_fill_latency(&mut self, access: u64, addr: u32) -> u64 {
        if self.cfg.perfect_dcache {
            return 0;
        }
        let block = addr / self.cfg.dcache.block_bytes;
        // Merge with an in-flight fill of the same block.
        if let Some(&(done, _)) = self.mshrs.iter().find(|&&(done, b)| b == block && done > access)
        {
            return done - access;
        }
        // The MSHR file always has at least one entry (`Pipeline::new`
        // clamps); if it somehow did not, model a plain blocking miss
        // rather than panicking.
        let Some(slot) = self.mshrs.iter_mut().min_by_key(|(done, _)| *done) else {
            return self.cfg.miss_latency;
        };
        let start = access.max(slot.0);
        *slot = (start + self.cfg.miss_latency, block);
        slot.0 - access
    }

    /// Retires buffered stores into cycles now known to be idle. Called
    /// when the issue point advances to `c`: no future access can land in a
    /// cycle before `c` any more, so any such cycle with no cache reads or
    /// writes is a free cache cycle (§5.5: "the store buffer retires stored
    /// data to the data cache during cycles in which the data cache is
    /// unused").
    fn sb_drain_to(&mut self, c: u64) {
        while self.sb_cursor < c {
            let cy = self.sb_cursor;
            self.sb_cursor += 1;
            if let Some(&enter) = self.sb_queue.front() {
                if enter < cy
                    && self.ports.reads(cy) == 0
                    && self.ports.writes(cy) < self.cfg.dcache_write_ports
                {
                    self.sb_queue.pop_front();
                    self.ports.add_write(cy);
                    self.max_complete = self.max_complete.max(cy);
                }
            } else {
                self.sb_cursor = c;
            }
        }
    }

    /// Store-buffer admission at cycle `c`: a full buffer stalls the
    /// pipeline while the oldest entry is forcibly retired to the cache
    /// (§5.5: "the entire pipeline is stalled and the oldest entry in the
    /// store buffer is retired").
    fn sb_admit<O: Observer>(&mut self, mut c: u64, stats: &mut SimStats, obs: &mut O) -> u64 {
        if self.sb_queue.len() >= self.cfg.store_buffer_entries {
            stats.store_buffer_stalls += 2;
            if obs.enabled() {
                obs.on_event(&Event::Stall { cycle: c, kind: StallKind::StoreBuffer, penalty: 2 });
            }
            self.sb_queue.pop_front();
            self.ports.add_write(c + 1);
            c += 2;
        }
        c
    }

    /// Enqueues a store that entered the buffer at cycle `enter`.
    fn sb_book_retire(&mut self, enter: u64) {
        self.sb_queue.push_back(enter);
    }

    /// Times one memory access issued at `c`. Returns `(result_latency,
    /// mispredicted)`. Cache/TLB state is updated with the *true* address.
    fn mem_timing<O: Observer>(
        &mut self,
        c: u64,
        pc: u32,
        mref: &MemRef,
        stats: &mut SimStats,
        obs: &mut O,
    ) -> (u64, bool) {
        if let Some(tlb) = &mut self.tlb {
            tlb.access(mref.addr);
        }

        if self.predictor.is_none() {
            // Take the LTB out so the borrow checker sees the rest of the
            // pipeline as free — and so there is no "ltb configured" expect
            // to trip.
            if let Some(mut ltb) = self.ltb.take() {
                let r = self.mem_timing_ltb(c, pc, mref, stats, &mut ltb, obs);
                self.ltb = Some(ltb);
                return r;
            }
        }

        let counters = if mref.is_store { &mut stats.pred_stores } else { &mut stats.pred_loads };

        // Figure-2 what-if: all loads complete their access in EX.
        if self.cfg.load_latency == LoadLatencyMode::OneCycle {
            counters.not_speculated += 1;
            self.ports.add_read(c);
            let hit = self.dcache.access(mref.addr, mref.is_store).hit;
            if !hit && obs.enabled() {
                obs.on_event(&Event::CacheMiss {
                    cycle: c,
                    cache: CacheKind::DCache,
                    pc,
                    addr: mref.addr,
                    is_store: mref.is_store,
                });
            }
            let pen = if hit { 0 } else { self.miss_fill_latency(c, mref.addr) };
            if mref.is_store {
                let enter = self.sb_admit(c, stats, obs).max(c);
                self.sb_book_retire(enter);
                return (1, false);
            }
            return (1 + pen, false);
        }

        let spec = match &mut self.predictor {
            Some(p) if p.should_speculate(mref.offset, mref.is_store) => {
                // Accesses in the cycle after a misprediction lose their
                // speculative slot — except a load right after a
                // misspeculated load. And because the model executes all
                // memory accesses in order (§5.5), an access cannot start
                // in EX if an earlier access has not reached the cache yet
                // — this is exactly why the paper speculates stores too.
                let blocked = match self.mispredict_block {
                    Some((bc, was_load)) if bc + 1 == c => !was_load || mref.is_store,
                    _ => false,
                } || self.last_store_access > c;
                if blocked {
                    None
                } else {
                    Some(p.predict(mref.base_value, mref.offset))
                }
            }
            _ => None,
        };

        match spec {
            None => {
                // Non-speculative path: address in EX, cache in MEM.
                counters.not_speculated += 1;
                let access = c + 1;
                if mref.is_store {
                    self.last_store_access = self.last_store_access.max(access);
                }
                self.ports.add_read(access);
                let hit = self.dcache.access(mref.addr, mref.is_store).hit;
                if !hit && obs.enabled() {
                    obs.on_event(&Event::CacheMiss {
                        cycle: access,
                        cache: CacheKind::DCache,
                        pc,
                        addr: mref.addr,
                        is_store: mref.is_store,
                    });
                }
                let pen = if hit { 0 } else { self.miss_fill_latency(access, mref.addr) };
                if mref.is_store {
                    let enter = self.sb_admit(access, stats, obs).max(access);
                    self.sb_book_retire(enter);
                    (2, false)
                } else {
                    (2 + pen, false)
                }
            }
            Some(pred) => {
                if mref.is_reg_reg() {
                    counters.attempts_rr += 1;
                } else {
                    counters.attempts_const += 1;
                }
                // The speculative access itself (EX stage).
                if mref.is_store {
                    self.last_store_access = self.last_store_access.max(c);
                }
                self.ports.add_read(c);
                // The speculation is consumed only when the circuit raised
                // no failure signal AND the decoupled verification compare
                // (full-adder address vs. predicted address) agrees. For the
                // exact circuit the signals are conservative, so the second
                // conjunct is redundant; under fault injection it is the
                // backstop that keeps bad speculations out of the
                // architectural path.
                let consumed = pred.is_correct() && pred.predicted == pred.actual;
                if obs.enabled() {
                    let class = RefClass::of(mref.base_reg);
                    obs.on_event(&Event::Speculate {
                        cycle: c,
                        pc,
                        class,
                        is_store: mref.is_store,
                        predicted: pred.predicted,
                    });
                    obs.on_event(&Event::Verify {
                        cycle: c,
                        pc,
                        ok: consumed,
                        compare_caught: pred.is_correct() && !consumed,
                    });
                    if pred.is_correct() && !consumed {
                        obs.on_event(&Event::FaultInjected {
                            cycle: c,
                            pc,
                            predicted: pred.predicted,
                            actual: pred.actual,
                        });
                    }
                }
                if consumed {
                    let hit = self.dcache.access(mref.addr, mref.is_store).hit;
                    if !hit && obs.enabled() {
                        obs.on_event(&Event::CacheMiss {
                            cycle: c,
                            cache: CacheKind::DCache,
                            pc,
                            addr: mref.addr,
                            is_store: mref.is_store,
                        });
                    }
                    let pen = if hit { 0 } else { self.miss_fill_latency(c, mref.addr) };
                    if mref.is_store {
                        let enter = self.sb_admit(c, stats, obs).max(c);
                        self.sb_book_retire(enter);
                        (1, false)
                    } else {
                        (1 + pen, false)
                    }
                } else {
                    // Misprediction: the speculative access was wasted;
                    // replay with the true address in MEM.
                    if mref.is_reg_reg() {
                        counters.fails_rr += 1;
                    } else {
                        counters.fails_const += 1;
                    }
                    stats.extra_accesses += 1;
                    if pred.is_correct() {
                        // No failure signal fired: the decoupled address
                        // compare alone caught this one.
                        stats.verify_catches += 1;
                    }
                    if let Some(cause) = pred.cause() {
                        stats.record_cause(cause);
                    }
                    let replay = c + 1;
                    if obs.enabled() {
                        obs.on_event(&Event::Replay {
                            cycle: replay,
                            pc,
                            class: RefClass::of(mref.base_reg),
                            is_store: mref.is_store,
                            cause: pred.cause(),
                            offset: mref.offset_value(),
                        });
                    }
                    if mref.is_store {
                        self.last_store_access = self.last_store_access.max(replay);
                    }
                    self.ports.add_read(replay);
                    let hit = self.dcache.access(mref.addr, mref.is_store).hit;
                    if !hit && obs.enabled() {
                        obs.on_event(&Event::CacheMiss {
                            cycle: replay,
                            cache: CacheKind::DCache,
                            pc,
                            addr: mref.addr,
                            is_store: mref.is_store,
                        });
                    }
                    let pen = if hit { 0 } else { self.miss_fill_latency(replay, mref.addr) };
                    self.mispredict_block = Some((c, !mref.is_store));
                    if mref.is_store {
                        let enter = self.sb_admit(replay, stats, obs).max(replay);
                        self.sb_book_retire(enter);
                        (2, false)
                    } else {
                        (2 + pen, true)
                    }
                }
            }
        }
    }

    /// Times one memory access under load-target-buffer prediction: the
    /// LTB guesses the effective address from the load PC during fetch, so
    /// a confident, correct guess lets the access start in EX like FAC; a
    /// wrong guess costs a replay, and a cold/unconfident entry takes the
    /// normal 2-cycle path.
    fn mem_timing_ltb<O: Observer>(
        &mut self,
        c: u64,
        pc: u32,
        mref: &MemRef,
        stats: &mut SimStats,
        ltb: &mut Ltb,
        obs: &mut O,
    ) -> (u64, bool) {
        let blocked = match self.mispredict_block {
            Some((bc, was_load)) if bc + 1 == c => !was_load || mref.is_store,
            _ => false,
        } || self.last_store_access > c;
        let guess = if blocked || mref.is_store {
            // Keep the LTB load-only, like Golden & Mudge's design.
            None
        } else {
            ltb.predict(pc)
        };
        ltb.update(pc, mref.addr, guess);
        let counters = if mref.is_store { &mut stats.pred_stores } else { &mut stats.pred_loads };
        match guess {
            Some(addr) if addr == mref.addr => {
                counters.attempts_const += 1;
                if obs.enabled() {
                    let class = RefClass::of(mref.base_reg);
                    obs.on_event(&Event::Speculate {
                        cycle: c,
                        pc,
                        class,
                        is_store: mref.is_store,
                        predicted: addr,
                    });
                    obs.on_event(&Event::Verify { cycle: c, pc, ok: true, compare_caught: false });
                }
                self.ports.add_read(c);
                let hit = self.dcache.access(mref.addr, mref.is_store).hit;
                let pen = if hit { 0 } else { self.miss_fill_latency(c, mref.addr) };
                if obs.enabled() && !hit {
                    obs.on_event(&Event::CacheMiss {
                        cycle: c,
                        cache: CacheKind::DCache,
                        pc,
                        addr: mref.addr,
                        is_store: mref.is_store,
                    });
                }
                (1 + pen, false)
            }
            Some(addr) => {
                counters.attempts_const += 1;
                counters.fails_const += 1;
                stats.extra_accesses += 1;
                if obs.enabled() {
                    let class = RefClass::of(mref.base_reg);
                    obs.on_event(&Event::Speculate {
                        cycle: c,
                        pc,
                        class,
                        is_store: mref.is_store,
                        predicted: addr,
                    });
                    obs.on_event(&Event::Verify { cycle: c, pc, ok: false, compare_caught: false });
                    obs.on_event(&Event::Replay {
                        cycle: c + 1,
                        pc,
                        class,
                        is_store: mref.is_store,
                        cause: None,
                        offset: mref.offset_value(),
                    });
                }
                self.ports.add_read(c);
                self.ports.add_read(c + 1);
                let hit = self.dcache.access(mref.addr, mref.is_store).hit;
                let pen = if hit { 0 } else { self.miss_fill_latency(c + 1, mref.addr) };
                if obs.enabled() && !hit {
                    obs.on_event(&Event::CacheMiss {
                        cycle: c + 1,
                        cache: CacheKind::DCache,
                        pc,
                        addr: mref.addr,
                        is_store: mref.is_store,
                    });
                }
                self.mispredict_block = Some((c, !mref.is_store));
                (2 + pen, true)
            }
            None => {
                counters.not_speculated += 1;
                if mref.is_store {
                    self.last_store_access = self.last_store_access.max(c + 1);
                }
                self.ports.add_read(c + 1);
                let hit = self.dcache.access(mref.addr, mref.is_store).hit;
                let pen = if hit { 0 } else { self.miss_fill_latency(c + 1, mref.addr) };
                if obs.enabled() && !hit {
                    obs.on_event(&Event::CacheMiss {
                        cycle: c + 1,
                        cache: CacheKind::DCache,
                        pc,
                        addr: mref.addr,
                        is_store: mref.is_store,
                    });
                }
                if mref.is_store {
                    let enter = self.sb_admit(c + 1, stats, obs).max(c + 1);
                    self.sb_book_retire(enter);
                    (2, false)
                } else {
                    (2 + pen, false)
                }
            }
        }
    }

    /// Advances the pipeline by one committed instruction; returns the
    /// cycle at which it issued.
    pub fn advance(&mut self, ex: &Executed, stats: &mut SimStats) -> u64 {
        self.advance_obs(ex, stats, &mut NullObserver).issue
    }

    /// Like [`Pipeline::advance`] but returns the full per-instruction
    /// timing — used by the tracing facilities ([`crate::Machine::run_traced`]).
    pub fn advance_traced(&mut self, ex: &Executed, stats: &mut SimStats) -> IssueInfo {
        self.advance_obs(ex, stats, &mut NullObserver)
    }

    /// Like [`Pipeline::advance_traced`] but also emits cycle-stamped
    /// [`Event`]s into `obs`. With [`NullObserver`] every emission site
    /// monomorphizes away, so the plain entry points cost nothing.
    pub fn advance_obs<O: Observer>(
        &mut self,
        ex: &Executed,
        stats: &mut SimStats,
        obs: &mut O,
    ) -> IssueInfo {
        let fetch = self.fetch_cycle(ex.pc, stats, obs);
        let class = classify_fu(&ex.insn);
        let timing = self.fu_timing(class);

        // Earliest issue: in-order, after decode, operands ready. Under
        // the AGI organization, non-memory non-control operations execute
        // one stage later (next to cache access), so their operands may
        // arrive a cycle after issue and their results appear a cycle
        // later — which removes the load-use hazard but creates the
        // address-use hazard on memory operations (whose base registers
        // are still needed at issue, in the address-generation stage).
        let agi_late = self.cfg.pipeline_org == PipelineOrg::Agi
            && ex.mem.is_none()
            && !ex.insn.is_control()
            && class != FuClass::None;
        let mut c = self.last_issue.max(fetch + 2);
        for src in src_regs(&ex.insn).iter() {
            let ready = self.reg_ready[src as usize];
            c = c.max(if agi_late { ready.saturating_sub(1) } else { ready });
        }

        let is_mem = ex.mem.is_some();
        let is_load = ex.mem.map(|m| !m.is_store).unwrap_or(false);
        let is_store = ex.mem.map(|m| m.is_store).unwrap_or(false);

        // Structural hazards: issue width, memory issue limits, FU
        // availability, data-cache read ports.
        loop {
            let (issued, loads, stores) = if c == self.last_issue {
                (self.issued_now, self.loads_now, self.stores_now)
            } else {
                (0, 0, 0)
            };
            // "Up to 2 loads or 1 store per cycle": loads and store probes
            // share the two replicated read ports, at most one store.
            if issued >= self.cfg.issue_width
                || (is_load && loads >= self.cfg.max_loads_per_cycle)
                || (is_store && stores >= self.cfg.max_stores_per_cycle)
                || (is_mem && loads + stores >= self.cfg.max_loads_per_cycle)
            {
                c += 1;
                continue;
            }
            if let Some(pool) = self.pool(class) {
                let e = pool.earliest(c);
                if e > c {
                    c = e;
                    continue;
                }
            }
            if is_mem {
                // A memory access needs a read port in EX (speculative) or
                // MEM; conservatively require one free in the window.
                let need_at = c + 1;
                if self.ports.reads(c) >= self.cfg.dcache_read_ports
                    && self.ports.reads(need_at) >= self.cfg.dcache_read_ports
                {
                    c += 1;
                    continue;
                }
            }
            break;
        }

        // Claim resources.
        self.sb_drain_to(c);
        if c != self.last_issue {
            self.last_issue = c;
            self.issued_now = 0;
            self.loads_now = 0;
            self.stores_now = 0;
        }
        self.issued_now += 1;
        if is_load {
            self.loads_now += 1;
        }
        if is_store {
            self.stores_now += 1;
        }
        let interval = timing.interval;
        if let Some(pool) = self.pool(class) {
            pool.claim(c, interval);
        }

        // Result latency.
        let (latency, replayed) = if let Some(mref) = &ex.mem {
            self.mem_timing(c, ex.pc, mref, stats, obs)
        } else {
            (timing.latency + agi_late as u64, false)
        };

        // Scoreboard updates. For post-increment accesses the base-register
        // update is an ALU-side result, ready a cycle after issue.
        let dsts = dst_regs(&ex.insn);
        if let Some(mref) = &ex.mem {
            let mut first = true;
            let has_data_dst = !mref.is_store;
            for d in dsts.iter() {
                let ready = if has_data_dst && first { c + latency } else { c + 1 };
                self.reg_ready[d as usize] = self.reg_ready[d as usize].max(ready);
                first = false;
            }
        } else {
            for d in dsts.iter() {
                self.reg_ready[d as usize] = self.reg_ready[d as usize].max(c + latency);
            }
        }
        self.max_complete = self.max_complete.max(c + latency);

        // Control flow: BTB prediction and redirect costs.
        if ex.insn.is_control() {
            stats.branches += 1;
            let actual_taken = ex.taken.is_some();
            let target = ex.taken.unwrap_or(ex.pc.wrapping_add(4));
            let correct = match self.btb.predict(ex.pc) {
                Some(t) => actual_taken && t == target,
                None => !actual_taken,
            };
            self.btb.update(ex.pc, actual_taken, target);
            if !correct {
                stats.branch_mispredicts += 1;
                // Resolve at end of EX; refetch after the penalty. With the
                // 2-deep front end this costs `penalty` issue bubbles. The
                // AGI organization resolves branches one stage later (§6).
                let agi_extra = (self.cfg.pipeline_org == PipelineOrg::Agi) as u64;
                self.next_fetch = c + self.cfg.branch_mispredict_penalty - 1 + agi_extra;
                self.group_left = 0;
            } else if actual_taken {
                self.group_left = 0;
            }
        }

        IssueInfo { fetch, issue: c, complete: c + latency, replayed }
    }

    /// Finalizes the simulation: returns the total cycle count (last
    /// completion, including draining the store buffer) and writes the
    /// cache/TLB statistics into `stats`.
    pub fn finish(&mut self, stats: &mut SimStats) -> u64 {
        stats.icache = *self.icache.stats();
        stats.dcache = *self.dcache.stats();
        if let Some(tlb) = &self.tlb {
            stats.tlb = Some(*tlb.stats());
        }
        if let Some(ltb) = &self.ltb {
            stats.ltb = Some(*ltb.stats());
        }
        // Remaining buffered stores drain one per cycle after the last
        // instruction completes.
        let end = self.max_complete.max(self.last_issue);
        end + self.sb_queue.len() as u64 + 1
    }

    /// Live data-cache port bookings as `(cycle, reads, writes)` — the
    /// invariant checker scans these at the end of a run. Only slots touched
    /// within the last `PORT_RING` cycles are still live; older ones were
    /// lazily recycled.
    pub(crate) fn port_usage(&self) -> impl Iterator<Item = (u64, u32, u32)> + '_ {
        self.ports.slots.iter().copied().filter(|s| s.0 != u64::MAX)
    }

    /// Serializes the complete timing state for a machine checkpoint:
    /// predictor/LTB/TLB streams, cache tag arrays, BTB, scoreboard,
    /// port-ring bookings, FU pools, fetch-group cursors, store buffer,
    /// replay-blocking state and MSHRs. Everything [`Pipeline::new`]
    /// derives from the configuration alone (geometry, latencies) is not
    /// written — the restore side rebuilds it from the same configuration.
    pub(crate) fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        match &self.predictor {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                p.save_state(w);
            }
        }
        match &self.ltb {
            None => w.u8(0),
            Some(ltb) => {
                w.u8(1);
                ltb.save_state(w);
            }
        }
        self.icache.save_state(w);
        self.dcache.save_state(w);
        self.btb.save_state(w);
        match &self.tlb {
            None => w.u8(0),
            Some(tlb) => {
                w.u8(1);
                tlb.save_state(w);
            }
        }

        for c in self.reg_ready {
            w.u64(c);
        }
        w.u64(self.last_issue);
        w.u32(self.issued_now);
        w.u32(self.loads_now);
        w.u32(self.stores_now);

        // Port ring: only live (non-sentinel) slots, as (index, booking).
        let live: Vec<(usize, (u64, u32, u32))> = self
            .ports
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.0 != u64::MAX)
            .map(|(i, s)| (i, *s))
            .collect();
        w.len_of(live.len());
        for (i, (cycle, reads, writes)) in live {
            w.u32(i as u32);
            w.u64(cycle);
            w.u32(reads);
            w.u32(writes);
        }

        for pool in [
            &self.pools_int,
            &self.pools_ls,
            &self.pools_fpadd,
            &self.pools_imul,
            &self.pools_fpmul,
        ] {
            w.len_of(pool.next_free.len());
            for c in &pool.next_free {
                w.u64(*c);
            }
        }

        w.u64(self.next_fetch);
        w.u64(self.group_fetch);
        w.u32(self.group_left);
        w.u32(self.group_block);

        w.len_of(self.sb_queue.len());
        for c in &self.sb_queue {
            w.u64(*c);
        }
        w.u64(self.sb_cursor);

        match self.mispredict_block {
            None => w.u8(0),
            Some((cycle, was_load)) => {
                w.u8(1);
                w.u64(cycle);
                w.bool(was_load);
            }
        }
        w.u64(self.last_store_access);
        w.len_of(self.mshrs.len());
        for (cycle, block) in &self.mshrs {
            w.u64(*cycle);
            w.u32(*block);
        }
        w.u64(self.max_complete);
    }

    /// Restores [`Pipeline::save_state`] into a pipeline freshly built
    /// from the same configuration.
    pub(crate) fn load_state(
        &mut self,
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<(), fac_core::snap::SnapError> {
        use fac_core::snap::SnapError;
        let opt = |present: bool, have: bool, what: &str| -> Result<(), SnapError> {
            if present != have {
                return Err(SnapError::new(format!(
                    "{what} mismatch: snapshot {}, machine {}",
                    if present { "has one" } else { "has none" },
                    if have { "has one" } else { "has none" }
                )));
            }
            Ok(())
        };

        let has = r.bool("predictor present")?;
        opt(has, self.predictor.is_some(), "predictor")?;
        if let Some(p) = &mut self.predictor {
            p.load_state(r)?;
        }
        let has = r.bool("ltb present")?;
        opt(has, self.ltb.is_some(), "ltb")?;
        if let Some(ltb) = &mut self.ltb {
            ltb.load_state(r)?;
        }
        self.icache.load_state(r)?;
        self.dcache.load_state(r)?;
        self.btb.load_state(r)?;
        let has = r.bool("tlb present")?;
        opt(has, self.tlb.is_some(), "tlb")?;
        if let Some(tlb) = &mut self.tlb {
            tlb.load_state(r)?;
        }

        for c in &mut self.reg_ready {
            *c = r.u64("reg_ready")?;
        }
        self.last_issue = r.u64("last_issue")?;
        self.issued_now = r.u32("issued_now")?;
        self.loads_now = r.u32("loads_now")?;
        self.stores_now = r.u32("stores_now")?;

        self.ports.slots.fill((u64::MAX, 0, 0));
        let live = r.len_of(PORT_RING, "port ring live slots")?;
        for _ in 0..live {
            let i = r.u32("port ring slot index")? as usize;
            let cycle = r.u64("port ring slot cycle")?;
            let reads = r.u32("port ring slot reads")?;
            let writes = r.u32("port ring slot writes")?;
            if i >= PORT_RING || cycle == u64::MAX {
                return Err(SnapError::new(format!("bad port ring slot {i}")));
            }
            self.ports.slots[i] = (cycle, reads, writes);
        }

        for pool in [
            &mut self.pools_int,
            &mut self.pools_ls,
            &mut self.pools_fpadd,
            &mut self.pools_imul,
            &mut self.pools_fpmul,
        ] {
            let n = r.len_of(pool.next_free.len(), "fu pool units")?;
            if n != pool.next_free.len() {
                return Err(SnapError::new(format!(
                    "fu pool mismatch: snapshot has {n} units, machine has {}",
                    pool.next_free.len()
                )));
            }
            for c in &mut pool.next_free {
                *c = r.u64("fu pool next_free")?;
            }
        }

        self.next_fetch = r.u64("next_fetch")?;
        self.group_fetch = r.u64("group_fetch")?;
        self.group_left = r.u32("group_left")?;
        self.group_block = r.u32("group_block")?;

        let n = r.len_of(self.cfg.store_buffer_entries, "store buffer queue")?;
        self.sb_queue.clear();
        for _ in 0..n {
            self.sb_queue.push_back(r.u64("store buffer entry")?);
        }
        self.sb_cursor = r.u64("sb_cursor")?;

        self.mispredict_block = if r.bool("mispredict_block present")? {
            Some((r.u64("mispredict_block cycle")?, r.bool("mispredict_block was_load")?))
        } else {
            None
        };
        self.last_store_access = r.u64("last_store_access")?;
        let n = r.len_of(self.cfg.mshr_entries as usize, "mshrs")?;
        self.mshrs.clear();
        for _ in 0..n {
            let cycle = r.u64("mshr cycle")?;
            let block = r.u32("mshr block")?;
            self.mshrs.push((cycle, block));
        }
        self.max_complete = r.u64("max_complete")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ArchState, Executed};
    use fac_asm::{Asm, SoftwareSupport};

    fn run_cycles(cfg: MachineConfig, build: impl FnOnce(&mut Asm)) -> (u64, SimStats) {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.link("t", &SoftwareSupport::on()).unwrap();
        let mut st = ArchState::new(&p);
        let mut pipe = Pipeline::new(cfg);
        let mut stats = SimStats::default();
        while !st.halted {
            let ex: Executed = st.step(&p).unwrap();
            stats.insts += 1;
            pipe.advance(&ex, &mut stats);
        }
        stats.cycles = pipe.finish(&mut stats);
        (stats.cycles, stats)
    }

    #[test]
    fn independent_alu_ops_issue_wide() {
        use fac_isa::Reg;
        // 8 independent ALU ops should take ~2 issue cycles, not 8.
        let (cycles, _) = run_cycles(MachineConfig::paper_baseline(), |a| {
            for i in 0..8 {
                a.li(Reg::new(8 + i), i as i32);
            }
        });
        // Fetch depth + 2 issue groups + drain; generous bound.
        assert!(cycles < 20, "got {cycles}");
    }

    #[test]
    fn dependent_chain_is_serial() {
        use fac_isa::Reg;
        let (fast, _) = run_cycles(MachineConfig::paper_baseline(), |a| {
            for i in 0..16 {
                a.li(Reg::new(8 + (i % 8)), i as i32);
            }
        });
        let (slow, _) = run_cycles(MachineConfig::paper_baseline(), |a| {
            a.li(Reg::T0, 1);
            for _ in 0..16 {
                a.addiu(Reg::T0, Reg::T0, 1);
            }
        });
        assert!(slow > fast, "dependent chain ({slow}) must beat wide issue ({fast})");
    }

    #[test]
    fn load_use_hazard_costs_a_cycle_without_fac() {
        use fac_isa::Reg;
        let body = |a: &mut Asm| {
            a.gp_word("x", 5);
            // Load-use chain, repeated.
            for _ in 0..32 {
                a.lw_gp(Reg::T0, "x", 0);
                a.addiu(Reg::T1, Reg::T0, 1);
            }
        };
        let (base, _) = run_cycles(MachineConfig::paper_baseline(), body);
        let (fac, stats) = run_cycles(MachineConfig::paper_baseline().with_fac(), body);
        assert!(fac < base, "FAC ({fac}) should beat baseline ({base})");
        assert_eq!(stats.pred_loads.fails(), 0, "gp-aligned loads must predict");
    }

    #[test]
    fn one_cycle_loads_match_fac_upper_bound() {
        use fac_isa::Reg;
        let body = |a: &mut Asm| {
            a.gp_word("x", 5);
            for _ in 0..32 {
                a.lw_gp(Reg::T0, "x", 0);
                a.addiu(Reg::T1, Reg::T0, 1);
            }
        };
        let (one, _) = run_cycles(MachineConfig::paper_baseline().with_one_cycle_loads(), body);
        let (fac, _) = run_cycles(MachineConfig::paper_baseline().with_fac(), body);
        // Perfect prediction ⇒ FAC should be within a cycle or two of the
        // 1-cycle-load what-if.
        assert!(fac <= one + 2, "fac {fac} vs one-cycle {one}");
    }

    #[test]
    fn cache_misses_hurt() {
        use fac_isa::Reg;
        let stride_body = |a: &mut Asm| {
            a.far_array("big", 256 * 1024, 32);
            a.la(Reg::S0, "big", 0);
            a.li(Reg::T2, 64);
            a.label("loop");
            // Stride through 64 cache-conflicting blocks (16 KB apart).
            a.lw(Reg::T0, 0, Reg::S0);
            a.lui(Reg::AT, 0); // filler
            a.li(Reg::T3, 16384);
            a.addu(Reg::S0, Reg::S0, Reg::T3);
            a.addiu(Reg::T2, Reg::T2, -1);
            a.bgtz(Reg::T2, "loop");
        };
        let (normal, s1) = run_cycles(MachineConfig::paper_baseline(), stride_body);
        let (perfect, _) = run_cycles(
            MachineConfig::paper_baseline().with_perfect_dcache(),
            stride_body,
        );
        assert!(s1.dcache.misses > 32, "expected conflict misses");
        assert!(normal > perfect, "misses ({normal}) must cost over perfect ({perfect})");
    }

    #[test]
    fn store_buffer_fills_under_store_bursts() {
        use fac_isa::Reg;
        let (_, stats) = run_cycles(MachineConfig::paper_baseline(), |a| {
            a.gp_array("buf", 512, 4);
            a.gp_addr(Reg::S0, "buf", 0);
            for i in 0..64 {
                a.sw(Reg::ZERO, (4 * (i % 64)) as i16, Reg::S0);
            }
        });
        assert!(stats.store_buffer_stalls > 0, "64 back-to-back stores must stall");
    }

    #[test]
    fn branch_mispredicts_counted_and_costly() {
        use fac_isa::Reg;
        // A data-dependent alternating branch mispredicts under 2-bit
        // counters roughly every iteration once in the toggling state.
        let body = |a: &mut Asm| {
            a.li(Reg::S0, 64);
            a.li(Reg::S1, 0);
            a.label("loop");
            a.andi(Reg::T0, Reg::S0, 1);
            a.beq(Reg::T0, Reg::ZERO, "even");
            a.addiu(Reg::S1, Reg::S1, 1);
            a.label("even");
            a.addiu(Reg::S0, Reg::S0, -1);
            a.bgtz(Reg::S0, "loop");
        };
        let (_, stats) = run_cycles(MachineConfig::paper_baseline(), body);
        assert!(stats.branch_mispredicts > 10);
        assert!(stats.branches > 100);
    }

    #[test]
    fn ltb_predicts_stable_load_addresses() {
        use fac_isa::Reg;
        let body = |a: &mut Asm| {
            a.gp_word("x", 5);
            // The same load PC hits the same address every iteration: an
            // LTB's best case.
            a.li(Reg::S0, 64);
            a.label("loop");
            a.lw_gp(Reg::T0, "x", 0);
            a.addiu(Reg::T1, Reg::T0, 1);
            a.addiu(Reg::S0, Reg::S0, -1);
            a.bgtz(Reg::S0, "loop");
        };
        let (base, _) = run_cycles(MachineConfig::paper_baseline(), body);
        let (ltb, stats) = run_cycles(MachineConfig::paper_baseline().with_ltb(512), body);
        assert!(ltb < base, "ltb {ltb} should beat base {base}");
        let s = stats.ltb.expect("ltb stats recorded");
        assert!(s.predictions > 32);
        assert!(s.accuracy() > 0.9, "accuracy {}", s.accuracy());
    }

    #[test]
    fn fac_takes_precedence_over_ltb() {
        use fac_isa::Reg;
        let cfg = MachineConfig::paper_baseline().with_fac().with_ltb(64);
        let (_, stats) = run_cycles(cfg, |a| {
            a.gp_word("x", 1);
            a.lw_gp(Reg::T0, "x", 0);
        });
        assert!(stats.ltb.is_none(), "LTB must be inert when FAC is on");
        assert_eq!(stats.pred_loads.attempts(), 1);
    }

    #[test]
    fn agi_pipeline_hides_load_use_latency() {
        use fac_isa::Reg;
        // Pure load-use chain: AGI removes the bubble the LUI pipe pays.
        let body = |a: &mut Asm| {
            a.gp_word("x", 5);
            for _ in 0..64 {
                a.lw_gp(Reg::T0, "x", 0);
                a.addiu(Reg::T1, Reg::T0, 1);
                a.addiu(Reg::T2, Reg::T1, 1);
            }
        };
        let (lui, _) = run_cycles(MachineConfig::paper_baseline(), body);
        let (agi, _) = run_cycles(MachineConfig::paper_baseline().with_agi_pipeline(), body);
        assert!(agi < lui, "agi {agi} should beat lui {lui} on load-use chains");
    }

    #[test]
    fn agi_pipeline_pays_the_address_use_hazard() {
        use fac_isa::Reg;
        // Compute a base, then immediately load through it: AGI stalls.
        let body = |a: &mut Asm| {
            a.gp_array("buf", 64, 4);
            a.gp_addr(Reg::S0, "buf", 0);
            for _ in 0..64 {
                a.addiu(Reg::S1, Reg::S0, 4); // address computation
                a.lw(Reg::T0, 0, Reg::S1); // immediately used as a base
            }
        };
        let (lui, _) = run_cycles(MachineConfig::paper_baseline(), body);
        let (agi, _) = run_cycles(MachineConfig::paper_baseline().with_agi_pipeline(), body);
        assert!(
            agi >= lui,
            "agi {agi} should not beat lui {lui} on address-use chains"
        );
    }

    #[test]
    fn bounded_mshrs_throttle_miss_bursts() {
        use fac_isa::Reg;
        // Independent loads striding across cache blocks: every one misses,
        // so outstanding misses pile onto the MSHRs.
        let body = |a: &mut Asm| {
            a.far_array("big", 128 * 1024, 32);
            a.la(Reg::S0, "big", 0);
            for i in 0..48i32 {
                a.lw(Reg::new(8 + (i % 8) as u8), 0, Reg::S0);
                a.addiu(Reg::S0, Reg::S0, 2048); // new block & set each time
            }
        };
        let mut one = MachineConfig::paper_baseline();
        one.mshr_entries = 1;
        let mut many = MachineConfig::paper_baseline();
        many.mshr_entries = 16;
        let (c1, s1) = run_cycles(one, body);
        let (c16, s16) = run_cycles(many, body);
        assert!(s1.dcache.misses >= 48);
        assert_eq!(s1.dcache.misses, s16.dcache.misses);
        assert!(
            c1 > c16,
            "1 MSHR ({c1}) must serialize misses that 16 MSHRs ({c16}) overlap"
        );
    }

    #[test]
    fn mshr_merging_bounds_same_block_misses() {
        use fac_isa::Reg;
        // Two back-to-back loads to the same (missing) block: the second
        // merges into the first fill rather than waiting two full misses.
        let body = |a: &mut Asm| {
            a.far_array("arr", 4096, 32);
            a.la(Reg::S0, "arr", 0);
            a.lw(Reg::T0, 0, Reg::S0);
            a.lw(Reg::T1, 4, Reg::S0);
            a.addu(Reg::T2, Reg::T0, Reg::T1);
        };
        let mut cfg = MachineConfig::paper_baseline();
        cfg.mshr_entries = 1;
        let (cycles, stats) = run_cycles(cfg, body);
        // One miss (the second access hits the tag array after allocate) —
        // regardless, the whole thing fits well under two serialized fills.
        assert!(stats.dcache.misses <= 2);
        assert!(cycles < 40, "got {cycles}");
    }

    #[test]
    fn misprediction_replays_add_bandwidth() {
        use fac_isa::Reg;
        // Loads with offsets crossing block boundaries from an unaligned
        // base: high misprediction rate.
        let (_, stats) = run_cycles(MachineConfig::paper_baseline().with_fac(), |a| {
            a.far_array("arr", 4096, 4);
            a.la(Reg::S0, "arr", 28); // base offset-in-block 28
            for _ in 0..32 {
                a.lw(Reg::T0, 8, Reg::S0); // 28+8 crosses the 32-byte block
            }
        });
        assert!(stats.pred_loads.fails() >= 32);
        assert_eq!(stats.extra_accesses, stats.pred_loads.fails() + stats.pred_stores.fails());
    }
}

#[cfg(test)]
mod port_ring_tests {
    use super::{PortRing, PORT_RING};
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn aliased_cycles_never_leak_counts() {
        let mut ring = PortRing::new();
        let c = 100u64;
        ring.add_read(c);
        ring.add_write(c);
        assert_eq!((ring.reads(c), ring.writes(c)), (1, 1));
        // A cycle one full ring later maps onto the same slot: it must see
        // fresh zeros, not cycle 100's bookings…
        let aliased = c + PORT_RING as u64;
        assert_eq!((ring.reads(aliased), ring.writes(aliased)), (0, 0));
        // …and that lazy reset recycled the slot, so the old cycle's counts
        // are gone rather than resurrected.
        assert_eq!((ring.reads(c), ring.writes(c)), (0, 0));
    }

    #[test]
    fn far_aliases_behave_like_near_ones() {
        let mut ring = PortRing::new();
        for k in 0..4u64 {
            let c = 7 + k * PORT_RING as u64;
            assert_eq!(ring.reads(c), 0, "alias {k} saw stale data");
            ring.add_read(c);
            ring.add_read(c);
            assert_eq!(ring.reads(c), 2);
        }
    }

    /// One step of the reference model: touching `cycle` evicts any *other*
    /// cycle that shares its slot, exactly like the ring's lazy reset.
    fn touch(model: &mut HashMap<u64, (u32, u32)>, cycle: u64) {
        let mask = PORT_RING as u64 - 1;
        model.retain(|&k, _| k == cycle || (k & mask) != (cycle & mask));
        model.entry(cycle).or_insert((0, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ring agrees with a map-based reference model on arbitrary
        /// interleavings of bookings and queries whose cycles span several
        /// full ring lengths (so slots alias and must recycle lazily).
        #[test]
        fn matches_reference_model(
            ops in proptest::collection::vec(
                (0u64..4, 0u64..PORT_RING as u64, 0u8..4),
                1..200,
            )
        ) {
            let mut ring = PortRing::new();
            let mut model: HashMap<u64, (u32, u32)> = HashMap::new();
            for (wrap, offset, op) in ops {
                let cycle = wrap * PORT_RING as u64 + offset;
                touch(&mut model, cycle);
                let entry = model.get_mut(&cycle).unwrap();
                match op {
                    0 => {
                        ring.add_read(cycle);
                        entry.0 += 1;
                    }
                    1 => {
                        ring.add_write(cycle);
                        entry.1 += 1;
                    }
                    2 => prop_assert_eq!(ring.reads(cycle), entry.0),
                    _ => prop_assert_eq!(ring.writes(cycle), entry.1),
                }
            }
        }
    }
}
