//! Branch target buffer with 2-bit saturating counters (Table 5).

/// One BTB entry.
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    target: u32,
    /// 2-bit saturating counter; ≥ 2 predicts taken.
    counter: u8,
}

/// Direct-mapped branch target buffer.
///
/// Fetch consults the BTB with the branch PC; a hit with a taken-predicting
/// counter supplies the target so the redirect costs no bubble. A wrong
/// direction or wrong target costs the misprediction penalty.
///
/// ```
/// use fac_sim::Btb;
///
/// let mut btb = Btb::new(64);
/// assert_eq!(btb.predict(0x400000), None); // cold
/// btb.update(0x400000, true, 0x400100);
/// btb.update(0x400000, true, 0x400100);
/// assert_eq!(btb.predict(0x400000), Some(0x400100));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Entry>,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Btb { entries: vec![Entry::default(); entries as usize] }
    }

    fn index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Predicted target for the branch at `pc`, or `None` for a
    /// predicted-not-taken / unknown branch.
    pub fn predict(&self, pc: u32) -> Option<u32> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == pc && e.counter >= 2).then_some(e.target)
    }

    /// Trains the BTB with the resolved outcome.
    pub fn update(&mut self, pc: u32, taken: bool, target: u32) {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != pc {
            if taken {
                *e = Entry { valid: true, tag: pc, target, counter: 2 };
            }
            return;
        }
        if taken {
            e.counter = (e.counter + 1).min(3);
            e.target = target;
        } else {
            e.counter = e.counter.saturating_sub(1);
        }
    }

    /// Serializes every entry for a machine checkpoint.
    pub(crate) fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        w.len_of(self.entries.len());
        for e in &self.entries {
            w.bool(e.valid);
            w.u32(e.tag);
            w.u32(e.target);
            w.u8(e.counter);
        }
    }

    /// Restores [`Btb::save_state`] into a BTB of the same geometry.
    pub(crate) fn load_state(
        &mut self,
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<(), fac_core::snap::SnapError> {
        let n = r.len_of(self.entries.len(), "btb entries")?;
        if n != self.entries.len() {
            return Err(fac_core::snap::SnapError::new(format!(
                "btb geometry mismatch: snapshot has {n} entries, btb has {}",
                self.entries.len()
            )));
        }
        for e in &mut self.entries {
            e.valid = r.bool("btb entry valid")?;
            e.tag = r.u32("btb entry tag")?;
            e.target = r.u32("btb entry target")?;
            e.counter = r.u8("btb entry counter")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predicts_not_taken() {
        let btb = Btb::new(16);
        assert_eq!(btb.predict(0x1000), None);
    }

    #[test]
    fn two_takens_required() {
        let mut btb = Btb::new(16);
        btb.update(0x1000, true, 0x2000);
        assert_eq!(btb.predict(0x1000), Some(0x2000), "allocates at taken strength");
        btb.update(0x1000, false, 0);
        assert_eq!(btb.predict(0x1000), None);
        btb.update(0x1000, true, 0x2000);
        assert_eq!(btb.predict(0x1000), Some(0x2000));
    }

    #[test]
    fn hysteresis() {
        let mut btb = Btb::new(16);
        for _ in 0..3 {
            btb.update(0x1000, true, 0x2000);
        }
        btb.update(0x1000, false, 0);
        // Still predicts taken after one not-taken (counter 3 → 2).
        assert_eq!(btb.predict(0x1000), Some(0x2000));
        btb.update(0x1000, false, 0);
        assert_eq!(btb.predict(0x1000), None);
    }

    #[test]
    fn indirect_target_update() {
        let mut btb = Btb::new(16);
        btb.update(0x1000, true, 0x2000);
        btb.update(0x1000, true, 0x3000);
        assert_eq!(btb.predict(0x1000), Some(0x3000));
    }

    #[test]
    fn conflict_eviction_only_on_taken() {
        let mut btb = Btb::new(4);
        btb.update(0x1000, true, 0x2000);
        btb.update(0x1000, true, 0x2000);
        // 0x1010 maps to the same slot (4 entries, word-indexed).
        btb.update(0x1010, false, 0);
        assert_eq!(btb.predict(0x1000), Some(0x2000), "not-taken does not evict");
        btb.update(0x1010, true, 0x4000);
        assert_eq!(btb.predict(0x1010), Some(0x4000));
        assert_eq!(btb.predict(0x1000), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_rejected() {
        let _ = Btb::new(100);
    }
}
