//! Per-cycle invariant checking for the timing model.
//!
//! The timing pipeline is a scoreboard over the dynamic instruction stream:
//! easy to get subtly wrong in ways that still produce a plausible cycle
//! count. The [`InvariantChecker`] cross-checks every committed instruction
//! and the finished run against structural facts that must hold for *any*
//! configuration — issue discipline, port budgets, and conservation laws
//! over the prediction statistics. It runs in every debug build and, in
//! release, under [`MachineConfig::with_checks`]; a violation surfaces as
//! [`crate::SimError::Invariant`] instead of silently skewing results.
//!
//! [`MachineConfig::with_checks`]: crate::MachineConfig::with_checks

use crate::config::MachineConfig;
use crate::exec::Executed;
use crate::pipeline::{IssueInfo, Pipeline};
use crate::stats::SimStats;
use fac_core::Offset;

/// A broken timing-model invariant, with the values that broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An instruction issued before its fetch group cleared decode
    /// (issue < fetch + 2 in the 5-stage pipe).
    IssueBeforeDecode {
        /// PC of the instruction.
        pc: u32,
        /// Its fetch cycle.
        fetch: u64,
        /// Its issue cycle.
        issue: u64,
    },
    /// An instruction completed no later than it issued.
    CompletionNotAfterIssue {
        /// PC of the instruction.
        pc: u32,
        /// Its issue cycle.
        issue: u64,
        /// Its completion cycle.
        complete: u64,
    },
    /// In-order issue went backwards in time.
    IssueWentBackwards {
        /// PC of the instruction.
        pc: u32,
        /// Issue cycle of the previous instruction.
        prev: u64,
        /// This instruction's (earlier) issue cycle.
        issue: u64,
    },
    /// More instructions issued in one cycle than the configured width.
    IssueWidthExceeded {
        /// The overfull cycle.
        cycle: u64,
        /// Instructions issued in it.
        issued: u32,
        /// The configured issue width.
        width: u32,
    },
    /// More loads issued in one cycle than the configured limit.
    LoadLimitExceeded {
        /// The overfull cycle.
        cycle: u64,
        /// Loads issued in it.
        loads: u32,
        /// The configured per-cycle load limit.
        limit: u32,
    },
    /// More stores issued in one cycle than the configured limit.
    StoreLimitExceeded {
        /// The overfull cycle.
        cycle: u64,
        /// Stores issued in it.
        stores: u32,
        /// The configured per-cycle store limit.
        limit: u32,
    },
    /// A memory reference's architectural address disagrees with the
    /// full-adder sum of base and offset — the replay path (and the
    /// functional executor behind it) must always use the true address,
    /// whatever the prediction circuit produced.
    AddressNotFullAdder {
        /// PC of the access.
        pc: u32,
        /// The address the access used.
        addr: u32,
        /// `base + offset` through the full adder.
        full_adder: u32,
    },
    /// A cycle booked more data-cache reads than the pipeline can legally
    /// generate.
    ReadPortsOversubscribed {
        /// The overfull cycle.
        cycle: u64,
        /// Reads booked in it.
        reads: u32,
        /// The sound ceiling (see [`InvariantChecker::check_finish`]).
        ceiling: u32,
    },
    /// A cycle booked more data-cache writes than the store buffer can
    /// legally retire.
    WritePortsOversubscribed {
        /// The overfull cycle.
        cycle: u64,
        /// Writes booked in it.
        writes: u32,
        /// The sound ceiling.
        ceiling: u32,
    },
    /// A conservation law over the finished run's statistics failed.
    StatsConservation {
        /// Which law, e.g. `"pred_loads.attempts + not_speculated == loads"`.
        law: &'static str,
        /// Left-hand side.
        left: u64,
        /// Right-hand side.
        right: u64,
    },
    /// LTB statistics were recorded without an LTB configured, or an
    /// enabled LTB recorded none.
    LtbStatsMismatch {
        /// Whether the configuration enables the LTB.
        configured: bool,
        /// Whether the run recorded LTB statistics.
        recorded: bool,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use InvariantViolation::*;
        match self {
            IssueBeforeDecode { pc, fetch, issue } => write!(
                f,
                "pc {pc:#010x} issued at {issue} before clearing decode (fetched {fetch})"
            ),
            CompletionNotAfterIssue { pc, issue, complete } => write!(
                f,
                "pc {pc:#010x} completed at {complete}, not after its issue at {issue}"
            ),
            IssueWentBackwards { pc, prev, issue } => write!(
                f,
                "pc {pc:#010x} issued at {issue}, before the previous instruction at {prev}"
            ),
            IssueWidthExceeded { cycle, issued, width } => {
                write!(f, "cycle {cycle} issued {issued} instructions (width {width})")
            }
            LoadLimitExceeded { cycle, loads, limit } => {
                write!(f, "cycle {cycle} issued {loads} loads (limit {limit})")
            }
            StoreLimitExceeded { cycle, stores, limit } => {
                write!(f, "cycle {cycle} issued {stores} stores (limit {limit})")
            }
            AddressNotFullAdder { pc, addr, full_adder } => write!(
                f,
                "pc {pc:#010x} accessed {addr:#010x}, but base+offset is {full_adder:#010x}"
            ),
            ReadPortsOversubscribed { cycle, reads, ceiling } => {
                write!(f, "cycle {cycle} booked {reads} d-cache reads (ceiling {ceiling})")
            }
            WritePortsOversubscribed { cycle, writes, ceiling } => {
                write!(f, "cycle {cycle} booked {writes} d-cache writes (ceiling {ceiling})")
            }
            StatsConservation { law, left, right } => {
                write!(f, "stats conservation broken: {law} ({left} != {right})")
            }
            LtbStatsMismatch { configured, recorded } => write!(
                f,
                "ltb configured={configured} but stats recorded={recorded}"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Cross-checks the timing pipeline instruction by instruction, then audits
/// the finished run. See the module docs for what is checked and when the
/// checker is active.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    cfg: MachineConfig,
    last_issue: u64,
    issued_now: u32,
    loads_now: u32,
    stores_now: u32,
    seen_any: bool,
}

impl InvariantChecker {
    /// A checker for one run of a machine with configuration `cfg`.
    pub fn new(cfg: &MachineConfig) -> InvariantChecker {
        InvariantChecker {
            cfg: *cfg,
            last_issue: 0,
            issued_now: 0,
            loads_now: 0,
            stores_now: 0,
            seen_any: false,
        }
    }

    /// Serializes the checker's cursor state for a machine checkpoint, so
    /// a restored run enforces the same per-group invariants the
    /// uninterrupted run would have.
    pub(crate) fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        w.u64(self.last_issue);
        w.u32(self.issued_now);
        w.u32(self.loads_now);
        w.u32(self.stores_now);
        w.bool(self.seen_any);
    }

    /// Rebuilds [`InvariantChecker::save_state`] for a machine with
    /// configuration `cfg`.
    pub(crate) fn load_state(
        cfg: &MachineConfig,
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<InvariantChecker, fac_core::snap::SnapError> {
        Ok(InvariantChecker {
            cfg: *cfg,
            last_issue: r.u64("checker last_issue")?,
            issued_now: r.u32("checker issued_now")?,
            loads_now: r.u32("checker loads_now")?,
            stores_now: r.u32("checker stores_now")?,
            seen_any: r.bool("checker seen_any")?,
        })
    }

    /// Checks one committed instruction against its pipeline timing.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant.
    pub fn check_insn(
        &mut self,
        ex: &Executed,
        info: &IssueInfo,
    ) -> Result<(), InvariantViolation> {
        let pc = ex.pc;
        if info.issue < info.fetch + 2 {
            return Err(InvariantViolation::IssueBeforeDecode {
                pc,
                fetch: info.fetch,
                issue: info.issue,
            });
        }
        if info.complete <= info.issue {
            return Err(InvariantViolation::CompletionNotAfterIssue {
                pc,
                issue: info.issue,
                complete: info.complete,
            });
        }
        if self.seen_any && info.issue < self.last_issue {
            return Err(InvariantViolation::IssueWentBackwards {
                pc,
                prev: self.last_issue,
                issue: info.issue,
            });
        }
        if !self.seen_any || info.issue != self.last_issue {
            self.last_issue = info.issue;
            self.issued_now = 0;
            self.loads_now = 0;
            self.stores_now = 0;
            self.seen_any = true;
        }
        self.issued_now += 1;
        if self.issued_now > self.cfg.issue_width {
            return Err(InvariantViolation::IssueWidthExceeded {
                cycle: info.issue,
                issued: self.issued_now,
                width: self.cfg.issue_width,
            });
        }
        if let Some(mref) = &ex.mem {
            if mref.is_store {
                self.stores_now += 1;
                if self.stores_now > self.cfg.max_stores_per_cycle {
                    return Err(InvariantViolation::StoreLimitExceeded {
                        cycle: info.issue,
                        stores: self.stores_now,
                        limit: self.cfg.max_stores_per_cycle,
                    });
                }
            } else {
                self.loads_now += 1;
                if self.loads_now > self.cfg.max_loads_per_cycle {
                    return Err(InvariantViolation::LoadLimitExceeded {
                        cycle: info.issue,
                        loads: self.loads_now,
                        limit: self.cfg.max_loads_per_cycle,
                    });
                }
            }
            // Whatever the prediction circuit guessed (and whatever fault
            // corrupted it), the committed access — in particular every
            // replayed one — must use the full-adder address.
            let full_adder = mref.base_value.wrapping_add(match mref.offset {
                Offset::Const(d) => d as i32 as u32,
                Offset::Reg(v) => v,
            });
            if mref.addr != full_adder {
                return Err(InvariantViolation::AddressNotFullAdder {
                    pc,
                    addr: mref.addr,
                    full_adder,
                });
            }
        }
        Ok(())
    }

    /// Audits the finished run: conservation laws over the prediction
    /// statistics and the data-cache port bookings still live in the
    /// pipeline's port ring.
    ///
    /// The port ceilings have deliberate slack over the configured port
    /// counts: an access issued at `c` may book a read at `c` (speculative)
    /// and another at `c+1` (replay), so a cycle can legally receive up to
    /// `2 * max_loads_per_cycle` reads; a full store buffer forcibly
    /// retires one extra write per admitted store on top of the
    /// `dcache_write_ports` the drain respects.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant.
    pub fn check_finish(
        &self,
        stats: &SimStats,
        pipe: &Pipeline,
    ) -> Result<(), InvariantViolation> {
        let law = |law, left, right| {
            if left == right {
                Ok(())
            } else {
                Err(InvariantViolation::StatsConservation { law, left, right })
            }
        };
        let pl = &stats.pred_loads;
        let ps = &stats.pred_stores;
        law("pred_loads.attempts + not_speculated == loads", pl.attempts() + pl.not_speculated, stats.loads)?;
        law(
            "pred_stores.attempts + not_speculated == stores",
            ps.attempts() + ps.not_speculated,
            stats.stores,
        )?;
        law("extra_accesses == total prediction fails", stats.extra_accesses, pl.fails() + ps.fails())?;
        if self.cfg.fac.is_some() {
            law(
                "fail_causes + verify_catches == total prediction fails",
                stats.fail_causes.iter().sum::<u64>() + stats.verify_catches,
                pl.fails() + ps.fails(),
            )?;
        }
        if self.cfg.fault_plan.is_none() {
            // The exact circuit's failure signals are conservative: no
            // signal means the prediction is correct, so the decoupled
            // compare must never be the thing that catches a failure.
            law("verify_catches == 0 without fault injection", stats.verify_catches, 0)?;
        }
        let ltb_configured = self.cfg.fac.is_none() && self.cfg.ltb_entries.is_some();
        if ltb_configured != stats.ltb.is_some() {
            return Err(InvariantViolation::LtbStatsMismatch {
                configured: ltb_configured,
                recorded: stats.ltb.is_some(),
            });
        }
        let read_ceiling = 2 * self.cfg.max_loads_per_cycle;
        let write_ceiling = self.cfg.dcache_write_ports + self.cfg.max_stores_per_cycle;
        for (cycle, reads, writes) in pipe.port_usage() {
            if reads > read_ceiling {
                return Err(InvariantViolation::ReadPortsOversubscribed {
                    cycle,
                    reads,
                    ceiling: read_ceiling,
                });
            }
            if writes > write_ceiling {
                return Err(InvariantViolation::WritePortsOversubscribed {
                    cycle,
                    writes,
                    ceiling: write_ceiling,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_isa::Insn;

    fn nop_at(pc: u32) -> Executed {
        Executed { pc, insn: Insn::Nop, taken: None, mem: None }
    }

    #[test]
    fn accepts_a_legal_schedule() {
        let cfg = MachineConfig::paper_baseline();
        let mut chk = InvariantChecker::new(&cfg);
        for i in 0..8u64 {
            let info = IssueInfo {
                fetch: i / 4,
                issue: i / 4 + 2,
                complete: i / 4 + 3,
                replayed: false,
            };
            chk.check_insn(&nop_at(0x1000 + 4 * i as u32), &info).unwrap();
        }
    }

    #[test]
    fn rejects_issue_before_decode() {
        let cfg = MachineConfig::paper_baseline();
        let mut chk = InvariantChecker::new(&cfg);
        let info = IssueInfo { fetch: 5, issue: 6, complete: 7, replayed: false };
        assert!(matches!(
            chk.check_insn(&nop_at(0), &info),
            Err(InvariantViolation::IssueBeforeDecode { .. })
        ));
    }

    #[test]
    fn rejects_backwards_issue() {
        let cfg = MachineConfig::paper_baseline();
        let mut chk = InvariantChecker::new(&cfg);
        let ok = IssueInfo { fetch: 3, issue: 5, complete: 6, replayed: false };
        chk.check_insn(&nop_at(0), &ok).unwrap();
        let bad = IssueInfo { fetch: 2, issue: 4, complete: 5, replayed: false };
        assert!(matches!(
            chk.check_insn(&nop_at(4), &bad),
            Err(InvariantViolation::IssueWentBackwards { .. })
        ));
    }

    #[test]
    fn rejects_overwide_issue() {
        let cfg = MachineConfig::paper_baseline();
        let mut chk = InvariantChecker::new(&cfg);
        let info = IssueInfo { fetch: 0, issue: 2, complete: 3, replayed: false };
        for i in 0..cfg.issue_width {
            chk.check_insn(&nop_at(4 * i), &info).unwrap();
        }
        assert!(matches!(
            chk.check_insn(&nop_at(0x100), &info),
            Err(InvariantViolation::IssueWidthExceeded { .. })
        ));
    }

    #[test]
    fn rejects_non_full_adder_address() {
        use crate::exec::MemRef;
        use fac_isa::{AddrMode, LoadOp, Reg};
        let cfg = MachineConfig::paper_baseline();
        let mut chk = InvariantChecker::new(&cfg);
        let ex = Executed {
            pc: 0x40,
            insn: Insn::Load {
                op: LoadOp::Lw,
                rt: Reg::T0,
                ea: AddrMode::BaseDisp { base: Reg::S0, disp: 8 },
            },
            taken: None,
            mem: Some(MemRef {
                addr: 0x1010, // should be 0x1008
                base_value: 0x1000,
                base_reg: Reg::S0,
                offset: Offset::Const(8),
                is_store: false,
                size: 4,
            }),
        };
        let info = IssueInfo { fetch: 0, issue: 2, complete: 4, replayed: true };
        assert!(matches!(
            chk.check_insn(&ex, &info),
            Err(InvariantViolation::AddressNotFullAdder { .. })
        ));
    }
}
