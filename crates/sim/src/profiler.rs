//! Machine-independent prediction profiling (the paper's §5.3 methodology).
//!
//! Tables 3 and 4 of the paper report *prediction failure rates* gathered by
//! profiling every executed load and store against the circuit, independent
//! of pipeline interactions (whether a particular access got a speculation
//! slot). This module runs a program functionally and applies the predictor
//! to every reference.

use crate::exec::ArchState;
use crate::stats::{OffsetHistogram, PredCounters, RefClass};
use fac_asm::Program;
use fac_core::{AddrFields, Predictor, PredictorConfig};

/// Result of a profiling run.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Committed instructions.
    pub insts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads by reference class (global/stack/general).
    pub loads_by_class: [u64; 3],
    /// Stores by reference class.
    pub stores_by_class: [u64; 3],
    /// Load offset distributions by class (Figure 3).
    pub load_offsets: [OffsetHistogram; 3],
    /// Prediction counters for loads (every load is "attempted").
    pub pred_loads: PredCounters,
    /// Prediction counters for stores.
    pub pred_stores: PredCounters,
    /// Load prediction failures by reference class.
    pub load_fails_by_class: [u64; 3],
    /// Bytes of memory touched at exit.
    pub mem_footprint: u64,
}

impl ProfileReport {
    /// Total references.
    pub fn refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of loads in `class`; 0.0 when no load committed.
    pub fn load_class_fraction(&self, class: RefClass) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.loads_by_class[class.index()] as f64 / self.loads as f64
        }
    }

    /// Prediction failure rate of the loads in `class`; 0.0 when the class
    /// saw no load (never NaN).
    pub fn load_fail_rate(&self, class: RefClass) -> f64 {
        let n = self.loads_by_class[class.index()];
        if n == 0 {
            0.0
        } else {
            self.load_fails_by_class[class.index()] as f64 / n as f64
        }
    }

    /// Overall load prediction failure rate; 0.0 when no load committed.
    pub fn load_fail_rate_all(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_fails_by_class.iter().sum::<u64>() as f64 / self.loads as f64
        }
    }
}

/// Profiles every memory reference of `program` against a predictor with
/// the given circuit configuration and cache geometry.
///
/// # Errors
///
/// Returns [`crate::SimError::Exec`] if the program misbehaves and
/// [`crate::SimError::Runaway`] if it does not halt within `max_insts`.
pub fn profile_predictions(
    program: &Program,
    fields: AddrFields,
    config: PredictorConfig,
    max_insts: u64,
) -> Result<ProfileReport, crate::SimError> {
    let predictor = Predictor::new(fields, config);
    let mut state = ArchState::new(program);
    let mut rep = ProfileReport::default();

    while !state.halted {
        crate::machine::check_budget(rep.insts, max_insts)?;
        let ex = state.step(program)?;
        rep.insts += 1;
        let Some(mref) = ex.mem else { continue };
        let class = RefClass::of(mref.base_reg);
        let counters = if mref.is_store { &mut rep.pred_stores } else { &mut rep.pred_loads };
        let correct = predictor.predict(mref.base_value, mref.offset).is_correct();
        if mref.is_reg_reg() {
            counters.attempts_rr += 1;
            if !correct {
                counters.fails_rr += 1;
            }
        } else {
            counters.attempts_const += 1;
            if !correct {
                counters.fails_const += 1;
            }
        }
        if mref.is_store {
            rep.stores += 1;
            rep.stores_by_class[class.index()] += 1;
        } else {
            rep.loads += 1;
            rep.loads_by_class[class.index()] += 1;
            if !correct {
                rep.load_fails_by_class[class.index()] += 1;
            }
            rep.load_offsets[class.index()].record(mref.offset_value());
        }
    }
    rep.mem_footprint = state.mem.footprint();
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_asm::{Asm, SoftwareSupport};
    use fac_isa::Reg;

    fn program(sw: &SoftwareSupport) -> Program {
        let mut a = Asm::new();
        a.gp_word("x", 3);
        a.gp_array("buf", 256, 4);
        a.gp_addr(Reg::S0, "buf", 0);
        a.li(Reg::T0, 32);
        a.label("loop");
        a.lw_gp(Reg::T1, "x", 0);
        a.sw_pi(Reg::T1, Reg::S0, 4);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "loop");
        a.halt();
        a.link("p", sw).unwrap()
    }

    #[test]
    fn counts_every_reference() {
        let p = program(&SoftwareSupport::on());
        let rep = profile_predictions(
            &p,
            AddrFields::for_direct_mapped(16 * 1024, 32),
            PredictorConfig::default(),
            1_000_000,
        )
        .unwrap();
        assert_eq!(rep.loads, 32);
        assert_eq!(rep.stores, 32);
        assert_eq!(rep.pred_loads.attempts(), 32);
        assert_eq!(rep.pred_stores.attempts(), 32);
        assert_eq!(rep.loads_by_class[0], 32, "gp loads are global class");
        assert_eq!(rep.stores_by_class[2], 32, "post-inc stores are general class");
    }

    #[test]
    fn aligned_gp_never_fails_with_support() {
        let p = program(&SoftwareSupport::on());
        let rep = profile_predictions(
            &p,
            AddrFields::for_direct_mapped(16 * 1024, 32),
            PredictorConfig::default(),
            1_000_000,
        )
        .unwrap();
        assert_eq!(rep.pred_loads.fails(), 0);
    }

    #[test]
    fn block_size_16_vs_32_changes_only_adder_width() {
        let p = program(&SoftwareSupport::off());
        for block in [16, 32] {
            let rep = profile_predictions(
                &p,
                AddrFields::for_direct_mapped(16 * 1024, block),
                PredictorConfig::default(),
                1_000_000,
            )
            .unwrap();
            // Failure count can only shrink as the block grows.
            let _ = rep;
        }
    }
}
