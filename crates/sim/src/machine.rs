//! Top-level simulation driver.

use crate::checker::{InvariantChecker, InvariantViolation};
use crate::config::{ConfigError, MachineConfig};
use crate::exec::{ArchState, ExecError};
use crate::obs::{NullObserver, Observer};
use crate::pipeline::Pipeline;
use crate::stats::{RefClass, SimStats};
use fac_asm::Program;

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Program name.
    pub program: String,
    /// All measured statistics.
    pub stats: SimStats,
    /// Final architectural state (for functional checks).
    pub final_state: ArchState,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Functional execution failed.
    Exec(ExecError),
    /// The instruction budget was exhausted before `halt`.
    Runaway(u64),
    /// The machine configuration cannot be honoured
    /// ([`MachineConfig::validate`] failed).
    InvalidConfig(ConfigError),
    /// The timing model broke one of its own invariants (detected by the
    /// [`InvariantChecker`], active in debug builds and under
    /// [`MachineConfig::with_checks`]).
    Invariant(InvariantViolation),
    /// An I/O operation on behalf of the simulator failed (writing a
    /// `--json` / `--events` export, for example). Carries the path (`"-"`
    /// for stdout) and the OS error message.
    Io {
        /// The file being written (or `"-"` for stdout).
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A benchmark job panicked. The parallel harness in `fac-bench`
    /// catches the unwind at the job boundary so one bad cell surfaces as
    /// a typed error instead of poisoning the worker pool.
    Panic {
        /// The name of the job that panicked.
        job: String,
        /// The rendered panic payload.
        message: String,
    },
    /// A machine snapshot could not be restored: the file is corrupt,
    /// truncated, from an unknown format version, or belongs to a
    /// different (configuration, program) pair. A rejected snapshot is
    /// never partially applied — restore is all-or-nothing.
    Checkpoint {
        /// The snapshot being read (`"<memory>"` for in-memory restores).
        path: String,
        /// Why the snapshot was rejected.
        reason: String,
    },
    /// A benchmark job exceeded its wall-clock deadline. Raised by the
    /// watchdog in `fac-bench`'s parallel harness when `--timeout-secs`
    /// is set.
    Timeout {
        /// The name of the job that overran.
        job: String,
        /// The configured deadline, in seconds.
        secs: u64,
    },
    /// A request was shed by the campaign server's bounded admission
    /// queue: accepting it would have grown the backlog past the
    /// configured limit. Overload is answered with this typed error —
    /// load is shed, memory is never allowed to grow without bound.
    Overloaded {
        /// Simulations already admitted (queued or running).
        pending: usize,
        /// The admission limit in force.
        limit: usize,
    },
    /// A serving endpoint could not be dialed at all: the socket path is
    /// stale (`ENOENT`), nothing is listening (`ECONNREFUSED`), or the
    /// host rejected the connection outright. Distinguished from a plain
    /// [`SimError::Io`] so clients and operators can tell "the server is
    /// not there" from "the connection broke mid-flight".
    Unreachable {
        /// The endpoint that was dialed, rendered (`unix:/path` / `host:port`).
        endpoint: String,
        /// The underlying OS error, rendered.
        reason: String,
    },
    /// The client-side circuit breaker for an endpoint is open: the last
    /// `failures` consecutive transport attempts failed, and the breaker
    /// is refusing new attempts until the cooldown elapses and a half-open
    /// probe succeeds. Fail-fast signal — no connection was attempted.
    CircuitOpen {
        /// The endpoint the breaker guards, rendered.
        endpoint: String,
        /// Consecutive transport failures observed when the breaker opened.
        failures: u32,
    },
    /// A supervised campaign worker crash-looped: it was restarted
    /// `restarts` times within the last `window_secs` seconds and the
    /// supervisor has stopped respawning it. Work routed to it fails over
    /// to surviving workers; the quarantine itself is an operator page.
    WorkerQuarantined {
        /// The worker, rendered (`"worker-2 (unix:/run/fleet/w2.sock)"`).
        worker: String,
        /// Restarts observed inside the window when the breaker tripped.
        restarts: u32,
        /// The crash-loop detection window, seconds.
        window_secs: u64,
    },
    /// The machine and the golden reference oracle disagreed — the lockstep
    /// differential checker ([`crate::Lockstep`]) found the first retired
    /// instruction after which the architectural states differ.
    Divergence {
        /// Zero-based retirement index of the diverging instruction.
        step: u64,
        /// PC of the diverging instruction.
        pc: u32,
        /// What the oracle holds, rendered (`"$t3 = 0x0000002a"`).
        expected: String,
        /// What the machine holds, rendered.
        actual: String,
    },
}

impl SimError {
    /// Wraps an [`std::io::Error`] with the path it occurred on.
    pub fn io(path: &str, err: std::io::Error) -> SimError {
        SimError::Io { path: path.to_string(), message: err.to_string() }
    }

    /// Wraps a snapshot decoding failure with the file it came from.
    pub(crate) fn checkpoint(path: &str, err: fac_core::snap::SnapError) -> SimError {
        SimError::Checkpoint { path: path.to_string(), reason: err.to_string() }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::Runaway(n) => write!(f, "no halt within {n} instructions"),
            SimError::InvalidConfig(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::Invariant(v) => write!(f, "timing invariant violated: {v}"),
            SimError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            SimError::Panic { job, message } => write!(f, "job '{job}' panicked: {message}"),
            SimError::Checkpoint { path, reason } => {
                write!(f, "cannot restore snapshot {path}: {reason}")
            }
            SimError::Timeout { job, secs } => {
                write!(f, "job '{job}' exceeded its {secs}s deadline")
            }
            SimError::Overloaded { pending, limit } => write!(
                f,
                "server overloaded: {pending} simulations pending (admission limit {limit})"
            ),
            SimError::Unreachable { endpoint, reason } => {
                write!(f, "endpoint {endpoint} unreachable: {reason}")
            }
            SimError::CircuitOpen { endpoint, failures } => write!(
                f,
                "circuit breaker open for {endpoint} after {failures} consecutive \
                 transport failures"
            ),
            SimError::WorkerQuarantined { worker, restarts, window_secs } => write!(
                f,
                "{worker} quarantined: {restarts} restarts within {window_secs}s \
                 (crash loop); not respawning"
            ),
            SimError::Divergence { step, pc, expected, actual } => write!(
                f,
                "architectural divergence from the golden oracle at step {step}, \
                 pc {pc:#010x}: oracle has {expected}, machine has {actual}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::InvalidConfig(e)
    }
}

impl From<InvariantViolation> for SimError {
    fn from(v: InvariantViolation) -> SimError {
        SimError::Invariant(v)
    }
}

/// The simulated machine: couples the functional executor with the timing
/// pipeline and gathers statistics.
///
/// ```
/// use fac_asm::{Asm, SoftwareSupport};
/// use fac_isa::Reg;
/// use fac_sim::{Machine, MachineConfig};
///
/// let mut a = Asm::new();
/// a.gp_word("x", 1);
/// a.lw_gp(Reg::T0, "x", 0);
/// a.addiu(Reg::T0, Reg::T0, 41);
/// a.halt();
/// let program = a.link("demo", &SoftwareSupport::on()).unwrap();
///
/// let report = Machine::new(MachineConfig::paper_baseline().with_fac())
///     .run(&program)
///     .unwrap();
/// assert_eq!(report.final_state.regs[Reg::T0.index()], 42);
/// assert!(report.stats.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    max_insts: u64,
}

/// The single step-budget rule every executor shares — the detailed
/// [`Session`], [`Machine::run_traced`], the [`crate::Oracle`], the
/// [`crate::Lockstep`] checker, the profiler, and the fast functional tier
/// in [`crate::tier`]. Called with the number of instructions already
/// retired *before* attempting the next one: a program that halts at
/// exactly `max` retired instructions succeeds, and the watchdog fires as
/// [`SimError::Runaway`] only when instruction `max + 1` would be needed.
/// Keeping this in one place pins every tier to the identical boundary, so
/// lockstep comparisons never desynchronize at budget exhaustion.
pub(crate) fn check_budget(insts: u64, max: u64) -> Result<(), SimError> {
    if insts >= max {
        return Err(SimError::Runaway(max));
    }
    Ok(())
}

/// Records the reference-classification statistics for one instruction
/// (shared with the lockstep runner in [`crate::oracle`]).
pub(crate) fn record_ref(stats: &mut SimStats, ex: &crate::Executed) {
    let Some(mref) = &ex.mem else { return };
    let class = RefClass::of(mref.base_reg);
    if mref.is_store {
        stats.stores += 1;
        stats.stores_by_class[class.index()] += 1;
    } else {
        stats.loads += 1;
        stats.loads_by_class[class.index()] += 1;
        if mref.is_reg_reg() {
            stats.loads_reg_reg += 1;
        }
        stats.load_offsets[class.index()].record(mref.offset_value());
    }
}

impl Machine {
    /// Creates a machine with the given configuration.
    pub fn new(config: MachineConfig) -> Machine {
        Machine { config, max_insts: 2_000_000_000 }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Caps the number of simulated instructions (guards against runaway
    /// workloads; default 2 × 10⁹).
    pub fn with_max_insts(mut self, max: u64) -> Machine {
        self.max_insts = max;
        self
    }

    /// Whether this run carries the invariant checker: always in debug
    /// builds, opt-in via [`MachineConfig::with_checks`] elsewhere.
    fn checker(&self) -> Option<InvariantChecker> {
        (self.config.checks || cfg!(debug_assertions)).then(|| InvariantChecker::new(&self.config))
    }

    /// Runs `program` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid, the program
    /// leaves its text segment or does not halt within the instruction
    /// budget, a strict-memory trap fires, or (with checking enabled) the
    /// timing model breaks one of its invariants.
    pub fn run(&self, program: &Program) -> Result<SimReport, SimError> {
        self.run_observed(program, &mut NullObserver)
    }

    /// Runs `program` with a live [`Observer`] receiving every pipeline
    /// event. [`Machine::run`] is this with the [`NullObserver`], whose
    /// emission sites monomorphize away — timing and statistics are
    /// bit-identical whatever observer is attached (pinned down by
    /// `crates/sim/tests/obs.rs`).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_observed<O: Observer>(
        &self,
        program: &Program,
        obs: &mut O,
    ) -> Result<SimReport, SimError> {
        self.begin(program)?.run_observed(obs)
    }

    /// Starts an incremental simulation [`Session`] over `program`.
    ///
    /// [`Machine::run`] is `begin(..)?.run()`; a session additionally
    /// supports stepping a bounded number of instructions and
    /// [checkpointing](Session::checkpoint) the complete machine state
    /// mid-run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the configuration cannot be
    /// honoured.
    pub fn begin<'p>(&self, program: &'p Program) -> Result<Session<'p>, SimError> {
        self.config.validate()?;
        let mut state = ArchState::new(program);
        state.strict_mem = self.config.strict_mem;
        Ok(Session {
            config: self.config,
            max_insts: self.max_insts,
            program,
            state,
            pipe: Pipeline::new(self.config),
            stats: SimStats::default(),
            checker: self.checker(),
        })
    }

    /// Restores a [`Session`] from snapshot bytes produced by
    /// [`Session::checkpoint`]. The snapshot must come from this exact
    /// configuration and program — both are fingerprinted into the
    /// snapshot and verified before any state is applied.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] when the snapshot is corrupt, truncated,
    /// from another format version, or from a different configuration or
    /// program; [`SimError::InvalidConfig`] when this machine's own
    /// configuration is invalid.
    pub fn restore<'p>(
        &self,
        program: &'p Program,
        bytes: &[u8],
    ) -> Result<Session<'p>, SimError> {
        self.restore_labelled(program, bytes, "<memory>")
    }

    /// Restores a [`Session`] from a snapshot file written by
    /// [`Session::checkpoint_to`].
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the file cannot be read; otherwise as
    /// [`Machine::restore`].
    pub fn restore_from<'p>(
        &self,
        program: &'p Program,
        path: &std::path::Path,
    ) -> Result<Session<'p>, SimError> {
        let label = path.display().to_string();
        let bytes = std::fs::read(path).map_err(|e| SimError::io(&label, e))?;
        self.restore_labelled(program, &bytes, &label)
    }

    fn restore_labelled<'p>(
        &self,
        program: &'p Program,
        bytes: &[u8],
        label: &str,
    ) -> Result<Session<'p>, SimError> {
        use fac_core::snap::{SnapError, SnapReader};
        self.config.validate()?;
        let ck = |e: SnapError| SimError::checkpoint(label, e);
        let payload = crate::ckpt::unframe(bytes).map_err(ck)?;
        let mut r = SnapReader::new(payload);

        let config_fp = r.u64("config fingerprint").map_err(ck)?;
        let want = crate::ckpt::config_fingerprint(&self.config);
        if config_fp != want {
            return Err(ck(SnapError::new(format!(
                "snapshot was taken under a different machine configuration \
                 (fingerprint {config_fp:#018x}, this machine is {want:#018x})"
            ))));
        }
        let program_fp = r.u64("program fingerprint").map_err(ck)?;
        let want = crate::ckpt::program_fingerprint(program);
        if program_fp != want {
            return Err(ck(SnapError::new(format!(
                "snapshot was taken over a different program \
                 (fingerprint {program_fp:#018x}, '{}' is {want:#018x})",
                program.name
            ))));
        }

        let state = ArchState::load_state(&mut r).map_err(ck)?;
        let stats = crate::ckpt::load_stats(&mut r).map_err(ck)?;
        let mut pipe = Pipeline::new(self.config);
        pipe.load_state(&mut r).map_err(ck)?;
        let snapshot_has_checker = r.bool("checker present").map_err(ck)?;
        let checker = match (snapshot_has_checker, self.checker()) {
            (true, Some(_)) => Some(InvariantChecker::load_state(&self.config, &mut r).map_err(ck)?),
            (true, None) => {
                // Read past the state so trailing-byte detection still works.
                let _ = InvariantChecker::load_state(&self.config, &mut r).map_err(ck)?;
                None
            }
            (false, Some(_)) => {
                return Err(ck(SnapError::new(
                    "snapshot lacks invariant-checker state but this machine \
                     runs with checking enabled"
                        .to_string(),
                )))
            }
            (false, None) => None,
        };
        r.finish().map_err(ck)?;

        Ok(Session {
            config: self.config,
            max_insts: self.max_insts,
            program,
            state,
            pipe,
            stats,
            checker,
        })
    }

    /// Runs `program`, additionally recording the pipeline timing of every
    /// committed instruction (see [`crate::render_diagram`]). Intended for
    /// short programs — the trace grows with the dynamic instruction count.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_traced(
        &self,
        program: &Program,
    ) -> Result<(SimReport, Vec<crate::TracedInsn>), SimError> {
        self.config.validate()?;
        let mut state = ArchState::new(program);
        state.strict_mem = self.config.strict_mem;
        let mut pipe = Pipeline::new(self.config);
        let mut stats = SimStats::default();
        let mut checker = self.checker();
        let mut trace = Vec::new();

        while !state.halted {
            check_budget(stats.insts, self.max_insts)?;
            let ex = state.step(program)?;
            stats.insts += 1;
            record_ref(&mut stats, &ex);
            let timing = pipe.advance_traced(&ex, &mut stats);
            if let Some(chk) = &mut checker {
                chk.check_insn(&ex, &timing)?;
            }
            trace.push(crate::TracedInsn { pc: ex.pc, insn: ex.insn, timing });
        }

        stats.cycles = pipe.finish(&mut stats);
        stats.mem_footprint = state.mem.footprint();
        if let Some(chk) = &checker {
            chk.check_finish(&stats, &pipe)?;
        }
        Ok((SimReport { program: program.name.clone(), stats, final_state: state }, trace))
    }
}

/// An in-flight simulation: the coupled functional + timing state of one
/// [`Machine`] running one program.
///
/// Obtained from [`Machine::begin`] (fresh) or [`Machine::restore`] /
/// [`Machine::restore_from`] (from a snapshot). A session can run to
/// completion, step instruction-by-instruction, or serialize its complete
/// state with [`Session::checkpoint`] so a later process can resume the
/// run bit-identically:
///
/// ```
/// use fac_asm::{Asm, SoftwareSupport};
/// use fac_isa::Reg;
/// use fac_sim::{Machine, MachineConfig};
///
/// let mut a = Asm::new();
/// a.li(Reg::T0, 0);
/// for _ in 0..8 {
///     a.addiu(Reg::T0, Reg::T0, 1);
/// }
/// a.halt();
/// let program = a.link("count", &SoftwareSupport::on()).unwrap();
/// let machine = Machine::new(MachineConfig::paper_baseline().with_fac());
///
/// // Run half the program, checkpoint, and abandon the session.
/// let mut first = machine.begin(&program).unwrap();
/// for _ in 0..4 {
///     first.step().unwrap();
/// }
/// let snapshot = first.checkpoint();
///
/// // A restored session finishes with the same report as a straight run.
/// let resumed = machine.restore(&program, &snapshot).unwrap().run().unwrap();
/// let straight = machine.run(&program).unwrap();
/// assert_eq!(resumed, straight);
/// ```
#[derive(Debug, Clone)]
pub struct Session<'p> {
    config: MachineConfig,
    max_insts: u64,
    program: &'p Program,
    state: ArchState,
    pipe: Pipeline,
    stats: SimStats,
    checker: Option<InvariantChecker>,
}

impl<'p> Session<'p> {
    /// Whether the program has executed its `halt`.
    pub fn halted(&self) -> bool {
        self.state.halted
    }

    /// Committed instructions so far.
    pub fn insts(&self) -> u64 {
        self.stats.insts
    }

    /// Executes one instruction (functional + timing). Returns `false`
    /// when the program had already halted, `true` otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.step_observed(&mut NullObserver)
    }

    /// [`Session::step`] with a live [`Observer`].
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn step_observed<O: Observer>(&mut self, obs: &mut O) -> Result<bool, SimError> {
        if self.state.halted {
            return Ok(false);
        }
        check_budget(self.stats.insts, self.max_insts)?;
        let ex = self.state.step(self.program)?;
        self.stats.insts += 1;
        record_ref(&mut self.stats, &ex);
        if let Some(chk) = &mut self.checker {
            let info = self.pipe.advance_obs(&ex, &mut self.stats, obs);
            chk.check_insn(&ex, &info)?;
        } else {
            self.pipe.advance_obs(&ex, &mut self.stats, obs);
        }
        Ok(true)
    }

    /// Runs to completion and produces the report.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_observed(&mut NullObserver)
    }

    /// [`Session::run`] with a live [`Observer`].
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_observed<O: Observer>(mut self, obs: &mut O) -> Result<SimReport, SimError> {
        while self.step_observed(obs)? {}
        self.finish()
    }

    /// Drains the pipeline and closes the books on this session, whether or
    /// not the program has halted, producing the report for the
    /// instructions committed so far. This is how the sampled tier in
    /// [`crate::tier`] ends a measurement window mid-program: the window's
    /// cycles include the full drain of in-flight work, exactly as a run
    /// that halted there would count them. The whole-run invariant check
    /// only applies to sessions that actually reached `halt` — a partial
    /// window legitimately ends with work the checker would flag.
    ///
    /// # Errors
    ///
    /// [`SimError::Invariant`] when the program has halted and the final
    /// invariant check fails.
    pub fn finish(mut self) -> Result<SimReport, SimError> {
        self.stats.cycles = self.pipe.finish(&mut self.stats);
        self.stats.mem_footprint = self.state.mem.footprint();
        if let Some(chk) = &self.checker {
            if self.state.halted {
                chk.check_finish(&self.stats, &self.pipe)?;
            }
        }
        Ok(SimReport {
            program: self.program.name.clone(),
            stats: self.stats,
            final_state: self.state,
        })
    }

    /// The current architectural state (registers, memory, PC).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Serializes the complete machine state — architectural registers and
    /// memory, every timing structure, statistics, and all deterministic
    /// random streams — into a self-describing snapshot (format documented
    /// in `ckpt.rs`). Restoring it with [`Machine::restore`] and running
    /// to completion yields the same [`SimReport`] as never stopping.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = fac_core::snap::SnapWriter::new();
        w.u64(crate::ckpt::config_fingerprint(&self.config));
        w.u64(crate::ckpt::program_fingerprint(self.program));
        self.state.save_state(&mut w);
        crate::ckpt::save_stats(&self.stats, &mut w);
        self.pipe.save_state(&mut w);
        match &self.checker {
            None => w.u8(0),
            Some(chk) => {
                w.u8(1);
                chk.save_state(&mut w);
            }
        }
        crate::ckpt::frame(&w.into_bytes())
    }

    /// Writes [`Session::checkpoint`] to `path` atomically (temporary
    /// file, fsync, rename) so a crash mid-write never leaves a torn
    /// snapshot behind.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the write fails.
    pub fn checkpoint_to(&self, path: &std::path::Path) -> Result<(), SimError> {
        use std::io::Write;
        let label = path.display().to_string();
        let err = |e: std::io::Error| SimError::io(&label, e);
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp).map_err(err)?;
        f.write_all(&self.checkpoint()).map_err(err)?;
        f.sync_all().map_err(err)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_asm::{Asm, SoftwareSupport};
    use fac_isa::Reg;

    fn sum_program(sw: &SoftwareSupport) -> Program {
        let mut a = Asm::new();
        a.gp_array("data", 1024, 4);
        a.gp_addr(Reg::S0, "data", 0);
        // Fill 256 words with 1..=256 and sum them.
        a.li(Reg::T0, 256);
        a.li(Reg::T1, 1);
        a.label("fill");
        a.sw_pi(Reg::T1, Reg::S0, 4);
        a.addiu(Reg::T1, Reg::T1, 1);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "fill");
        a.gp_addr(Reg::S0, "data", 0);
        a.li(Reg::T0, 256);
        a.li(Reg::V0, 0);
        a.label("sum");
        a.lw_pi(Reg::T2, Reg::S0, 4);
        a.addu(Reg::V0, Reg::V0, Reg::T2);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "sum");
        a.halt();
        a.link("sum", sw).unwrap()
    }

    #[test]
    fn functional_result_is_config_independent() {
        let expected = (1..=256u32).sum::<u32>();
        for sw in [SoftwareSupport::on(), SoftwareSupport::off()] {
            let p = sum_program(&sw);
            for cfg in [
                MachineConfig::paper_baseline(),
                MachineConfig::paper_baseline().with_fac(),
                MachineConfig::paper_baseline().with_one_cycle_loads(),
                MachineConfig::paper_baseline().with_perfect_dcache(),
            ] {
                let r = Machine::new(cfg).run(&p).unwrap();
                assert_eq!(r.final_state.regs[Reg::V0.index()], expected);
            }
        }
    }

    #[test]
    fn fac_speeds_up_the_kernel() {
        let p = sum_program(&SoftwareSupport::on());
        let base = Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();
        let fac = Machine::new(MachineConfig::paper_baseline().with_fac()).run(&p).unwrap();
        assert!(
            fac.stats.cycles < base.stats.cycles,
            "fac {} vs base {}",
            fac.stats.cycles,
            base.stats.cycles
        );
        assert_eq!(fac.stats.insts, base.stats.insts, "same dynamic instruction count");
    }

    #[test]
    fn stats_are_consistent() {
        let p = sum_program(&SoftwareSupport::on());
        let r = Machine::new(MachineConfig::paper_baseline().with_fac()).run(&p).unwrap();
        let s = &r.stats;
        assert_eq!(s.loads + s.stores, s.refs());
        assert_eq!(s.loads, s.loads_by_class.iter().sum::<u64>());
        assert_eq!(s.stores, s.stores_by_class.iter().sum::<u64>());
        assert_eq!(
            s.loads,
            s.load_offsets.iter().map(|h| h.total()).sum::<u64>()
        );
        assert!(s.ipc() > 0.0 && s.ipc() <= 4.0);
        assert!(s.mem_footprint > 0);
        let pl = &s.pred_loads;
        assert_eq!(pl.attempts() + pl.not_speculated, s.loads);
    }

    #[test]
    fn runaway_guard_fires() {
        let mut a = Asm::new();
        a.label("spin");
        a.j("spin");
        let p = a.link("spin", &SoftwareSupport::on()).unwrap();
        let err = Machine::new(MachineConfig::paper_baseline())
            .with_max_insts(1000)
            .run(&p)
            .unwrap_err();
        assert!(matches!(err, SimError::Runaway(1000)));
    }

    #[test]
    fn strict_memory_traps_misaligned_access() {
        let mut a = Asm::new();
        a.gp_array("buf", 16, 4);
        a.gp_addr(Reg::S0, "buf", 0);
        a.addiu(Reg::S0, Reg::S0, 2);
        a.lw(Reg::T0, 0, Reg::S0);
        a.halt();
        let p = a.link("mis", &SoftwareSupport::on()).unwrap();

        // Lenient (default): unaligned loads are modelled as-is.
        Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();

        let err = Machine::new(MachineConfig::paper_baseline().with_strict_memory())
            .run(&p)
            .unwrap_err();
        assert!(
            matches!(err, SimError::Exec(ExecError::Misaligned { size: 4, .. })),
            "got {err}"
        );
    }

    #[test]
    fn strict_memory_traps_unmapped_load() {
        let mut a = Asm::new();
        a.li(Reg::S0, 0x4bad_0000u32 as i32);
        a.lw(Reg::T0, 0, Reg::S0);
        a.halt();
        let p = a.link("wild", &SoftwareSupport::on()).unwrap();

        // Lenient: untouched memory reads as zero.
        let r = Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();
        assert_eq!(r.final_state.regs[Reg::T0.index()], 0);

        let err = Machine::new(MachineConfig::paper_baseline().with_strict_memory())
            .run(&p)
            .unwrap_err();
        assert!(
            matches!(err, SimError::Exec(ExecError::Unmapped { addr: 0x4bad_0000, .. })),
            "got {err}"
        );
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let p = sum_program(&SoftwareSupport::on());
        let mut cfg = MachineConfig::paper_baseline();
        cfg.dcache.size_bytes = 12345;
        let err = Machine::new(cfg).run(&p).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "got {err}");
    }

    #[test]
    fn tlb_is_optional_and_recorded() {
        let p = sum_program(&SoftwareSupport::on());
        let with = Machine::new(MachineConfig::paper_baseline().with_tlb()).run(&p).unwrap();
        let without = Machine::new(MachineConfig::paper_baseline()).run(&p).unwrap();
        assert!(with.stats.tlb.is_some());
        assert!(without.stats.tlb.is_none());
        assert!(with.stats.tlb.unwrap().accesses == with.stats.refs());
    }
}
