//! The cycle-stamped structured event stream.
//!
//! The pipeline emits one [`Event`] per interesting micro-architectural
//! occurrence through an [`Observer`]. Observers are threaded through the
//! timing model as a generic parameter, so the no-op [`NullObserver`]
//! monomorphizes every emission site away: a run without observability is
//! instruction-for-instruction the code that ran before the layer existed.

use super::json::Json;
use crate::stats::RefClass;
use fac_core::FailureCause;
use std::io::Write;

/// Which cache an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// Instruction cache.
    ICache,
    /// Data cache.
    DCache,
}

impl CacheKind {
    /// Short label used in event streams (`"i"` / `"d"`).
    pub fn label(self) -> &'static str {
        match self {
            CacheKind::ICache => "i",
            CacheKind::DCache => "d",
        }
    }
}

/// What stalled the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// The store buffer was full; the pipeline stalled while the oldest
    /// entry retired (§5.5).
    StoreBuffer,
}

impl StallKind {
    /// Stable machine-readable name.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::StoreBuffer => "store_buffer",
        }
    }
}

/// One cycle-stamped micro-architectural event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A load or store issued a speculative cache access in EX (fast
    /// address calculation or LTB prediction).
    Speculate {
        /// Cycle the speculative access went to the cache.
        cycle: u64,
        /// PC of the access.
        pc: u32,
        /// Reference class of the base register.
        class: RefClass,
        /// `true` for stores.
        is_store: bool,
        /// The address the speculative access used.
        predicted: u32,
    },
    /// The verification circuit checked a speculation.
    Verify {
        /// Cycle of the check (same cycle as the speculation).
        cycle: u64,
        /// PC of the access.
        pc: u32,
        /// `true` when the speculation was consumed (no failure signal and
        /// the decoupled compare agreed).
        ok: bool,
        /// `true` when only the decoupled full-adder compare caught a bad
        /// speculation whose failure signals claimed success — always
        /// `false` for the exact circuit, nonzero under fault injection.
        compare_caught: bool,
    },
    /// A mispredicted access replayed in MEM with the true address.
    Replay {
        /// Cycle of the replayed cache access.
        cycle: u64,
        /// PC of the access.
        pc: u32,
        /// Reference class of the base register.
        class: RefClass,
        /// `true` for stores.
        is_store: bool,
        /// Dominant failure cause; `None` when no signal fired (LTB wrong
        /// guess, or a fault caught by the compare backstop).
        cause: Option<FailureCause>,
        /// The offset operand's value (feeds the per-site offset
        /// histograms of the attribution table).
        offset: i32,
    },
    /// The pipeline stalled.
    Stall {
        /// Cycle the stall began.
        cycle: u64,
        /// What stalled.
        kind: StallKind,
        /// Cycles lost.
        penalty: u64,
    },
    /// A cache access missed.
    CacheMiss {
        /// Cycle of the access.
        cycle: u64,
        /// Which cache.
        cache: CacheKind,
        /// PC of the instruction (fetch PC for I-cache misses).
        pc: u32,
        /// The missing address.
        addr: u32,
        /// `true` for stores (D-cache only).
        is_store: bool,
    },
    /// An injected fault corrupted a prediction whose failure signals
    /// claimed success — the decoupled verify compare intercepted it.
    FaultInjected {
        /// Cycle of the corrupted speculation.
        cycle: u64,
        /// PC of the access.
        pc: u32,
        /// The corrupted predicted address.
        predicted: u32,
        /// The true effective address.
        actual: u32,
    },
}

impl Event {
    /// The cycle the event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::Speculate { cycle, .. }
            | Event::Verify { cycle, .. }
            | Event::Replay { cycle, .. }
            | Event::Stall { cycle, .. }
            | Event::CacheMiss { cycle, .. }
            | Event::FaultInjected { cycle, .. } => cycle,
        }
    }

    /// Stable machine-readable event-type tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Speculate { .. } => "speculate",
            Event::Verify { .. } => "verify",
            Event::Replay { .. } => "replay",
            Event::Stall { .. } => "stall",
            Event::CacheMiss { .. } => "cache_miss",
            Event::FaultInjected { .. } => "fault_injected",
        }
    }

    /// The event as a JSON object (one JSONL line of the `--events`
    /// stream).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("t", Json::Str(self.tag().to_string()));
        o.set("cycle", Json::U64(self.cycle()));
        match *self {
            Event::Speculate { pc, class, is_store, predicted, .. } => {
                o.set("pc", Json::U64(pc as u64));
                o.set("class", Json::Str(class.label().to_string()));
                o.set("store", Json::Bool(is_store));
                o.set("predicted", Json::U64(predicted as u64));
            }
            Event::Verify { pc, ok, compare_caught, .. } => {
                o.set("pc", Json::U64(pc as u64));
                o.set("ok", Json::Bool(ok));
                o.set("compare_caught", Json::Bool(compare_caught));
            }
            Event::Replay { pc, class, is_store, cause, offset, .. } => {
                o.set("pc", Json::U64(pc as u64));
                o.set("class", Json::Str(class.label().to_string()));
                o.set("store", Json::Bool(is_store));
                match cause {
                    Some(c) => o.set("cause", Json::Str(c.label().to_string())),
                    None => o.set("cause", Json::Null),
                };
                o.set("offset", Json::I64(offset as i64));
            }
            Event::Stall { kind, penalty, .. } => {
                o.set("kind", Json::Str(kind.label().to_string()));
                o.set("penalty", Json::U64(penalty));
            }
            Event::CacheMiss { cache, pc, addr, is_store, .. } => {
                o.set("cache", Json::Str(cache.label().to_string()));
                o.set("pc", Json::U64(pc as u64));
                o.set("addr", Json::U64(addr as u64));
                o.set("store", Json::Bool(is_store));
            }
            Event::FaultInjected { pc, predicted, actual, .. } => {
                o.set("pc", Json::U64(pc as u64));
                o.set("predicted", Json::U64(predicted as u64));
                o.set("actual", Json::U64(actual as u64));
            }
        }
        o
    }
}

/// A sink for pipeline events.
///
/// Implementations must be side-effect-only: the timing model behaves
/// identically whatever the observer does (the disabled-observer test in
/// `crates/sim/tests/obs.rs` pins this down).
///
/// `Send` is a supertrait so an observed run can move across the
/// `fac-bench` parallel job harness like an unobserved one — an observer
/// holding a thread-bound sink would otherwise quietly serialize every
/// sweep that wants events.
pub trait Observer: Send {
    /// `false` lets emission sites skip even constructing the [`Event`];
    /// the default is enabled.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one event.
    fn on_event(&mut self, event: &Event);
}

/// Forwarding impl so observers can be passed around by mutable reference
/// (and composed into tuples without giving up ownership).
impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn on_event(&mut self, event: &Event) {
        (**self).on_event(event)
    }
}

/// The disabled observer: every emission site compiles away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn on_event(&mut self, _event: &Event) {}
}

/// An observer that appends every event to a vector — handy in tests and
/// for short programs.
#[derive(Debug, Clone, Default)]
pub struct VecObserver {
    /// The collected events, in emission order.
    pub events: Vec<Event>,
}

impl Observer for VecObserver {
    fn on_event(&mut self, event: &Event) {
        self.events.push(*event);
    }
}

/// Streams events as JSON Lines to any writer.
///
/// I/O errors do not disturb the simulation: the first one is latched and
/// reported by [`JsonlWriter::finish`]. The writer also flushes on drop,
/// so an event stream abandoned on an early-error path (where nobody calls
/// `finish`) still reaches the OS instead of dying in a `BufWriter`.
pub struct JsonlWriter<W: Write> {
    sink: W,
    /// Events written so far.
    pub written: u64,
    error: Option<String>,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a writer.
    pub fn new(sink: W) -> JsonlWriter<W> {
        JsonlWriter { sink, written: 0, error: None }
    }

    /// Writes one arbitrary JSON document as a JSONL line — the access-log
    /// path of the campaign server, which shares this sink's error
    /// latching and flush-on-drop discipline with the event stream.
    ///
    /// The line is rendered to one buffer and issued as a single `write`,
    /// so concurrent writers interleave at line granularity, never
    /// mid-record.
    pub fn write_value(&mut self, doc: &Json) {
        if self.error.is_some() {
            return;
        }
        let mut line = doc.to_string();
        line.push('\n');
        if let Err(e) = self.sink.write_all(line.as_bytes()) {
            self.error = Some(e.to_string());
        } else {
            self.written += 1;
        }
    }

    /// Flushes without consuming the writer; an error is latched exactly
    /// like a write error (long-running sinks — access logs — flush
    /// periodically but only `finish` at shutdown).
    pub fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.sink.flush() {
            self.error = Some(e.to_string());
        }
    }

    /// Flushes and returns the number of events written, or the first I/O
    /// error message encountered.
    pub fn finish(mut self) -> Result<u64, String> {
        if let Err(e) = self.sink.flush() {
            self.error.get_or_insert_with(|| e.to_string());
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.written),
        }
    }
}

impl<W: Write> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        // Best-effort: `finish` already flushed on the normal path, and a
        // drop-time failure has nowhere to be reported anyway.
        let _ = self.sink.flush();
    }
}

impl<W: Write + Send> Observer for JsonlWriter<W> {
    fn on_event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.sink, "{}", event.to_json()) {
            self.error = Some(e.to_string());
        } else {
            self.written += 1;
        }
    }
}

/// Fans one event stream out to two observers (compose as `(a, (b, c))`
/// for more).
impl<A: Observer, B: Observer> Observer for (A, B) {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn on_event(&mut self, event: &Event) {
        if self.0.enabled() {
            self.0.on_event(event);
        }
        if self.1.enabled() {
            self.1.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_lines_are_tagged_and_stamped() {
        let ev = Event::Replay {
            cycle: 42,
            pc: 0x1000,
            class: RefClass::General,
            is_store: false,
            cause: Some(FailureCause::Overflow),
            offset: -8,
        };
        assert_eq!(
            ev.to_json().to_string(),
            r#"{"t":"replay","cycle":42,"pc":4096,"class":"general","store":false,"cause":"overflow","offset":-8}"#
        );
        assert_eq!(ev.cycle(), 42);
        assert_eq!(ev.tag(), "replay");
    }

    #[test]
    fn jsonl_writer_latches_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = JsonlWriter::new(Broken);
        w.on_event(&Event::Stall { cycle: 1, kind: StallKind::StoreBuffer, penalty: 2 });
        w.on_event(&Event::Stall { cycle: 2, kind: StallKind::StoreBuffer, penalty: 2 });
        assert!(w.finish().unwrap_err().contains("disk on fire"));
    }

    #[test]
    fn jsonl_writer_counts_lines() {
        let mut buf = Vec::new();
        {
            let mut w = JsonlWriter::new(&mut buf);
            for cycle in 0..3 {
                w.on_event(&Event::Stall { cycle, kind: StallKind::StoreBuffer, penalty: 2 });
            }
            assert_eq!(w.finish().unwrap(), 3);
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            super::super::json::parse(line).expect("each line is valid JSON");
        }
    }

    /// `write_value` lines parse back through the hardened JSON parser,
    /// count toward `written`, and share the latched-error discipline.
    #[test]
    fn write_value_round_trips_and_latches() {
        let mut buf = Vec::new();
        {
            let mut w = JsonlWriter::new(&mut buf);
            let mut doc = Json::obj();
            doc.set("trace_id", Json::Str("c0ffee".to_string()));
            doc.set("outcome", Json::Str("hit".to_string()));
            doc.set("total_us", Json::U64(1234));
            w.write_value(&doc);
            w.on_event(&Event::Stall { cycle: 1, kind: StallKind::StoreBuffer, penalty: 2 });
            assert_eq!(w.finish().unwrap(), 2, "write_value counts toward written");
        }
        let text = String::from_utf8(buf).unwrap();
        let first = super::super::json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("trace_id").and_then(Json::as_str), Some("c0ffee"));
        assert_eq!(first.get("total_us").and_then(Json::as_u64), Some(1234));

        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = JsonlWriter::new(Broken);
        w.write_value(&Json::obj());
        w.write_value(&Json::obj());
        assert!(w.finish().unwrap_err().contains("disk on fire"));
    }

    /// Abandoning the writer (early-error paths that never call `finish`)
    /// still flushes buffered events to the underlying sink.
    #[test]
    fn jsonl_writer_flushes_on_drop() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        struct FlushProbe(Arc<AtomicBool>);
        impl Write for FlushProbe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.store(true, Ordering::SeqCst);
                Ok(())
            }
        }
        let flushed = Arc::new(AtomicBool::new(false));
        {
            let mut w = JsonlWriter::new(FlushProbe(Arc::clone(&flushed)));
            w.on_event(&Event::Stall { cycle: 1, kind: StallKind::StoreBuffer, penalty: 2 });
        }
        assert!(flushed.load(Ordering::SeqCst), "drop must flush the sink");
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
        let pair = (NullObserver, VecObserver::default());
        assert!(pair.enabled(), "a live member keeps the pair enabled");
    }
}
