//! # Observability: metrics, events, attribution, time series
//!
//! The paper's evaluation is aggregate tables; this layer makes the same
//! information available mechanically and at finer grain:
//!
//! - [`MetricsRegistry`] — every simulator counter under a stable dotted
//!   name, with JSON and one-line-per-metric text export
//!   ([`RegisterMetrics`] is implemented for [`crate::SimStats`],
//!   [`fac_mem::CacheStats`], [`fac_mem::TlbStats`],
//!   [`fac_core::LtbStats`] and friends);
//! - [`Event`] — a cycle-stamped structured event stream (speculations,
//!   verifications, replays, stalls, cache misses, injected faults) behind
//!   the zero-cost-when-disabled [`Observer`] trait, with a JSONL exporter
//!   ([`JsonlWriter`]) here and a Chrome-trace exporter
//!   ([`crate::chrome_trace`]) next to the Figure-1 renderer;
//! - [`PcAttribution`] — per-PC speculation attribution, the per-site
//!   analogue of the paper's Tables 3–4;
//! - [`IntervalSampler`] — event counts bucketed every K cycles, so replay
//!   storms and cache warm-up are visible over time.
//!
//! Run a machine with any observer via [`crate::Machine::run_observed`];
//! [`Recorder`] bundles the lot for CLI use:
//!
//! ```
//! use fac_asm::{Asm, SoftwareSupport};
//! use fac_isa::Reg;
//! use fac_sim::obs::Recorder;
//! use fac_sim::{Machine, MachineConfig};
//!
//! let mut a = Asm::new();
//! a.far_array("arr", 4096, 4);
//! a.la(Reg::S0, "arr", 28);
//! a.lw(Reg::T0, 8, Reg::S0); // 28+8 crosses the block: replays
//! a.halt();
//! let p = a.link("demo", &SoftwareSupport::on()).unwrap();
//!
//! let mut rec = Recorder::new().with_sampler(64);
//! let report = Machine::new(MachineConfig::paper_baseline().with_fac())
//!     .run_observed(&p, &mut rec)
//!     .unwrap();
//! assert_eq!(rec.attribution.total_replays(), report.stats.pred_loads.fails());
//! ```

mod attr;
mod events;
pub mod json;
mod metrics;
mod sampler;

pub use attr::{PcAttribution, SiteStats};
pub use events::{CacheKind, Event, JsonlWriter, NullObserver, Observer, StallKind, VecObserver};
pub use json::{Json, JsonError};
pub use metrics::{Metric, MetricsRegistry, RegisterMetrics};
pub use sampler::{IntervalSampler, Sample};

use std::io::Write;

/// The kitchen-sink observer the CLI uses: per-PC attribution, optional
/// interval sampling, and an optional JSONL event sink, in one pass.
#[derive(Default)]
pub struct Recorder {
    /// Per-PC attribution table (always on).
    pub attribution: PcAttribution,
    /// Interval time series, when sampling was requested.
    pub sampler: Option<IntervalSampler>,
    sink: Option<JsonlWriter<Box<dyn Write + Send>>>,
    /// Total events observed (whether or not a sink is attached).
    pub events_seen: u64,
}

impl Recorder {
    /// A recorder with attribution only.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Adds interval sampling with the given window (cycles).
    pub fn with_sampler(mut self, interval: u64) -> Recorder {
        self.sampler = Some(IntervalSampler::new(interval));
        self
    }

    /// Streams events as JSONL into `sink`.
    pub fn with_sink(mut self, sink: Box<dyn Write + Send>) -> Recorder {
        self.sink = Some(JsonlWriter::new(sink));
        self
    }

    /// Flushes the event sink; returns the number of events written, or
    /// the first I/O error message. A recorder without a sink reports 0.
    pub fn finish_sink(&mut self) -> Result<u64, String> {
        match self.sink.take() {
            Some(w) => w.finish(),
            None => Ok(0),
        }
    }

    /// The recorder's run document fragment: attribution (top `top_sites`
    /// sites) and, when sampling, the time series.
    pub fn to_json(&self, top_sites: usize) -> Json {
        let mut o = Json::obj();
        o.set("events", Json::U64(self.events_seen));
        o.set("attribution", self.attribution.to_json(top_sites));
        if let Some(s) = &self.sampler {
            o.set("samples", s.to_json());
        }
        o
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, event: &Event) {
        self.events_seen += 1;
        self.attribution.on_event(event);
        if let Some(s) = &mut self.sampler {
            s.on_event(event);
        }
        if let Some(w) = &mut self.sink {
            w.on_event(event);
        }
    }
}
