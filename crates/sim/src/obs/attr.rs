//! Per-PC speculation attribution: the per-site analogue of the paper's
//! Tables 3–4.
//!
//! The paper reports failure rates aggregated over whole programs; this
//! observer attributes them to individual static references, so "which
//! loads mispredict" has a first-class answer: for every PC that ever
//! speculated, its attempt/replay counts, failure-cause breakdown, and the
//! offset histogram of its replays.

use super::events::{Event, Observer};
use super::json::Json;
use crate::stats::{OffsetHistogram, RefClass};
use fac_core::FailureCause;
use std::collections::HashMap;

/// Everything attributed to one static memory reference (one PC).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteStats {
    /// PC of the reference.
    pub pc: u32,
    /// Reference class (from the base register).
    pub class: RefClass,
    /// `true` when the site is a store.
    pub is_store: bool,
    /// Speculative accesses issued from this PC.
    pub speculations: u64,
    /// Replays (mispredictions) at this PC.
    pub replays: u64,
    /// Replays whose bad speculation only the decoupled verify compare
    /// caught (fault injection).
    pub compare_caught: u64,
    /// Replay counts per [`FailureCause::index`].
    pub causes: [u64; 5],
    /// Offset distribution of the replayed accesses.
    pub offsets: OffsetHistogram,
}

impl SiteStats {
    fn new(pc: u32, class: RefClass, is_store: bool) -> SiteStats {
        SiteStats {
            pc,
            class,
            is_store,
            speculations: 0,
            replays: 0,
            compare_caught: 0,
            causes: [0; 5],
            offsets: OffsetHistogram::default(),
        }
    }

    /// Fraction of this site's speculations that replayed; 0.0 when the
    /// site never speculated (it can still replay under an LTB, whose
    /// guesses are not counted as speculations here).
    pub fn fail_rate(&self) -> f64 {
        if self.speculations == 0 {
            0.0
        } else {
            self.replays as f64 / self.speculations as f64
        }
    }

    /// The site as a JSON object (one entry of the `--json` attribution
    /// table).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("pc", Json::U64(self.pc as u64));
        o.set("class", Json::Str(self.class.label().to_string()));
        o.set("store", Json::Bool(self.is_store));
        o.set("speculations", Json::U64(self.speculations));
        o.set("replays", Json::U64(self.replays));
        o.set("fail_rate", Json::F64(self.fail_rate()));
        o.set("compare_caught", Json::U64(self.compare_caught));
        let mut causes = Json::obj();
        for cause in FailureCause::ALL {
            causes.set(cause.label(), Json::U64(self.causes[cause.index()]));
        }
        o.set("causes", causes);
        let mut offsets = Json::obj();
        offsets.set("neg", Json::U64(self.offsets.neg));
        offsets.set(
            "by_bits",
            Json::Arr(self.offsets.by_bits.iter().map(|&c| Json::U64(c)).collect()),
        );
        offsets.set("more", Json::U64(self.offsets.more));
        o.set("replay_offsets", offsets);
        o
    }
}

/// The attribution observer: a map from PC to [`SiteStats`].
#[derive(Debug, Clone, Default)]
pub struct PcAttribution {
    sites: HashMap<u32, SiteStats>,
}

impl PcAttribution {
    /// An empty table.
    pub fn new() -> PcAttribution {
        PcAttribution::default()
    }

    /// Number of distinct PCs observed.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when no site was observed.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Stats for one PC.
    pub fn site(&self, pc: u32) -> Option<&SiteStats> {
        self.sites.get(&pc)
    }

    /// The `n` sites with the most replays, ties broken toward more
    /// speculations then lower PC (deterministic output ordering).
    pub fn top_sites(&self, n: usize) -> Vec<SiteStats> {
        let mut all: Vec<SiteStats> = self.sites.values().copied().collect();
        all.sort_by(|a, b| {
            b.replays
                .cmp(&a.replays)
                .then(b.speculations.cmp(&a.speculations))
                .then(a.pc.cmp(&b.pc))
        });
        all.truncate(n);
        all
    }

    /// Total replays across all sites.
    pub fn total_replays(&self) -> u64 {
        self.sites.values().map(|s| s.replays).sum()
    }

    /// The attribution table as JSON: summary plus the top-`n` sites.
    pub fn to_json(&self, n: usize) -> Json {
        let mut o = Json::obj();
        o.set("sites", Json::U64(self.len() as u64));
        o.set("total_replays", Json::U64(self.total_replays()));
        o.set("top_sites", Json::Arr(self.top_sites(n).iter().map(|s| s.to_json()).collect()));
        o
    }

    fn entry(&mut self, pc: u32, class: RefClass, is_store: bool) -> &mut SiteStats {
        self.sites.entry(pc).or_insert_with(|| SiteStats::new(pc, class, is_store))
    }
}

impl Observer for PcAttribution {
    fn on_event(&mut self, event: &Event) {
        match *event {
            Event::Speculate { pc, class, is_store, .. } => {
                self.entry(pc, class, is_store).speculations += 1;
            }
            Event::Replay { pc, class, is_store, cause, offset, .. } => {
                let site = self.entry(pc, class, is_store);
                site.replays += 1;
                if let Some(c) = cause {
                    site.causes[c.index()] += 1;
                }
                site.offsets.record(offset);
            }
            Event::FaultInjected { pc, .. } => {
                if let Some(site) = self.sites.get_mut(&pc) {
                    site.compare_caught += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(pc: u32, cause: Option<FailureCause>, offset: i32) -> Event {
        Event::Replay {
            cycle: 1,
            pc,
            class: RefClass::General,
            is_store: false,
            cause,
            offset,
        }
    }

    fn speculate(pc: u32) -> Event {
        Event::Speculate {
            cycle: 1,
            pc,
            class: RefClass::General,
            is_store: false,
            predicted: 0,
        }
    }

    #[test]
    fn sites_accumulate_and_rank() {
        let mut attr = PcAttribution::new();
        for _ in 0..10 {
            attr.on_event(&speculate(0x100));
        }
        attr.on_event(&speculate(0x200));
        for _ in 0..3 {
            attr.on_event(&replay(0x100, Some(FailureCause::Overflow), 36));
        }
        attr.on_event(&replay(0x200, Some(FailureCause::NegIndexReg), -4));

        assert_eq!(attr.len(), 2);
        assert_eq!(attr.total_replays(), 4);
        let top = attr.top_sites(10);
        assert_eq!(top[0].pc, 0x100);
        assert_eq!(top[0].replays, 3);
        assert_eq!(top[0].causes[FailureCause::Overflow.index()], 3);
        assert!((top[0].fail_rate() - 0.3).abs() < 1e-12);
        assert_eq!(top[1].pc, 0x200);
        assert_eq!(top[1].offsets.neg, 1);
        assert_eq!(attr.top_sites(1).len(), 1);
    }

    #[test]
    fn fail_rate_with_zero_speculations_is_zero() {
        let mut attr = PcAttribution::new();
        attr.on_event(&replay(0x300, None, 0));
        let site = *attr.site(0x300).unwrap();
        assert_eq!(site.fail_rate(), 0.0, "no NaN for replay-only sites");
        let json = site.to_json().to_string();
        assert!(json.contains("\"fail_rate\":0.0"), "{json}");
    }

    #[test]
    fn json_shape() {
        let mut attr = PcAttribution::new();
        attr.on_event(&speculate(0x10));
        attr.on_event(&replay(0x10, Some(FailureCause::GenCarry), 4));
        let doc = attr.to_json(5);
        assert_eq!(doc.get("sites").and_then(Json::as_u64), Some(1));
        let sites = doc.get("top_sites").and_then(Json::as_arr).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(
            sites[0].get("causes").and_then(|c| c.get("gen_carry")).and_then(Json::as_u64),
            Some(1)
        );
    }
}
