//! A minimal JSON document model with a writer and a strict parser.
//!
//! The build environment vendors no serialization crates, so the
//! observability layer carries its own: enough JSON to emit metric
//! registries, event streams, Chrome traces and experiment tables, and to
//! parse them back (the round-trip property tests and `--json` consumers
//! depend on both directions).
//!
//! Numbers are kept in three exact lanes — `U64`, `I64`, `F64` — so counter
//! values survive a round trip bit-for-bit instead of being squeezed
//! through a double. Non-finite floats (which JSON cannot represent) are
//! written as `null`: an absent measurement, not a fabricated `0.0` that
//! would silently mask a bad-rate bug in whatever produced it.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (unsigned lane; exact).
    U64(u64),
    /// A negative integer (signed lane; exact).
    I64(i64),
    /// A floating-point number. Non-finite values serialize as `null`
    /// (and [`Json::as_f64`] refuses to read them back as numbers).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (and round-trips).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object; panics on non-objects (a
    /// programming error in the emitter, not a data error).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes a key from an object and returns its value.
    pub fn take(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Obj(fields) => {
                fields.iter().position(|(k, _)| k == key).map(|i| fields.remove(i).1)
            }
            _ => None,
        }
    }

    /// The value as a u64 if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an f64 (any numeric lane). Non-finite `F64`s read as
    /// `None`, matching their `null` serialization.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) if v.is_finite() => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with `indent`-space indentation (for human-diffable
    /// artifacts like golden files and benchmark snapshots).
    pub fn to_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

/// Compact single-line serialization (`Json::to_string`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * depth));
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest round-trip representation; guarantee a
    // decimal point or exponent so the parser keeps the value in the F64
    // lane.
    let s = format!("{v:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// The deepest container nesting [`parse`] accepts. The parser recurses
/// once per nesting level, so without this bound an adversarial payload of
/// a few kilobytes of `[` could exhaust the stack of whatever thread is
/// parsing it — fatal for a remote-facing consumer like the campaign
/// server. Every artifact this workspace emits nests a handful of levels.
pub const MAX_DEPTH: usize = 128;

/// The largest input [`parse`] accepts, in bytes (16 MiB). A bound on
/// attacker-controlled allocation; far above any artifact we produce.
pub const MAX_INPUT_BYTES: usize = 16 * 1024 * 1024;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// Adversarial-input bounds: documents nested deeper than [`MAX_DEPTH`]
/// or larger than [`MAX_INPUT_BYTES`] are rejected with a typed
/// [`JsonError`] — never a stack overflow or an unbounded allocation.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    if input.len() > MAX_INPUT_BYTES {
        return Err(JsonError {
            message: format!(
                "input too large: {} bytes (limit {MAX_INPUT_BYTES})",
                input.len()
            ),
            at: 0,
        });
    }
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Bumps the container nesting depth, rejecting pathological payloads
    /// before the recursion can threaten the stack.
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        let v = self.array_body()?;
        self.depth -= 1;
        Ok(v)
    }

    fn array_body(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.descend()?;
        let v = self.object_body()?;
        self.depth -= 1;
        Ok(v)
    }

    fn object_body(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let c = self.unicode_escape()?;
                            s.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    /// Parses the payload of a `\u` escape (the `u` is current); handles
    /// UTF-16 surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError { message: "bad number".to_string(), at: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("-42", Json::I64(-42)),
            ("1.5", Json::F64(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let mut doc = Json::obj();
        doc.set("counts", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        doc.set("nested", {
            let mut o = Json::obj();
            o.set("x", Json::F64(0.25));
            o
        });
        let text = doc.to_string();
        assert_eq!(text, r#"{"counts":[1,2],"nested":{"x":0.25}}"#);
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(parse(&doc.to_pretty(2)).unwrap(), doc);
    }

    #[test]
    fn strings_escape_and_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}π €\u{1F600}";
        let v = Json::Str(nasty.into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        // Surrogate-pair escapes parse too.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        // Not `0.0`: a fabricated zero silently masks a bad-rate bug; an
        // absent value is honest and still valid JSON.
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::F64(f64::NEG_INFINITY).to_string(), "null");
        // The reader agrees: non-finite values are not numbers.
        assert_eq!(Json::F64(f64::NAN).as_f64(), None);
        assert_eq!(Json::F64(f64::INFINITY).as_f64(), None);
        assert_eq!(Json::F64(1.5).as_f64(), Some(1.5));
        // And whole floats keep their decimal point.
        assert_eq!(Json::F64(3.0).to_string(), "3.0");
        assert_eq!(parse("3.0").unwrap(), Json::F64(3.0));
    }

    #[test]
    fn take_removes_object_fields() {
        let mut doc = Json::obj();
        doc.set("a", Json::U64(1));
        doc.set("b", Json::U64(2));
        assert_eq!(doc.take("a"), Some(Json::U64(1)));
        assert_eq!(doc.take("a"), None);
        assert_eq!(doc.to_string(), r#"{"b":2}"#);
        assert_eq!(Json::U64(3).take("a"), None);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"", "{\"a\"}", "nul", "1 2", "{\"a\":1,}"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    /// Adversarial nesting must come back as a typed error, not a stack
    /// overflow — this parser faces the network in the campaign server.
    #[test]
    fn pathological_nesting_is_rejected_not_fatal() {
        // Far past the limit: would overflow the stack without the bound.
        for (open, close) in [("[", "]"), (r#"{"k":"#, "}")] {
            let deep = open.repeat(200_000) + &close.repeat(200_000);
            let err = parse(&deep).unwrap_err();
            assert!(err.message.contains("nesting"), "got: {err}");
        }
        // Unclosed nesting (the payload a slow-loris client would send).
        let unclosed = "[".repeat(1_000_000);
        assert!(parse(&unclosed).is_err());
    }

    /// Nesting exactly at the limit parses; one level past it does not.
    #[test]
    fn nesting_limit_is_exact() {
        let ok = "[".repeat(MAX_DEPTH) + "1" + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        let bad = "[".repeat(MAX_DEPTH + 1) + "1" + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&bad).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {err}");
        // Sibling containers do not accumulate depth: a wide flat array of
        // shallow objects is fine at any length.
        let wide = format!("[{}]", vec!["{\"a\":[1]}"; 4096].join(","));
        assert!(parse(&wide).is_ok());
    }

    /// Inputs past the size cap are refused before any work is done.
    #[test]
    fn oversized_input_is_rejected() {
        let huge = " ".repeat(MAX_INPUT_BYTES + 1);
        let err = parse(&huge).unwrap_err();
        assert!(err.message.contains("input too large"), "got: {err}");
        assert_eq!(err.at, 0);
    }
}
