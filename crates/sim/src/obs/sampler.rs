//! Interval time-series sampling: event counts bucketed every K cycles.
//!
//! Aggregate rates hide dynamics — a replay storm in a loop prologue and a
//! steady trickle average to the same number. Bucketing the event stream
//! into fixed cycle windows makes warm-up, storms and phase changes
//! visible, and exports as an array ready for plotting or `jq`.

use super::events::{Event, Observer};
use super::json::Json;

/// Event counts within one cycle window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Speculative accesses issued.
    pub speculations: u64,
    /// Misprediction replays.
    pub replays: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Pipeline stalls (store-buffer full).
    pub stalls: u64,
    /// Injected faults caught by the verify compare.
    pub faults: u64,
}

impl Sample {
    fn is_zero(&self) -> bool {
        *self == Sample::default()
    }
}

/// Buckets the event stream into windows of `interval` cycles.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    interval: u64,
    buckets: Vec<Sample>,
}

impl IntervalSampler {
    /// A sampler with the given window size (clamped to ≥ 1 cycle).
    pub fn new(interval: u64) -> IntervalSampler {
        IntervalSampler { interval: interval.max(1), buckets: Vec::new() }
    }

    /// The configured window size in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// All windows from cycle 0, in order (windows with no events are
    /// present and zero).
    pub fn samples(&self) -> &[Sample] {
        &self.buckets
    }

    fn bucket(&mut self, cycle: u64) -> &mut Sample {
        let idx = (cycle / self.interval) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Sample::default());
        }
        &mut self.buckets[idx]
    }

    /// The time series as JSON. Zero windows are elided from `points` (the
    /// `cycle` field of each point anchors it absolutely).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("interval", Json::U64(self.interval));
        o.set("windows", Json::U64(self.buckets.len() as u64));
        let mut points = Vec::new();
        for (i, s) in self.buckets.iter().enumerate() {
            if s.is_zero() {
                continue;
            }
            let mut p = Json::obj();
            p.set("cycle", Json::U64(i as u64 * self.interval));
            p.set("speculations", Json::U64(s.speculations));
            p.set("replays", Json::U64(s.replays));
            p.set("dcache_misses", Json::U64(s.dcache_misses));
            p.set("icache_misses", Json::U64(s.icache_misses));
            p.set("stalls", Json::U64(s.stalls));
            p.set("faults", Json::U64(s.faults));
            points.push(p);
        }
        o.set("points", Json::Arr(points));
        o
    }
}

impl Observer for IntervalSampler {
    fn on_event(&mut self, event: &Event) {
        let cycle = event.cycle();
        match event {
            Event::Speculate { .. } => self.bucket(cycle).speculations += 1,
            Event::Replay { .. } => self.bucket(cycle).replays += 1,
            Event::CacheMiss { cache, .. } => match cache {
                super::events::CacheKind::DCache => self.bucket(cycle).dcache_misses += 1,
                super::events::CacheKind::ICache => self.bucket(cycle).icache_misses += 1,
            },
            Event::Stall { .. } => self.bucket(cycle).stalls += 1,
            Event::FaultInjected { .. } => self.bucket(cycle).faults += 1,
            Event::Verify { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::events::{CacheKind, StallKind};
    use super::*;
    use crate::stats::RefClass;

    #[test]
    fn events_land_in_their_windows() {
        let mut s = IntervalSampler::new(100);
        for cycle in [0, 99, 100, 250] {
            s.on_event(&Event::Replay {
                cycle,
                pc: 0,
                class: RefClass::Global,
                is_store: false,
                cause: None,
                offset: 0,
            });
        }
        s.on_event(&Event::CacheMiss {
            cycle: 250,
            cache: CacheKind::DCache,
            pc: 0,
            addr: 0,
            is_store: false,
        });
        s.on_event(&Event::Stall { cycle: 5, kind: StallKind::StoreBuffer, penalty: 2 });
        let windows = s.samples();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].replays, 2);
        assert_eq!(windows[0].stalls, 1);
        assert_eq!(windows[1].replays, 1);
        assert_eq!(windows[2].replays, 1);
        assert_eq!(windows[2].dcache_misses, 1);
    }

    #[test]
    fn interval_is_clamped_and_json_elides_zero_windows() {
        let mut s = IntervalSampler::new(0);
        assert_eq!(s.interval(), 1);
        s.on_event(&Event::Stall { cycle: 4, kind: StallKind::StoreBuffer, penalty: 2 });
        let doc = s.to_json();
        assert_eq!(doc.get("windows").and_then(Json::as_u64), Some(5));
        let points = doc.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 1, "only the non-zero window is emitted");
        assert_eq!(points[0].get("cycle").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn out_of_order_cycles_are_fine() {
        let mut s = IntervalSampler::new(10);
        for cycle in [55, 5, 25] {
            s.on_event(&Event::Speculate {
                cycle,
                pc: 0,
                class: RefClass::Stack,
                is_store: true,
                predicted: 0,
            });
        }
        assert_eq!(s.samples()[0].speculations, 1);
        assert_eq!(s.samples()[2].speculations, 1);
        assert_eq!(s.samples()[5].speculations, 1);
    }
}
