//! The metrics registry: every quantity the simulator measures, under a
//! stable dotted name.
//!
//! Naming scheme (documented in DESIGN.md §7): `<subsystem>.<counter>`,
//! lowercase with underscores inside a segment —
//! `sim.cycles`, `dcache.misses`, `pred.loads.fails_const`,
//! `fail_cause.overflow`, `offsets.stack.bits4`. Derived rates are gauges
//! and end in `_rate`, `_ratio` or a similarly unambiguous suffix; they are
//! always finite (0.0 when the denominator is zero), so exported JSON stays
//! valid.

use super::json::{Json, JsonError};
use crate::profiler::ProfileReport;
use crate::stats::{OffsetHistogram, PredCounters, RefClass, SimStats};
use fac_core::{FailureCause, LtbStats};
use fac_mem::{CacheStats, TlbStats};
use std::collections::HashMap;

/// One registered metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// A monotonic event count (exact).
    Counter(u64),
    /// A derived quantity (rate, ratio, IPC); always finite.
    Gauge(f64),
}

/// An ordered collection of named metrics.
///
/// Registration order is preserved in every export, so text output diffs
/// cleanly between runs and JSON key order is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: Vec<(String, Metric)>,
    index: HashMap<String, usize>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Sets (or overwrites) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.set(name, Metric::Counter(value));
    }

    /// Sets (or overwrites) a gauge. Non-finite values are recorded as 0.0
    /// so exports never produce invalid JSON.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.set(name, Metric::Gauge(v));
    }

    fn set(&mut self, name: &str, metric: Metric) {
        if let Some(&i) = self.index.get(name) {
            self.entries[i].1 = metric;
        } else {
            self.index.insert(name.to_string(), self.entries.len());
            self.entries.push((name.to_string(), metric));
        }
    }

    /// Adds `delta` to a counter, creating it at zero first if needed.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.index.get(name) {
            Some(&i) => {
                if let Metric::Counter(v) = &mut self.entries[i].1 {
                    *v += delta;
                }
            }
            None => self.counter(name, delta),
        }
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.index.get(name).map(|&i| self.entries[i].1)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, metric)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Metric)> + '_ {
        self.entries.iter().map(|(n, m)| (n.as_str(), *m))
    }

    /// One line per metric: `name<TAB>value`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(v) => out.push_str(&format!("{name}\t{v}\n")),
                Metric::Gauge(v) => out.push_str(&format!("{name}\t{v:?}\n")),
            }
        }
        out
    }

    /// A flat JSON object: `{"name": value, ...}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(v) => obj.set(name, Json::U64(v)),
                Metric::Gauge(v) => obj.set(name, Json::F64(v)),
            };
        }
        obj
    }

    /// Rebuilds a registry from the output of [`MetricsRegistry::to_json`].
    /// Integer values become counters, fractional ones gauges.
    pub fn from_json(text: &str) -> Result<MetricsRegistry, JsonError> {
        let doc = super::json::parse(text)?;
        let Json::Obj(fields) = doc else {
            return Err(JsonError { message: "expected a metrics object".to_string(), at: 0 });
        };
        let mut reg = MetricsRegistry::new();
        for (name, value) in &fields {
            match value {
                Json::U64(v) => reg.counter(name, *v),
                Json::F64(v) => reg.gauge(name, *v),
                Json::I64(v) => reg.gauge(name, *v as f64),
                other => {
                    return Err(JsonError {
                        message: format!("metric {name} is not numeric: {other:?}"),
                        at: 0,
                    })
                }
            }
        }
        Ok(reg)
    }
}

/// Types that can publish themselves into a [`MetricsRegistry`] under a
/// name prefix.
pub trait RegisterMetrics {
    /// Registers every quantity of `self` under `prefix`.
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str);
}

impl RegisterMetrics for CacheStats {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.accesses"), self.accesses);
        reg.counter(&format!("{prefix}.reads"), self.reads);
        reg.counter(&format!("{prefix}.writes"), self.writes);
        reg.counter(&format!("{prefix}.misses"), self.misses);
        reg.counter(&format!("{prefix}.read_misses"), self.read_misses);
        reg.counter(&format!("{prefix}.writebacks"), self.writebacks);
        reg.gauge(&format!("{prefix}.miss_ratio"), self.miss_ratio());
    }
}

impl RegisterMetrics for TlbStats {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.accesses"), self.accesses);
        reg.counter(&format!("{prefix}.misses"), self.misses);
        reg.gauge(&format!("{prefix}.miss_ratio"), self.miss_ratio());
    }
}

impl RegisterMetrics for LtbStats {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.predictions"), self.predictions);
        reg.counter(&format!("{prefix}.correct"), self.correct);
        reg.counter(&format!("{prefix}.no_prediction"), self.no_prediction);
        reg.gauge(&format!("{prefix}.accuracy"), self.accuracy());
    }
}

impl RegisterMetrics for PredCounters {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.attempts_const"), self.attempts_const);
        reg.counter(&format!("{prefix}.fails_const"), self.fails_const);
        reg.counter(&format!("{prefix}.attempts_rr"), self.attempts_rr);
        reg.counter(&format!("{prefix}.fails_rr"), self.fails_rr);
        reg.counter(&format!("{prefix}.not_speculated"), self.not_speculated);
        reg.gauge(&format!("{prefix}.fail_rate"), self.fail_rate_all());
        reg.gauge(&format!("{prefix}.fail_rate_no_rr"), self.fail_rate_no_rr());
    }
}

impl RegisterMetrics for OffsetHistogram {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter(&format!("{prefix}.neg"), self.neg);
        for (bits, &count) in self.by_bits.iter().enumerate() {
            reg.counter(&format!("{prefix}.bits{bits}"), count);
        }
        reg.counter(&format!("{prefix}.more"), self.more);
    }
}

impl RegisterMetrics for SimStats {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let p = |n: &str| format!("{prefix}.{n}");
        reg.counter(&p("insts"), self.insts);
        reg.counter(&p("cycles"), self.cycles);
        reg.gauge(&p("ipc"), self.ipc());
        reg.counter(&p("loads"), self.loads);
        reg.counter(&p("stores"), self.stores);
        reg.counter(&p("loads_reg_reg"), self.loads_reg_reg);
        for class in RefClass::ALL {
            reg.counter(&p(&format!("loads.class.{}", class.label())), self.loads_by_class[class.index()]);
            reg.counter(&p(&format!("stores.class.{}", class.label())), self.stores_by_class[class.index()]);
        }
        reg.counter(&p("branches"), self.branches);
        reg.counter(&p("branch_mispredicts"), self.branch_mispredicts);
        reg.counter(&p("extra_accesses"), self.extra_accesses);
        reg.gauge(&p("bandwidth_overhead"), self.bandwidth_overhead());
        reg.counter(&p("store_buffer_stalls"), self.store_buffer_stalls);
        reg.counter(&p("verify_catches"), self.verify_catches);
        reg.counter(&p("mem_footprint"), self.mem_footprint);
        self.pred_loads.register_metrics(reg, &p("pred.loads"));
        self.pred_stores.register_metrics(reg, &p("pred.stores"));
        for cause in FailureCause::ALL {
            reg.counter(
                &p(&format!("fail_cause.{}", cause.label())),
                self.fail_causes[cause.index()],
            );
        }
        self.icache.register_metrics(reg, &p("icache"));
        self.dcache.register_metrics(reg, &p("dcache"));
        if let Some(tlb) = &self.tlb {
            tlb.register_metrics(reg, &p("tlb"));
        }
        if let Some(ltb) = &self.ltb {
            ltb.register_metrics(reg, &p("ltb"));
        }
        for class in RefClass::ALL {
            self.load_offsets[class.index()]
                .register_metrics(reg, &p(&format!("offsets.{}", class.label())));
        }
    }
}

impl RegisterMetrics for ProfileReport {
    fn register_metrics(&self, reg: &mut MetricsRegistry, prefix: &str) {
        let p = |n: &str| format!("{prefix}.{n}");
        reg.counter(&p("insts"), self.insts);
        reg.counter(&p("loads"), self.loads);
        reg.counter(&p("stores"), self.stores);
        for class in RefClass::ALL {
            reg.counter(&p(&format!("loads.class.{}", class.label())), self.loads_by_class[class.index()]);
            reg.counter(&p(&format!("stores.class.{}", class.label())), self.stores_by_class[class.index()]);
            reg.counter(
                &p(&format!("load_fails.class.{}", class.label())),
                self.load_fails_by_class[class.index()],
            );
            reg.gauge(
                &p(&format!("load_fail_rate.class.{}", class.label())),
                self.load_fail_rate(class),
            );
        }
        self.pred_loads.register_metrics(reg, &p("pred.loads"));
        self.pred_stores.register_metrics(reg, &p("pred.stores"));
        for class in RefClass::ALL {
            self.load_offsets[class.index()]
                .register_metrics(reg, &p(&format!("offsets.{}", class.label())));
        }
        reg.counter(&p("mem_footprint"), self.mem_footprint);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwrite_and_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("b", 1);
        reg.counter("a", 2);
        reg.counter("b", 3);
        reg.add("a", 5);
        reg.add("c", 1);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b", "a", "c"]);
        assert_eq!(reg.get("b"), Some(Metric::Counter(3)));
        assert_eq!(reg.get("a"), Some(Metric::Counter(7)));
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn non_finite_gauges_are_zeroed() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("nan", f64::NAN);
        reg.gauge("inf", f64::NEG_INFINITY);
        assert_eq!(reg.get("nan"), Some(Metric::Gauge(0.0)));
        assert_eq!(reg.get("inf"), Some(Metric::Gauge(0.0)));
    }

    #[test]
    fn json_and_text_exports() {
        let mut reg = MetricsRegistry::new();
        reg.counter("sim.cycles", 100);
        reg.gauge("sim.ipc", 2.5);
        assert_eq!(reg.to_json().to_string(), r#"{"sim.cycles":100,"sim.ipc":2.5}"#);
        assert_eq!(reg.to_text(), "sim.cycles\t100\nsim.ipc\t2.5\n");
        let back = MetricsRegistry::from_json(&reg.to_json().to_string()).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn simstats_registration_covers_the_report() {
        let mut stats = SimStats { insts: 10, cycles: 5, loads: 3, ..SimStats::default() };
        stats.record_cause(fac_core::FailureCause::Overflow);
        let mut reg = MetricsRegistry::new();
        stats.register_metrics(&mut reg, "sim");
        assert_eq!(reg.get("sim.insts"), Some(Metric::Counter(10)));
        assert_eq!(reg.get("sim.ipc"), Some(Metric::Gauge(2.0)));
        assert_eq!(reg.get("sim.fail_cause.overflow"), Some(Metric::Counter(1)));
        assert_eq!(reg.get("sim.pred.loads.fail_rate"), Some(Metric::Gauge(0.0)));
        assert!(reg.get("sim.tlb.accesses").is_none(), "no TLB modelled");
        assert!(reg.len() > 60, "got {}", reg.len());
    }
}
