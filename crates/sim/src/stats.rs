//! Simulation statistics: everything the paper's tables and figures report.

use fac_core::FailureCause;
use fac_isa::Reg;
use fac_mem::{CacheStats, TlbStats};

/// The paper's three reference classes (§2.1): which register supplies the
/// base of the effective-address computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefClass {
    /// Base is the global pointer (`$gp`).
    Global,
    /// Base is the stack pointer or frame pointer.
    Stack,
    /// Everything else — pointer and array dereferences.
    General,
}

impl RefClass {
    /// Classifies an access by its base register.
    pub fn of(base: Reg) -> RefClass {
        if base == Reg::GP {
            RefClass::Global
        } else if base == Reg::SP || base == Reg::FP {
            RefClass::Stack
        } else {
            RefClass::General
        }
    }

    /// Index for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            RefClass::Global => 0,
            RefClass::Stack => 1,
            RefClass::General => 2,
        }
    }

    /// All classes, in index order.
    pub const ALL: [RefClass; 3] = [RefClass::Global, RefClass::Stack, RefClass::General];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RefClass::Global => "global",
            RefClass::Stack => "stack",
            RefClass::General => "general",
        }
    }
}

/// Cumulative distribution of load offset sizes (Figure 3): one bucket for
/// negative offsets and one per significant-bit count 0 (zero offset)
/// through 15, plus "more" (≥ 16 bits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OffsetHistogram {
    /// Negative offsets.
    pub neg: u64,
    /// `by_bits[n]` counts non-negative offsets needing exactly `n`
    /// significant bits (`by_bits[0]` is the zero offset).
    pub by_bits: [u64; 16],
    /// Offsets needing 16 or more bits (register offsets can be large).
    pub more: u64,
}

impl OffsetHistogram {
    /// Records one offset value.
    pub fn record(&mut self, offset: i32) {
        if offset < 0 {
            self.neg += 1;
        } else {
            let bits = 32 - (offset as u32).leading_zeros();
            if bits >= 16 {
                self.more += 1;
            } else {
                self.by_bits[bits as usize] += 1;
            }
        }
    }

    /// Total recorded offsets.
    pub fn total(&self) -> u64 {
        self.neg + self.more + self.by_bits.iter().sum::<u64>()
    }

    /// Cumulative fraction of offsets representable in ≤ `bits` bits
    /// (counting negatives as never representable, matching the figure's
    /// separate "Neg" bucket).
    pub fn cumulative_at(&self, bits: u32) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = self.by_bits[..=(bits.min(15) as usize)].iter().sum();
        covered as f64 / total as f64
    }

    /// Fraction of negative offsets.
    pub fn neg_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.neg as f64 / total as f64
        }
    }
}

/// Prediction counters for one access kind (loads or stores), split by
/// addressing mode so the "No R+R" views of Tables 4 and 6 can be derived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredCounters {
    /// Speculated accesses using register+constant (or post-inc) addressing.
    pub attempts_const: u64,
    /// Mispredictions among `attempts_const`.
    pub fails_const: u64,
    /// Speculated accesses using register+register addressing.
    pub attempts_rr: u64,
    /// Mispredictions among `attempts_rr`.
    pub fails_rr: u64,
    /// Accesses not speculated at all (policy: reg+reg or store
    /// speculation disabled, or pipeline blocked the slot).
    pub not_speculated: u64,
}

impl PredCounters {
    /// Total speculated accesses.
    pub fn attempts(&self) -> u64 {
        self.attempts_const + self.attempts_rr
    }

    /// Total mispredictions.
    pub fn fails(&self) -> u64 {
        self.fails_const + self.fails_rr
    }

    /// Failure rate over **all** accesses of this kind (the paper's
    /// "percent failed predictions" treats unspeculated accesses as
    /// non-failures — they simply take the normal path).
    pub fn fail_rate_all(&self) -> f64 {
        let denom = self.attempts() + self.not_speculated;
        if denom == 0 {
            0.0
        } else {
            self.fails() as f64 / denom as f64
        }
    }

    /// Failure rate excluding register+register accesses (Table 4's
    /// "No R+R" column).
    pub fn fail_rate_no_rr(&self) -> f64 {
        if self.attempts_const == 0 {
            0.0
        } else {
            self.fails_const as f64 / self.attempts_const as f64
        }
    }
}

/// Everything measured during one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Committed instructions.
    pub insts: u64,
    /// Total execution cycles.
    pub cycles: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads by reference class.
    pub loads_by_class: [u64; 3],
    /// Stores by reference class.
    pub stores_by_class: [u64; 3],
    /// Loads using register+register addressing.
    pub loads_reg_reg: u64,
    /// Load offset distribution per reference class (Figure 3).
    pub load_offsets: [OffsetHistogram; 3],
    /// Conditional + unconditional control transfers executed.
    pub branches: u64,
    /// Branch mispredictions (direction or target).
    pub branch_mispredicts: u64,
    /// Prediction counters for loads.
    pub pred_loads: PredCounters,
    /// Prediction counters for stores.
    pub pred_stores: PredCounters,
    /// Misprediction causes (paper §3's four conditions + tag overlap).
    pub fail_causes: [u64; 5],
    /// Bad speculations caught **only** by the decoupled verification
    /// compare — the failure signals claimed success but the full-adder
    /// address differed. Always zero for the exact circuit (the signals are
    /// conservative); nonzero under fault injection, where it counts the
    /// corrupted predictions the backstop intercepted.
    pub verify_catches: u64,
    /// Extra data-cache accesses caused by misspeculation (Table 6).
    pub extra_accesses: u64,
    /// Cycles lost to store-buffer-full stalls.
    pub store_buffer_stalls: u64,
    /// Instruction cache statistics.
    pub icache: CacheStats,
    /// Data cache statistics.
    pub dcache: CacheStats,
    /// Data TLB statistics (when modelled).
    pub tlb: Option<TlbStats>,
    /// Load-target-buffer statistics (when the LTB comparator is enabled).
    pub ltb: Option<fac_core::LtbStats>,
    /// Bytes of memory touched (page granularity) — the "memory usage"
    /// column of Tables 3 and 4.
    pub mem_footprint: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Total memory references.
    pub fn refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of loads in a reference class.
    pub fn load_class_fraction(&self, class: RefClass) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.loads_by_class[class.index()] as f64 / self.loads as f64
        }
    }

    /// Extra cache bandwidth from misspeculation, as a fraction of total
    /// references (Table 6).
    pub fn bandwidth_overhead(&self) -> f64 {
        if self.refs() == 0 {
            0.0
        } else {
            self.extra_accesses as f64 / self.refs() as f64
        }
    }

    /// Records a misprediction cause.
    pub fn record_cause(&mut self, cause: FailureCause) {
        self.fail_causes[cause.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_base_register() {
        assert_eq!(RefClass::of(Reg::GP), RefClass::Global);
        assert_eq!(RefClass::of(Reg::SP), RefClass::Stack);
        assert_eq!(RefClass::of(Reg::FP), RefClass::Stack);
        assert_eq!(RefClass::of(Reg::T0), RefClass::General);
        assert_eq!(RefClass::of(Reg::ZERO), RefClass::General);
    }

    #[test]
    fn offset_histogram_buckets() {
        let mut h = OffsetHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(255);
        h.record(-4);
        h.record(70000);
        assert_eq!(h.by_bits[0], 1); // zero
        assert_eq!(h.by_bits[1], 1); // 1
        assert_eq!(h.by_bits[2], 2); // 2, 3
        assert_eq!(h.by_bits[8], 1); // 255
        assert_eq!(h.neg, 1);
        assert_eq!(h.more, 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn cumulative_distribution() {
        let mut h = OffsetHistogram::default();
        for v in [0, 0, 4, 100] {
            h.record(v);
        }
        assert!((h.cumulative_at(0) - 0.5).abs() < 1e-12);
        assert!((h.cumulative_at(3) - 0.75).abs() < 1e-12);
        assert!((h.cumulative_at(15) - 1.0).abs() < 1e-12);
        assert_eq!(h.neg_fraction(), 0.0);
    }

    #[test]
    fn pred_counter_rates() {
        let p = PredCounters {
            attempts_const: 80,
            fails_const: 8,
            attempts_rr: 20,
            fails_rr: 10,
            not_speculated: 0,
        };
        assert!((p.fail_rate_all() - 0.18).abs() < 1e-12);
        assert!((p.fail_rate_no_rr() - 0.10).abs() < 1e-12);
        assert_eq!(PredCounters::default().fail_rate_all(), 0.0);
    }

    #[test]
    fn ipc_and_overhead() {
        let s = SimStats {
            insts: 400,
            cycles: 200,
            loads: 80,
            stores: 20,
            extra_accesses: 10,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.bandwidth_overhead() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cause_recording() {
        let mut s = SimStats::default();
        s.record_cause(FailureCause::Overflow);
        s.record_cause(FailureCause::NegIndexReg);
        s.record_cause(FailureCause::NegIndexReg);
        assert_eq!(s.fail_causes[0], 1);
        assert_eq!(s.fail_causes[3], 2);
    }
}
