//! Pipeline tracing and Figure-1-style diagrams.
//!
//! [`crate::Machine::run_traced`] records the fetch/issue/complete cycle of
//! every committed instruction; [`render_diagram`] draws a textual pipeline
//! chart like the paper's Figure 1, making the load-use stall — and its
//! disappearance under fast address calculation — visible directly.

use crate::obs::json::Json;
use crate::pipeline::IssueInfo;
use fac_isa::Insn;
use std::fmt::Write as _;

/// One traced instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedInsn {
    /// Instruction address.
    pub pc: u32,
    /// The instruction.
    pub insn: Insn,
    /// Its pipeline timing.
    pub timing: IssueInfo,
}

/// Renders a Figure-1-style pipeline diagram for a slice of traced
/// instructions. Stage letters: `F` fetch, `D` decode/wait, `X` execute
/// (issue), `M` memory access (loads/stores taking a MEM cycle), `W`
/// result write-back. Dots mark cycles spent waiting between decode and
/// issue — the hazard bubbles.
///
/// ```
/// use fac_asm::{Asm, SoftwareSupport};
/// use fac_isa::Reg;
/// use fac_sim::{render_diagram, Machine, MachineConfig};
///
/// let mut a = Asm::new();
/// a.gp_word("x", 1);
/// a.lw_gp(Reg::T0, "x", 0);
/// a.addiu(Reg::T1, Reg::T0, 1);
/// a.halt();
/// let p = a.link("demo", &SoftwareSupport::on()).unwrap();
/// let (_, trace) = Machine::new(MachineConfig::paper_baseline())
///     .run_traced(&p)
///     .unwrap();
/// let chart = render_diagram(&trace);
/// assert!(chart.contains("lw"));
/// ```
pub fn render_diagram(trace: &[TracedInsn]) -> String {
    let Some(first) = trace.first() else {
        return String::new();
    };
    let base = first.timing.fetch;
    let end = trace.iter().map(|t| t.timing.complete).max().unwrap_or(base);
    let width = ((end - base) as usize + 2).min(70);

    let mut out = String::new();
    let _ = write!(out, "{:32}", "cycle");
    for i in 0..width {
        let _ = write!(out, "{:>2}", (i as u64 + base) % 100);
    }
    out.push('\n');

    for t in trace {
        let f = (t.timing.fetch - base) as usize;
        let x = (t.timing.issue - base) as usize;
        let w = (t.timing.complete - base) as usize;
        let mut row = vec!["  "; width];
        let put = |row: &mut Vec<&str>, i: usize, s: &'static str| {
            if i < row.len() {
                row[i] = s;
            }
        };
        put(&mut row, f, " F");
        if f + 1 < x {
            put(&mut row, f + 1, " D");
            for slot in row.iter_mut().take(x).skip(f + 2) {
                *slot = " .";
            }
        }
        put(&mut row, x, " X");
        if t.insn.is_mem() {
            // The cache access occupies EX (1-cycle FAC hit) or MEM.
            if w > x + 1 {
                put(&mut row, x + 1, " M");
            }
        }
        if w > x {
            put(&mut row, w, " W");
        }
        let _ = writeln!(out, "{:32}{}", t.insn.to_string(), row.join(""));
    }
    out
}

/// Exports a pipeline trace in the Chrome trace-event format, loadable by
/// `chrome://tracing` and Perfetto.
///
/// Each instruction becomes one complete (`"ph":"X"`) slice from fetch to
/// write-back, with 1 cycle = 1 µs of trace time. Overlapping instructions
/// are spread across lanes (`tid`s) greedily — a lane is reused as soon as
/// its previous occupant has completed — so a wide issue group renders as
/// stacked parallel slices. Per-slice `args` carry the pc and the
/// fetch/issue/complete cycles, plus `replayed` for mispredicted accesses.
pub fn chrome_trace(trace: &[TracedInsn]) -> String {
    let mut lanes: Vec<u64> = Vec::new(); // completion cycle per lane
    let mut events = Vec::new();
    for t in trace {
        let lane = match lanes.iter().position(|&busy| busy <= t.timing.fetch) {
            Some(i) => i,
            None => {
                lanes.push(0);
                lanes.len() - 1
            }
        };
        lanes[lane] = t.timing.complete + 1;

        let mut e = Json::obj();
        e.set("name", Json::Str(t.insn.to_string()));
        e.set("cat", Json::Str(if t.insn.is_mem() { "mem" } else { "cpu" }.to_string()));
        e.set("ph", Json::Str("X".to_string()));
        e.set("ts", Json::U64(t.timing.fetch));
        e.set("dur", Json::U64(t.timing.complete + 1 - t.timing.fetch));
        e.set("pid", Json::U64(1));
        e.set("tid", Json::U64(lane as u64 + 1));
        let mut args = Json::obj();
        args.set("pc", Json::U64(t.pc as u64));
        args.set("fetch", Json::U64(t.timing.fetch));
        args.set("issue", Json::U64(t.timing.issue));
        args.set("complete", Json::U64(t.timing.complete));
        args.set("replayed", Json::Bool(t.timing.replayed));
        e.set("args", args);
        events.push(e);
    }
    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events));
    doc.set("displayTimeUnit", Json::Str("ns".to_string()));
    doc.to_pretty(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineConfig};
    use fac_asm::{Asm, SoftwareSupport};
    use fac_isa::Reg;

    fn figure1_program() -> fac_asm::Program {
        // The paper's Figure 1 sequence: add, dependent load, dependent sub.
        let mut a = Asm::new();
        a.gp_array("data", 64, 4);
        a.gp_addr(Reg::T0, "data", 0); // rx
        a.li(Reg::T1, 1);
        a.li(Reg::T2, 2);
        a.addu(Reg::T0, Reg::T0, Reg::ZERO); // add rx,ry,rz
        a.lw(Reg::T3, 4, Reg::T0); // load rw,4(rx)
        a.subu(Reg::T4, Reg::T1, Reg::T3); // sub ra,rb,rw
        a.halt();
        a.link("fig1", &SoftwareSupport::on()).unwrap()
    }

    #[test]
    fn figure1_stall_appears_and_disappears() {
        let p = figure1_program();
        // Perfect cache: Figure 1 assumes the access hits.
        let (_, base) = Machine::new(MachineConfig::paper_baseline().with_perfect_dcache())
            .run_traced(&p)
            .unwrap();
        let (_, fac) = Machine::new(
            MachineConfig::paper_baseline().with_perfect_dcache().with_fac(),
        )
        .run_traced(&p)
        .unwrap();
        // Find the load and the dependent sub in both traces.
        let dep_gap = |tr: &[TracedInsn]| {
            let lw = tr.iter().find(|t| t.insn.is_load() && matches!(t.insn, fac_isa::Insn::Load { ea: fac_isa::AddrMode::BaseDisp { disp: 4, .. }, .. })).unwrap();
            let sub = tr
                .iter()
                .find(|t| matches!(t.insn, fac_isa::Insn::Alu { op: fac_isa::AluOp::Subu, .. }))
                .unwrap();
            sub.timing.issue - lw.timing.issue
        };
        assert_eq!(dep_gap(&base), 2, "baseline pays the load-use bubble");
        assert_eq!(dep_gap(&fac), 1, "fast address calculation removes it");
    }

    #[test]
    fn diagram_renders_rows_per_instruction() {
        let p = figure1_program();
        let (_, tr) = Machine::new(MachineConfig::paper_baseline()).run_traced(&p).unwrap();
        let chart = render_diagram(&tr);
        assert_eq!(chart.lines().count(), tr.len() + 1);
        assert!(chart.contains(" F"));
        assert!(chart.contains(" X"));
        assert!(chart.contains(" W"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render_diagram(&[]), "");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_slice_per_insn() {
        let p = figure1_program();
        let (_, tr) = Machine::new(MachineConfig::paper_baseline().with_perfect_dcache())
            .run_traced(&p)
            .unwrap();
        let doc = crate::obs::json::parse(&chrome_trace(&tr)).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), tr.len());
        for e in events {
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
            assert!(e.get("dur").and_then(Json::as_u64).unwrap() >= 1);
            assert!(e.get("args").and_then(|a| a.get("pc")).is_some());
        }
    }

    #[test]
    fn chrome_trace_lanes_stack_overlapping_insns() {
        let p = figure1_program();
        let (_, tr) = Machine::new(MachineConfig::paper_baseline().with_perfect_dcache())
            .run_traced(&p)
            .unwrap();
        let doc = crate::obs::json::parse(&chrome_trace(&tr)).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let lanes: std::collections::HashSet<u64> =
            events.iter().filter_map(|e| e.get("tid").and_then(Json::as_u64)).collect();
        assert!(lanes.len() > 1, "a 4-wide machine overlaps instructions: {lanes:?}");
    }

    /// Golden-file pin of the Chrome-trace output for the Figure-1 program.
    /// Regenerate with `UPDATE_GOLDEN=1 cargo test -p fac-sim golden`.
    #[test]
    fn chrome_trace_matches_golden_file() {
        let p = figure1_program();
        let (_, tr) = Machine::new(MachineConfig::paper_baseline().with_perfect_dcache())
            .run_traced(&p)
            .unwrap();
        let got = chrome_trace(&tr);
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fig1_chrome.json");
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &got).unwrap();
            return;
        }
        let want = std::fs::read_to_string(&path)
            .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
        assert_eq!(got, want, "chrome_trace output drifted from {}", path.display());
    }
}
