//! Functional execution of the extended-MIPS ISA.

use fac_asm::Program;
use fac_core::Offset;
use fac_isa::{
    AddrMode, AluImmOp, AluOp, BranchCond, FpCond, FpFmt, FpOp, Insn, LoadOp, MulDivOp, Reg,
    ShiftOp, StoreOp,
};
use fac_mem::Memory;

/// Scoreboard index space: integer registers 0–31, FP registers 32–63,
/// HI 64, LO 65, FP condition flag 66.
pub const SB_HI: u8 = 64;
/// LO scoreboard index.
pub const SB_LO: u8 = 65;
/// FP condition flag scoreboard index.
pub const SB_FCC: u8 = 66;
/// Total scoreboard registers.
pub const SB_REGS: usize = 67;

/// A tiny fixed-capacity register list (no heap allocation on the
/// simulator's hot path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegList {
    regs: [u8; 4],
    len: u8,
}

impl RegList {
    /// Appends a scoreboard index; ignores the hard-wired zero register.
    pub fn push(&mut self, idx: u8) {
        if idx == 0 {
            return; // $zero is always ready and never written
        }
        assert!((self.len as usize) < self.regs.len(), "RegList overflow");
        self.regs[self.len as usize] = idx;
        self.len += 1;
    }

    /// Iterates over the indices.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.regs[..self.len as usize].iter().copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

fn fp_idx(f: fac_isa::FReg) -> u8 {
    32 + f.index() as u8
}

/// Source scoreboard registers of `insn`.
pub fn src_regs(insn: &Insn) -> RegList {
    let mut l = RegList::default();
    let ea_srcs = |l: &mut RegList, ea: AddrMode| match ea {
        AddrMode::BaseDisp { base, .. } => l.push(base.index() as u8),
        AddrMode::BaseIndex { base, index } => {
            l.push(base.index() as u8);
            l.push(index.index() as u8);
        }
        AddrMode::PostInc { base, .. } => l.push(base.index() as u8),
    };
    match *insn {
        Insn::Nop | Insn::Halt | Insn::J { .. } | Insn::Lui { .. } => {}
        Insn::Alu { rs, rt, .. } => {
            l.push(rs.index() as u8);
            l.push(rt.index() as u8);
        }
        Insn::AluImm { rs, .. } => l.push(rs.index() as u8),
        Insn::Shift { rt, .. } => l.push(rt.index() as u8),
        Insn::MulDiv { rs, rt, .. } => {
            l.push(rs.index() as u8);
            l.push(rt.index() as u8);
        }
        Insn::Mfhi { .. } => l.push(SB_HI),
        Insn::Mflo { .. } => l.push(SB_LO),
        Insn::Load { ea, .. } => ea_srcs(&mut l, ea),
        Insn::Store { rt, ea, .. } => {
            l.push(rt.index() as u8);
            ea_srcs(&mut l, ea);
        }
        Insn::LoadFp { ea, .. } => ea_srcs(&mut l, ea),
        Insn::StoreFp { ft, ea, .. } => {
            l.push(fp_idx(ft));
            ea_srcs(&mut l, ea);
        }
        Insn::Fp { op, fs, ft, .. } => {
            l.push(fp_idx(fs));
            if !op.is_unary() {
                l.push(fp_idx(ft));
            }
        }
        Insn::FpCmp { fs, ft, .. } => {
            l.push(fp_idx(fs));
            l.push(fp_idx(ft));
        }
        Insn::Bc1 { .. } => l.push(SB_FCC),
        Insn::Mtc1 { rt, .. } => l.push(rt.index() as u8),
        Insn::Mfc1 { fs, .. } => l.push(fp_idx(fs)),
        Insn::CvtFromW { fs, .. } | Insn::TruncToW { fs, .. } => l.push(fp_idx(fs)),
        Insn::Branch { cond, rs, rt, .. } => {
            l.push(rs.index() as u8);
            if cond.uses_rt() {
                l.push(rt.index() as u8);
            }
        }
        Insn::Jal { .. } => {}
        Insn::Jr { rs } | Insn::Jalr { rs, .. } => l.push(rs.index() as u8),
    }
    l
}

/// Destination scoreboard registers of `insn`.
pub fn dst_regs(insn: &Insn) -> RegList {
    let mut l = RegList::default();
    match *insn {
        Insn::Nop
        | Insn::Halt
        | Insn::J { .. }
        | Insn::Jr { .. }
        | Insn::Branch { .. }
        | Insn::Bc1 { .. } => {}
        Insn::Alu { rd, .. } | Insn::Shift { rd, .. } => l.push(rd.index() as u8),
        Insn::AluImm { rt, .. } | Insn::Lui { rt, .. } => l.push(rt.index() as u8),
        Insn::MulDiv { .. } => {
            l.push(SB_HI);
            l.push(SB_LO);
        }
        Insn::Mfhi { rd } | Insn::Mflo { rd } => l.push(rd.index() as u8),
        Insn::Load { rt, ea, .. } => {
            l.push(rt.index() as u8);
            if let AddrMode::PostInc { base, .. } = ea {
                l.push(base.index() as u8);
            }
        }
        Insn::Store { ea, .. } | Insn::StoreFp { ea, .. } => {
            if let AddrMode::PostInc { base, .. } = ea {
                l.push(base.index() as u8);
            }
        }
        Insn::LoadFp { ft, ea, .. } => {
            l.push(fp_idx(ft));
            if let AddrMode::PostInc { base, .. } = ea {
                l.push(base.index() as u8);
            }
        }
        Insn::Fp { fd, .. } => l.push(fp_idx(fd)),
        Insn::FpCmp { .. } => l.push(SB_FCC),
        Insn::Mtc1 { fs, .. } => l.push(fp_idx(fs)),
        Insn::Mfc1 { rt, .. } => l.push(rt.index() as u8),
        Insn::CvtFromW { fd, .. } | Insn::TruncToW { fd, .. } => l.push(fp_idx(fd)),
        Insn::Jal { .. } => l.push(Reg::RA.index() as u8),
        Insn::Jalr { rd, .. } => l.push(rd.index() as u8),
    }
    l
}

/// One executed memory reference, with everything the FAC predictor and the
/// statistics classifier need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// True effective address.
    pub addr: u32,
    /// Base register value at execution time.
    pub base_value: u32,
    /// Base register (for global/stack/general classification).
    pub base_reg: Reg,
    /// Offset operand, as the prediction circuit sees it.
    pub offset: Offset,
    /// `true` for stores.
    pub is_store: bool,
    /// Access size in bytes.
    pub size: u32,
}

impl MemRef {
    /// `true` when the access uses register+register addressing.
    pub fn is_reg_reg(&self) -> bool {
        matches!(self.offset, Offset::Reg(_))
    }

    /// The offset operand's signed value, whatever its addressing mode —
    /// the quantity the offset histograms bucket.
    pub fn offset_value(&self) -> i32 {
        match self.offset {
            Offset::Const(c) => c as i32,
            Offset::Reg(v) => v as i32,
        }
    }
}

/// The architectural outcome of one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Executed {
    /// PC of the instruction.
    pub pc: u32,
    /// The instruction itself.
    pub insn: Insn,
    /// `Some(target)` when control transferred (taken branch/jump).
    pub taken: Option<u32>,
    /// Memory reference, for loads and stores.
    pub mem: Option<MemRef>,
}

/// Errors from functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// PC left the text segment.
    BadPc(u32),
    /// A data access was not naturally aligned (strict-memory mode only —
    /// the lenient default composes any access from byte operations).
    Misaligned {
        /// PC of the faulting load/store.
        pc: u32,
        /// The effective address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// A load touched memory never written or loaded by the program
    /// (strict-memory mode only — the lenient default reads zeros).
    Unmapped {
        /// PC of the faulting load.
        pc: u32,
        /// The effective address.
        addr: u32,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadPc(pc) => write!(f, "program counter {pc:#010x} outside text"),
            ExecError::Misaligned { pc, addr, size } => write!(
                f,
                "misaligned {size}-byte access to {addr:#010x} at pc {pc:#010x}"
            ),
            ExecError::Unmapped { pc, addr } => {
                write!(f, "load from unmapped memory {addr:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Architectural state of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u32,
    /// Integer register file (`regs[0]` stays zero).
    pub regs: [u32; 32],
    /// FP register file, raw bits (doubles occupy the whole register).
    pub fregs: [u64; 32],
    /// HI register (multiply/divide).
    pub hi: u32,
    /// LO register.
    pub lo: u32,
    /// FP condition flag.
    pub fcc: bool,
    /// Data memory.
    pub mem: Memory,
    /// Set by `halt`.
    pub halted: bool,
    /// Strict data-memory semantics: trap misaligned accesses and loads
    /// from never-mapped pages instead of the lenient byte-wise default.
    pub strict_mem: bool,
}

impl ArchState {
    /// Creates the initial state for `program`: data segment loaded, `$gp`
    /// and `$sp` set, PC at the entry point.
    pub fn new(program: &Program) -> ArchState {
        let mut mem = Memory::new();
        program.load_into(&mut mem);
        let mut regs = [0u32; 32];
        regs[Reg::GP.index()] = program.gp;
        regs[Reg::SP.index()] = program.sp;
        ArchState {
            pc: program.entry,
            regs,
            fregs: [0; 32],
            hi: 0,
            lo: 0,
            fcc: false,
            mem,
            halted: false,
            strict_mem: false,
        }
    }

    /// Serializes the complete architectural state for a machine
    /// checkpoint.
    pub(crate) fn save_state(&self, w: &mut fac_core::snap::SnapWriter) {
        w.u32(self.pc);
        for r in self.regs {
            w.u32(r);
        }
        for f in self.fregs {
            w.u64(f);
        }
        w.u32(self.hi);
        w.u32(self.lo);
        w.bool(self.fcc);
        w.bool(self.halted);
        w.bool(self.strict_mem);
        self.mem.save_state(w);
    }

    /// Rebuilds [`ArchState::save_state`].
    pub(crate) fn load_state(
        r: &mut fac_core::snap::SnapReader<'_>,
    ) -> Result<ArchState, fac_core::snap::SnapError> {
        let pc = r.u32("arch pc")?;
        let mut regs = [0u32; 32];
        for v in &mut regs {
            *v = r.u32("arch reg")?;
        }
        let mut fregs = [0u64; 32];
        for v in &mut fregs {
            *v = r.u64("arch freg")?;
        }
        let hi = r.u32("arch hi")?;
        let lo = r.u32("arch lo")?;
        let fcc = r.bool("arch fcc")?;
        let halted = r.bool("arch halted")?;
        let strict_mem = r.bool("arch strict_mem")?;
        let mem = Memory::load_state(r)?;
        Ok(ArchState { pc, regs, fregs, hi, lo, fcc, mem, halted, strict_mem })
    }

    /// Checks a data access against the strict-memory rules: natural
    /// alignment, and (for loads) that the page has been mapped by the
    /// program image or an earlier store. A no-op in the lenient default.
    /// Shared with the fast functional tier so both executors trap at the
    /// same accesses.
    pub(crate) fn check_mem(
        &self,
        pc: u32,
        addr: u32,
        size: u32,
        is_store: bool,
    ) -> Result<(), ExecError> {
        if !self.strict_mem {
            return Ok(());
        }
        if size > 1 && !addr.is_multiple_of(size) {
            return Err(ExecError::Misaligned { pc, addr, size });
        }
        if !is_store && !self.mem.is_mapped(addr) {
            return Err(ExecError::Unmapped { pc, addr });
        }
        Ok(())
    }

    fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    fn fd(&self, f: fac_isa::FReg) -> f64 {
        f64::from_bits(self.fregs[f.index()])
    }

    fn fs32(&self, f: fac_isa::FReg) -> f32 {
        f32::from_bits(self.fregs[f.index()] as u32)
    }

    fn set_fd(&mut self, f: fac_isa::FReg, v: f64) {
        self.fregs[f.index()] = v.to_bits();
    }

    fn set_fs32(&mut self, f: fac_isa::FReg, v: f32) {
        self.fregs[f.index()] = v.to_bits() as u64;
    }

    /// Resolves an addressing mode: returns (address, base value, base reg,
    /// offset operand, post-update).
    fn resolve(&self, ea: AddrMode) -> (u32, u32, Reg, Offset, Option<(Reg, u32)>) {
        match ea {
            AddrMode::BaseDisp { base, disp } => {
                let b = self.reg(base);
                (b.wrapping_add(disp as i32 as u32), b, base, Offset::Const(disp), None)
            }
            AddrMode::BaseIndex { base, index } => {
                let b = self.reg(base);
                let i = self.reg(index);
                (b.wrapping_add(i), b, base, Offset::Reg(i), None)
            }
            AddrMode::PostInc { base, step } => {
                let b = self.reg(base);
                (b, b, base, Offset::Const(0), Some((base, b.wrapping_add(step as i32 as u32))))
            }
        }
    }

    /// Executes one instruction, updating architectural state.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::BadPc`] if the PC leaves the text segment.
    pub fn step(&mut self, program: &Program) -> Result<Executed, ExecError> {
        let idx = program.insn_index(self.pc).ok_or(ExecError::BadPc(self.pc))?;
        let insn = program.text[idx];
        let pc = self.pc;
        let next_pc = pc.wrapping_add(4);
        let mut taken = None;
        let mut mem_ref = None;

        match insn {
            Insn::Nop => {}
            Insn::Halt => self.halted = true,
            Insn::Alu { op, rd, rs, rt } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                let v = match op {
                    AluOp::Add | AluOp::Addu => a.wrapping_add(b),
                    AluOp::Sub | AluOp::Subu => a.wrapping_sub(b),
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Nor => !(a | b),
                    AluOp::Slt => ((a as i32) < (b as i32)) as u32,
                    AluOp::Sltu => (a < b) as u32,
                    AluOp::Sllv => b.wrapping_shl(a & 31),
                    AluOp::Srlv => b.wrapping_shr(a & 31),
                    AluOp::Srav => ((b as i32).wrapping_shr(a & 31)) as u32,
                };
                self.set_reg(rd, v);
            }
            Insn::AluImm { op, rt, rs, imm } => {
                let a = self.reg(rs);
                let se = imm as i32 as u32;
                let ze = imm as u16 as u32;
                let v = match op {
                    AluImmOp::Addi | AluImmOp::Addiu => a.wrapping_add(se),
                    AluImmOp::Slti => ((a as i32) < (imm as i32)) as u32,
                    AluImmOp::Sltiu => (a < se) as u32,
                    AluImmOp::Andi => a & ze,
                    AluImmOp::Ori => a | ze,
                    AluImmOp::Xori => a ^ ze,
                };
                self.set_reg(rt, v);
            }
            Insn::Shift { op, rd, rt, shamt } => {
                let b = self.reg(rt);
                let v = match op {
                    ShiftOp::Sll => b.wrapping_shl(shamt as u32),
                    ShiftOp::Srl => b.wrapping_shr(shamt as u32),
                    ShiftOp::Sra => ((b as i32).wrapping_shr(shamt as u32)) as u32,
                };
                self.set_reg(rd, v);
            }
            Insn::Lui { rt, imm } => self.set_reg(rt, (imm as u32) << 16),
            Insn::MulDiv { op, rs, rt } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                match op {
                    MulDivOp::Mult => {
                        let p = (a as i32 as i64).wrapping_mul(b as i32 as i64) as u64;
                        self.lo = p as u32;
                        self.hi = (p >> 32) as u32;
                    }
                    MulDivOp::Multu => {
                        let p = (a as u64).wrapping_mul(b as u64);
                        self.lo = p as u32;
                        self.hi = (p >> 32) as u32;
                    }
                    MulDivOp::Div => {
                        if b == 0 {
                            self.lo = 0;
                            self.hi = 0;
                        } else {
                            self.lo = (a as i32).wrapping_div(b as i32) as u32;
                            self.hi = (a as i32).wrapping_rem(b as i32) as u32;
                        }
                    }
                    MulDivOp::Divu => {
                        self.lo = a.checked_div(b).unwrap_or(0);
                        self.hi = a.checked_rem(b).unwrap_or(0);
                    }
                }
            }
            Insn::Mfhi { rd } => self.set_reg(rd, self.hi),
            Insn::Mflo { rd } => self.set_reg(rd, self.lo),
            Insn::Load { op, rt, ea } => {
                let (addr, base_value, base_reg, offset, post) = self.resolve(ea);
                self.check_mem(pc, addr, op.size(), false)?;
                let v = match op {
                    LoadOp::Lb => self.mem.read_u8(addr) as i8 as i32 as u32,
                    LoadOp::Lbu => self.mem.read_u8(addr) as u32,
                    LoadOp::Lh => self.mem.read_u16(addr) as i16 as i32 as u32,
                    LoadOp::Lhu => self.mem.read_u16(addr) as u32,
                    LoadOp::Lw => self.mem.read_u32(addr),
                };
                self.set_reg(rt, v);
                if let Some((b, nv)) = post {
                    self.set_reg(b, nv);
                }
                mem_ref = Some(MemRef {
                    addr,
                    base_value,
                    base_reg,
                    offset,
                    is_store: false,
                    size: op.size(),
                });
            }
            Insn::Store { op, rt, ea } => {
                let (addr, base_value, base_reg, offset, post) = self.resolve(ea);
                self.check_mem(pc, addr, op.size(), true)?;
                let v = self.reg(rt);
                match op {
                    StoreOp::Sb => self.mem.write_u8(addr, v as u8),
                    StoreOp::Sh => self.mem.write_u16(addr, v as u16),
                    StoreOp::Sw => self.mem.write_u32(addr, v),
                }
                if let Some((b, nv)) = post {
                    self.set_reg(b, nv);
                }
                mem_ref = Some(MemRef {
                    addr,
                    base_value,
                    base_reg,
                    offset,
                    is_store: true,
                    size: op.size(),
                });
            }
            Insn::LoadFp { fmt, ft, ea } => {
                let (addr, base_value, base_reg, offset, post) = self.resolve(ea);
                self.check_mem(pc, addr, fmt.size(), false)?;
                match fmt {
                    FpFmt::S => self.fregs[ft.index()] = self.mem.read_u32(addr) as u64,
                    FpFmt::D => self.fregs[ft.index()] = self.mem.read_u64(addr),
                }
                if let Some((b, nv)) = post {
                    self.set_reg(b, nv);
                }
                mem_ref = Some(MemRef {
                    addr,
                    base_value,
                    base_reg,
                    offset,
                    is_store: false,
                    size: fmt.size(),
                });
            }
            Insn::StoreFp { fmt, ft, ea } => {
                let (addr, base_value, base_reg, offset, post) = self.resolve(ea);
                self.check_mem(pc, addr, fmt.size(), true)?;
                match fmt {
                    FpFmt::S => {
                        let bits = self.fregs[ft.index()] as u32;
                        self.mem.write_u32(addr, bits);
                    }
                    FpFmt::D => self.mem.write_u64(addr, self.fregs[ft.index()]),
                }
                if let Some((b, nv)) = post {
                    self.set_reg(b, nv);
                }
                mem_ref = Some(MemRef {
                    addr,
                    base_value,
                    base_reg,
                    offset,
                    is_store: true,
                    size: fmt.size(),
                });
            }
            Insn::Fp { op, fmt, fd, fs, ft } => match fmt {
                FpFmt::D => {
                    let a = self.fd(fs);
                    let b = self.fd(ft);
                    let v = match op {
                        FpOp::Add => a + b,
                        FpOp::Sub => a - b,
                        FpOp::Mul => a * b,
                        FpOp::Div => a / b,
                        FpOp::Abs => a.abs(),
                        FpOp::Neg => -a,
                        FpOp::Mov => a,
                        FpOp::Sqrt => a.sqrt(),
                    };
                    self.set_fd(fd, v);
                }
                FpFmt::S => {
                    let a = self.fs32(fs);
                    let b = self.fs32(ft);
                    let v = match op {
                        FpOp::Add => a + b,
                        FpOp::Sub => a - b,
                        FpOp::Mul => a * b,
                        FpOp::Div => a / b,
                        FpOp::Abs => a.abs(),
                        FpOp::Neg => -a,
                        FpOp::Mov => a,
                        FpOp::Sqrt => a.sqrt(),
                    };
                    self.set_fs32(fd, v);
                }
            },
            Insn::FpCmp { cond, fmt, fs, ft } => {
                let (a, b) = match fmt {
                    FpFmt::D => (self.fd(fs), self.fd(ft)),
                    FpFmt::S => (self.fs32(fs) as f64, self.fs32(ft) as f64),
                };
                self.fcc = match cond {
                    FpCond::Eq => a == b,
                    FpCond::Lt => a < b,
                    FpCond::Le => a <= b,
                };
            }
            Insn::Bc1 { on_true, off } => {
                if self.fcc == on_true {
                    taken = Some(next_pc.wrapping_add((off as i32 as u32) << 2));
                }
            }
            Insn::Mtc1 { rt, fs } => self.fregs[fs.index()] = self.reg(rt) as u64,
            Insn::Mfc1 { rt, fs } => {
                let bits = self.fregs[fs.index()] as u32;
                self.set_reg(rt, bits);
            }
            Insn::CvtFromW { fmt, fd, fs } => {
                let w = self.fregs[fs.index()] as u32 as i32;
                match fmt {
                    FpFmt::D => self.set_fd(fd, w as f64),
                    FpFmt::S => self.set_fs32(fd, w as f32),
                }
            }
            Insn::TruncToW { fmt, fd, fs } => {
                let v = match fmt {
                    FpFmt::D => self.fd(fs),
                    FpFmt::S => self.fs32(fs) as f64,
                };
                self.fregs[fd.index()] = (v as i32) as u32 as u64;
            }
            Insn::Branch { cond, rs, rt, off } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                let t = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lez => (a as i32) <= 0,
                    BranchCond::Gtz => (a as i32) > 0,
                    BranchCond::Ltz => (a as i32) < 0,
                    BranchCond::Gez => (a as i32) >= 0,
                };
                if t {
                    taken = Some(next_pc.wrapping_add((off as i32 as u32) << 2));
                }
            }
            Insn::J { target } => taken = Some(target << 2),
            Insn::Jal { target } => {
                self.set_reg(Reg::RA, next_pc);
                taken = Some(target << 2);
            }
            Insn::Jr { rs } => taken = Some(self.reg(rs)),
            Insn::Jalr { rd, rs } => {
                let t = self.reg(rs);
                self.set_reg(rd, next_pc);
                taken = Some(t);
            }
        }

        self.pc = taken.unwrap_or(next_pc);
        Ok(Executed { pc, insn, taken, mem: mem_ref })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_asm::{Asm, SoftwareSupport};

    fn run(build: impl FnOnce(&mut Asm)) -> ArchState {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let p = a.link("t", &SoftwareSupport::on()).unwrap();
        let mut st = ArchState::new(&p);
        for _ in 0..100_000 {
            if st.halted {
                break;
            }
            st.step(&p).unwrap();
        }
        assert!(st.halted, "program did not halt");
        st
    }

    #[test]
    fn arithmetic_basics() {
        let st = run(|a| {
            a.li(Reg::T0, 40);
            a.addiu(Reg::T1, Reg::T0, 2);
            a.subu(Reg::T2, Reg::T1, Reg::T0);
            a.sll(Reg::T3, Reg::T1, 4);
        });
        assert_eq!(st.regs[Reg::T1.index()], 42);
        assert_eq!(st.regs[Reg::T2.index()], 2);
        assert_eq!(st.regs[Reg::T3.index()], 42 << 4);
    }

    #[test]
    fn zero_register_is_immutable() {
        let st = run(|a| {
            a.li(Reg::ZERO, 99);
            a.addiu(Reg::T0, Reg::ZERO, 5);
        });
        assert_eq!(st.regs[0], 0);
        assert_eq!(st.regs[Reg::T0.index()], 5);
    }

    #[test]
    fn memory_roundtrip_and_postinc() {
        let st = run(|a| {
            a.gp_array("buf", 64, 4);
            a.gp_addr(Reg::S0, "buf", 0);
            a.li(Reg::T0, 0x1234);
            a.sw_pi(Reg::T0, Reg::S0, 4);
            a.li(Reg::T1, 0x5678);
            a.sw_pi(Reg::T1, Reg::S0, 4);
            a.gp_addr(Reg::S1, "buf", 0);
            a.lw(Reg::T2, 0, Reg::S1);
            a.lw(Reg::T3, 4, Reg::S1);
        });
        assert_eq!(st.regs[Reg::T2.index()], 0x1234);
        assert_eq!(st.regs[Reg::T3.index()], 0x5678);
    }

    #[test]
    fn reg_reg_addressing() {
        let st = run(|a| {
            a.gp_array("tbl", 32, 4);
            a.gp_addr(Reg::S0, "tbl", 0);
            a.li(Reg::T0, 7);
            a.sw(Reg::T0, 12, Reg::S0);
            a.li(Reg::T1, 12);
            a.lw_x(Reg::T2, Reg::S0, Reg::T1);
        });
        assert_eq!(st.regs[Reg::T2.index()], 7);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10.
        let st = run(|a| {
            a.li(Reg::T0, 10);
            a.li(Reg::T1, 0);
            a.label("loop");
            a.addu(Reg::T1, Reg::T1, Reg::T0);
            a.addiu(Reg::T0, Reg::T0, -1);
            a.bgtz(Reg::T0, "loop");
        });
        assert_eq!(st.regs[Reg::T1.index()], 55);
    }

    #[test]
    fn calls_and_returns() {
        let st = run(|a| {
            a.li(Reg::A0, 5);
            a.call("double");
            a.move_(Reg::S0, Reg::V0);
            a.j("done");
            a.label("double");
            a.addu(Reg::V0, Reg::A0, Reg::A0);
            a.ret();
            a.label("done");
        });
        assert_eq!(st.regs[Reg::S0.index()], 10);
    }

    #[test]
    fn muldiv() {
        let st = run(|a| {
            a.li(Reg::T0, -6);
            a.li(Reg::T1, 7);
            a.mult(Reg::T0, Reg::T1);
            a.mflo(Reg::T2);
            a.li(Reg::T3, 43);
            a.li(Reg::T4, 5);
            a.div_(Reg::T3, Reg::T4);
            a.mflo(Reg::T5);
            a.mfhi(Reg::T6);
        });
        assert_eq!(st.regs[Reg::T2.index()] as i32, -42);
        assert_eq!(st.regs[Reg::T5.index()], 8);
        assert_eq!(st.regs[Reg::T6.index()], 3);
    }

    #[test]
    fn fp_pipeline() {
        use fac_isa::FReg;
        let st = run(|a| {
            a.li_d(FReg::F2, 6);
            a.li_d(FReg::F4, 7);
            a.mul_d(FReg::F6, FReg::F2, FReg::F4);
            a.gp_double("out", 0.0);
            a.s_d_gp(FReg::F6, "out", 0);
            a.c_lt_d(FReg::F2, FReg::F4);
            a.li(Reg::T0, 0);
            let yes = "fp_yes".to_string();
            a.bc1(true, &yes);
            a.j("fp_done");
            a.label(&yes);
            a.li(Reg::T0, 1);
            a.label("fp_done");
        });
        assert_eq!(st.regs[Reg::T0.index()], 1);
        assert_eq!(f64::from_bits(st.fregs[6]), 42.0);
    }

    #[test]
    fn sign_extension_of_subword_loads() {
        let st = run(|a| {
            a.gp_array("b", 8, 4);
            a.gp_addr(Reg::S0, "b", 0);
            a.li(Reg::T0, 0xff);
            a.sb(Reg::T0, 0, Reg::S0);
            a.lb(Reg::T1, 0, Reg::S0);
            a.lbu(Reg::T2, 0, Reg::S0);
        });
        assert_eq!(st.regs[Reg::T1.index()] as i32, -1);
        assert_eq!(st.regs[Reg::T2.index()], 0xff);
    }

    #[test]
    fn heap_allocation_is_aligned_per_policy() {
        let mut a = Asm::new();
        let sw = SoftwareSupport::on();
        a.alloc_fixed(Reg::S0, 12, &sw);
        a.alloc_fixed(Reg::S1, 12, &sw);
        a.halt();
        let p = a.link("t", &sw).unwrap();
        let mut st = ArchState::new(&p);
        while !st.halted {
            st.step(&p).unwrap();
        }
        assert_eq!(st.regs[Reg::S0.index()] % 32, 0);
        assert_eq!(st.regs[Reg::S1.index()] % 32, 0);
        assert_eq!(st.regs[Reg::S1.index()] - st.regs[Reg::S0.index()], 32);
    }

    #[test]
    fn reglist_skips_zero() {
        let mut l = RegList::default();
        l.push(0);
        assert!(l.is_empty());
        l.push(5);
        l.push(SB_FCC);
        assert_eq!(l.len(), 2);
        let v: Vec<u8> = l.iter().collect();
        assert_eq!(v, vec![5, SB_FCC]);
    }

    #[test]
    fn src_dst_lists() {
        use fac_isa::{AddrMode, LoadOp};
        let lw = Insn::Load {
            op: LoadOp::Lw,
            rt: Reg::T0,
            ea: AddrMode::PostInc { base: Reg::S0, step: 4 },
        };
        let srcs: Vec<u8> = src_regs(&lw).iter().collect();
        let dsts: Vec<u8> = dst_regs(&lw).iter().collect();
        assert_eq!(srcs, vec![Reg::S0.index() as u8]);
        assert!(dsts.contains(&(Reg::T0.index() as u8)));
        assert!(dsts.contains(&(Reg::S0.index() as u8)), "post-inc writes the base");
    }

    #[test]
    fn bad_pc_is_an_error() {
        let mut a = Asm::new();
        a.nop(); // falls off the end without halt
        let p = a.link("t", &SoftwareSupport::on()).unwrap();
        let mut st = ArchState::new(&p);
        st.step(&p).unwrap();
        assert_eq!(st.step(&p), Err(ExecError::BadPc(p.text_base + 4)));
    }
}
