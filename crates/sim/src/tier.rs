//! Tiered execution: a fast functional tier and SMARTS-style sampled timing.
//!
//! The detailed 5-stage model in [`crate::Machine`] prices every
//! instruction at full pipeline fidelity, which caps campaign throughput
//! long before billion-instruction workloads. This module adds the two
//! standard escape hatches:
//!
//! * [`Functional`] — a fast architectural-only interpreter built on a
//!   decoded-basic-block cache: each block is decoded once into a flat
//!   `Vec` of closed-form micro-ops ([`Op`]) and re-dispatched from the
//!   cache on every revisit, with the cache invalidated when the program
//!   fingerprint changes. Instruction semantics are the *same*
//!   [`crate::oracle::exec_insn`] the golden-reference interpreter
//!   retires through (the closed-form fast paths are pinned against it by
//!   the differential suite in `tests/tiered.rs` and by
//!   [`run_fast_verified`]).
//! * [`run_sampled`] — a sampling driver that alternates functional
//!   fast-forward with detailed measurement windows. The hand-off is the
//!   existing checkpoint frame: [`crate::functional_snapshot`] wraps the
//!   functional [`ArchState`] in a snapshot payload with fresh timing
//!   state, and [`crate::Machine::restore`] turns it into a live detailed
//!   [`crate::Session`]. Per-window cycle counts are stitched into a
//!   whole-program CPI estimate with a standard-error bound
//!   ([`SampledReport::cpi_stderr`]).
//!
//! Every tier shares the single step-budget rule (`check_budget`), so
//! `SimError::Runaway` fires at the identical instruction count whether a
//! program runs functionally, sampled, or fully detailed.

use crate::ckpt::program_fingerprint;
use crate::exec::{ArchState, ExecError};
use crate::machine::{check_budget, Machine, SimError};
use crate::oracle::{compare_memory, diverged, exec_insn, ExecCore, Oracle};
use crate::{ConfigError, MachineConfig};
use fac_asm::Program;
use fac_isa::{
    AddrMode, AluImmOp, AluOp, BranchCond, FReg, FpCond, FpFmt, FpOp, Insn, LoadOp, MulDivOp,
    Reg, ShiftOp, StoreOp,
};

/// Decoded blocks never grow past this many micro-ops: bounds decode
/// latency for straight-line code and keeps fuel accounting responsive.
const MAX_BLOCK_OPS: usize = 64;

/// A decoded addressing mode with the displacement sign-extension done at
/// decode time.
#[derive(Debug, Clone, Copy)]
enum Ea {
    /// `disp(base)` — displacement already sign-extended to 32 bits.
    BaseDisp { base: Reg, disp: u32 },
    /// `(base+index)`.
    BaseIndex { base: Reg, index: Reg },
    /// `(base)+step` — post-increment, step already sign-extended.
    PostInc { base: Reg, step: u32 },
}

impl Ea {
    fn decode(ea: AddrMode) -> Ea {
        match ea {
            AddrMode::BaseDisp { base, disp } => {
                Ea::BaseDisp { base, disp: disp as i32 as u32 }
            }
            AddrMode::BaseIndex { base, index } => Ea::BaseIndex { base, index },
            AddrMode::PostInc { base, step } => Ea::PostInc { base, step: step as i32 as u32 },
        }
    }

    /// Effective address and optional post-update, matching
    /// [`crate::oracle::exec_insn`]'s address arithmetic bit-for-bit
    /// (sign-extended displacement, wrapping add).
    fn resolve(self, state: &ArchState) -> (u32, Option<(Reg, u32)>) {
        match self {
            Ea::BaseDisp { base, disp } => {
                (state.regs[base.index()].wrapping_add(disp), None)
            }
            Ea::BaseIndex { base, index } => (
                state.regs[base.index()].wrapping_add(state.regs[index.index()]),
                None,
            ),
            Ea::PostInc { base, step } => {
                let b = state.regs[base.index()];
                (b, Some((base, b.wrapping_add(step))))
            }
        }
    }
}

/// One closed-form micro-op of a decoded block. The hot integer core
/// (ALU, shifts, loads/stores, branches with precomputed targets) executes
/// without re-decoding; everything else falls back to [`Op::Exec`], which
/// routes through the shared [`exec_insn`] semantics — so the fast tier is
/// never *wrong* on a cold opcode, merely less specialized.
#[derive(Debug, Clone, Copy)]
enum Op {
    Nop,
    Halt,
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    AluImm { op: AluImmOp, rt: Reg, rs: Reg, imm: i16 },
    Shift { op: ShiftOp, rd: Reg, rt: Reg, shamt: u8 },
    /// `lui` with the shift applied at decode time.
    Lui { rt: Reg, value: u32 },
    Load { op: LoadOp, rt: Reg, ea: Ea },
    Store { op: StoreOp, rt: Reg, ea: Ea },
    /// Conditional branch with the taken target precomputed.
    Branch { cond: BranchCond, rs: Reg, rt: Reg, target: u32 },
    /// `j` with the absolute target precomputed.
    Jump { target: u32 },
    /// `jal`: precomputed target and link value.
    Link { target: u32, link: u32 },
    JumpReg { rs: Reg },
    /// `jalr`: precomputed link value.
    LinkReg { rd: Reg, rs: Reg, link: u32 },
    /// FP condition branch with the taken target precomputed.
    Bc1 { on_true: bool, target: u32 },
    MulDiv { op: MulDivOp, rs: Reg, rt: Reg },
    Mfhi { rd: Reg },
    Mflo { rd: Reg },
    LoadFp { fmt: FpFmt, ft: FReg, ea: Ea },
    StoreFp { fmt: FpFmt, ft: FReg, ea: Ea },
    Fp { op: FpOp, fmt: FpFmt, fd: FReg, fs: FReg, ft: FReg },
    FpCmp { cond: FpCond, fmt: FpFmt, fs: FReg, ft: FReg },
    Mtc1 { rt: Reg, fs: FReg },
    Mfc1 { rt: Reg, fs: FReg },
    CvtFromW { fmt: FpFmt, fd: FReg, fs: FReg },
    /// Fallback: anything without a closed form (`trunc.w`).
    Exec(Insn),
}

/// Decodes one instruction at `pc`; the flag is `true` for block
/// terminators (control transfers and `halt`).
fn decode_op(insn: Insn, pc: u32) -> (Op, bool) {
    let fall = pc.wrapping_add(4);
    let branch_target = |off: i16| fall.wrapping_add((i32::from(off) as u32) << 2);
    match insn {
        Insn::Nop => (Op::Nop, false),
        Insn::Halt => (Op::Halt, true),
        Insn::Alu { op, rd, rs, rt } => (Op::Alu { op, rd, rs, rt }, false),
        Insn::AluImm { op, rt, rs, imm } => (Op::AluImm { op, rt, rs, imm }, false),
        Insn::Shift { op, rd, rt, shamt } => (Op::Shift { op, rd, rt, shamt }, false),
        Insn::Lui { rt, imm } => (Op::Lui { rt, value: u32::from(imm) << 16 }, false),
        Insn::Load { op, rt, ea } => (Op::Load { op, rt, ea: Ea::decode(ea) }, false),
        Insn::Store { op, rt, ea } => (Op::Store { op, rt, ea: Ea::decode(ea) }, false),
        Insn::Branch { cond, rs, rt, off } => {
            (Op::Branch { cond, rs, rt, target: branch_target(off) }, true)
        }
        Insn::J { target } => (Op::Jump { target: target << 2 }, true),
        Insn::Jal { target } => (Op::Link { target: target << 2, link: fall }, true),
        Insn::Jr { rs } => (Op::JumpReg { rs }, true),
        Insn::Jalr { rd, rs } => (Op::LinkReg { rd, rs, link: fall }, true),
        Insn::Bc1 { on_true, off } => (Op::Bc1 { on_true, target: branch_target(off) }, true),
        Insn::MulDiv { op, rs, rt } => (Op::MulDiv { op, rs, rt }, false),
        Insn::Mfhi { rd } => (Op::Mfhi { rd }, false),
        Insn::Mflo { rd } => (Op::Mflo { rd }, false),
        Insn::LoadFp { fmt, ft, ea } => (Op::LoadFp { fmt, ft, ea: Ea::decode(ea) }, false),
        Insn::StoreFp { fmt, ft, ea } => (Op::StoreFp { fmt, ft, ea: Ea::decode(ea) }, false),
        Insn::Fp { op, fmt, fd, fs, ft } => (Op::Fp { op, fmt, fd, fs, ft }, false),
        Insn::FpCmp { cond, fmt, fs, ft } => (Op::FpCmp { cond, fmt, fs, ft }, false),
        Insn::Mtc1 { rt, fs } => (Op::Mtc1 { rt, fs }, false),
        Insn::Mfc1 { rt, fs } => (Op::Mfc1 { rt, fs }, false),
        Insn::CvtFromW { fmt, fd, fs } => (Op::CvtFromW { fmt, fd, fs }, false),
        other => (Op::Exec(other), false),
    }
}

/// A pre-decoded run of straight-line code starting at some instruction
/// index, ending at the first control transfer, `halt`, block-size cap, or
/// end of text.
#[derive(Debug)]
struct DecodedBlock {
    ops: Vec<Op>,
}

fn decode_block(program: &Program, idx: usize) -> DecodedBlock {
    let mut ops = Vec::new();
    for (i, &insn) in program.text[idx..].iter().take(MAX_BLOCK_OPS).enumerate() {
        let pc = program.text_base.wrapping_add(((idx + i) as u32) << 2);
        let (op, terminator) = decode_op(insn, pc);
        ops.push(op);
        if terminator {
            break;
        }
    }
    DecodedBlock { ops }
}

/// The decoded-block cache: one slot per instruction index (blocks may
/// overlap — a branch into the middle of a straight-line run simply decodes
/// its own suffix block), invalidated wholesale when the program
/// fingerprint changes.
///
/// A cache can outlive one [`Functional`] run and be re-attached with
/// [`Functional::with_cache`], which is how a campaign amortizes decoding
/// across repeated runs of the same program.
#[derive(Debug, Default)]
pub struct BlockCache {
    program_fp: u64,
    blocks: Vec<Option<Box<DecodedBlock>>>,
    decoded: u64,
    invalidations: u64,
}

impl BlockCache {
    /// Creates an empty cache (bound to no program yet).
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Binds the cache to `program`: a no-op when the program fingerprint
    /// matches what the cache was decoded from, a full invalidation
    /// otherwise.
    pub fn sync(&mut self, program: &Program) {
        let fp = program_fingerprint(program);
        if fp != self.program_fp {
            if !self.blocks.is_empty() {
                self.invalidations += 1;
            }
            self.blocks.clear();
            self.program_fp = fp;
        }
        if self.blocks.len() != program.text.len() {
            self.blocks.resize_with(program.text.len(), || None);
        }
    }

    /// Blocks decoded since construction (monotone; survives `sync`).
    pub fn decoded_blocks(&self) -> u64 {
        self.decoded
    }

    /// Times a `sync` threw away a populated cache.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// The decoded block starting at instruction index `idx`, decoding it
    /// on first touch. The caller must have `sync`ed this cache to
    /// `program`.
    fn block(&mut self, program: &Program, idx: usize) -> &DecodedBlock {
        let slot = &mut self.blocks[idx];
        if slot.is_none() {
            *slot = Some(Box::new(decode_block(program, idx)));
            self.decoded += 1;
        }
        slot.as_deref().expect("slot filled above")
    }
}

/// Adapts [`ArchState`] to the shared [`ExecCore`] semantics for the
/// [`Op::Exec`] fallback: same register files, and loads/stores that honour
/// strict-memory mode through [`ArchState`]'s own trap rules.
struct ArchCore<'a>(&'a mut ArchState);

impl ExecCore for ArchCore<'_> {
    fn reg(&self, r: Reg) -> u32 {
        self.0.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.0.regs[r.index()] = v;
        }
    }

    fn freg(&self, f: FReg) -> u64 {
        self.0.fregs[f.index()]
    }

    fn set_freg(&mut self, f: FReg, v: u64) {
        self.0.fregs[f.index()] = v;
    }

    fn hi(&self) -> u32 {
        self.0.hi
    }

    fn set_hi(&mut self, v: u32) {
        self.0.hi = v;
    }

    fn lo(&self) -> u32 {
        self.0.lo
    }

    fn set_lo(&mut self, v: u32) {
        self.0.lo = v;
    }

    fn fcc(&self) -> bool {
        self.0.fcc
    }

    fn set_fcc(&mut self, v: bool) {
        self.0.fcc = v;
    }

    fn halt(&mut self) {
        self.0.halted = true;
    }

    fn load(&mut self, pc: u32, addr: u32, size: u32) -> Result<u64, ExecError> {
        self.0.check_mem(pc, addr, size, false)?;
        Ok(match size {
            1 => u64::from(self.0.mem.read_u8(addr)),
            2 => u64::from(self.0.mem.read_u16(addr)),
            4 => u64::from(self.0.mem.read_u32(addr)),
            _ => self.0.mem.read_u64(addr),
        })
    }

    fn store(&mut self, pc: u32, addr: u32, size: u32, value: u64) -> Result<(), ExecError> {
        self.0.check_mem(pc, addr, size, true)?;
        match size {
            1 => self.0.mem.write_u8(addr, value as u8),
            2 => self.0.mem.write_u16(addr, value as u16),
            4 => self.0.mem.write_u32(addr, value as u32),
            _ => self.0.mem.write_u64(addr, value),
        }
        Ok(())
    }
}

fn set_reg(state: &mut ArchState, r: Reg, v: u32) {
    if !r.is_zero() {
        state.regs[r.index()] = v;
    }
}

/// `a / b`, strength-reduced to `a * (1/b)` when `b` is a normal power of
/// two whose reciprocal is also normal. Both operations then round the
/// same exact real value `a·2⁻ᵏ`, so the result is bit-identical to the
/// hardware divide for every `a` (including NaN/∞/±0 propagation) — the
/// point is dodging the ~20-cycle FP divide latency that otherwise
/// serializes stencil kernels like `tomcatv` (which divides by 4 and 8 in
/// its inner loop). Pinned against the plain `a / b` the oracle executes
/// by the differential suite.
#[inline]
fn div_f64(a: f64, b: f64) -> f64 {
    const MANT: u64 = (1 << 52) - 1;
    let bits = b.to_bits();
    let exp = (bits >> 52) & 0x7ff;
    if bits & MANT == 0 && (1..=2045).contains(&exp) {
        let recip = (bits & (1 << 63)) | ((2046 - exp) << 52);
        a * f64::from_bits(recip)
    } else {
        a / b
    }
}

/// The `f32` twin of [`div_f64`].
#[inline]
fn div_f32(a: f32, b: f32) -> f32 {
    const MANT: u32 = (1 << 23) - 1;
    let bits = b.to_bits();
    let exp = (bits >> 23) & 0xff;
    if bits & MANT == 0 && (1..=253).contains(&exp) {
        let recip = (bits & (1 << 31)) | ((254 - exp) << 23);
        a * f32::from_bits(recip)
    } else {
        a / b
    }
}

/// Executes one micro-op, returning the successor PC. Closed-form cases
/// mirror [`exec_insn`] exactly (pinned by the differential tests); the
/// rest *are* [`exec_insn`] via [`ArchCore`].
#[inline(always)]
fn exec_op(state: &mut ArchState, pc: u32, op: &Op) -> Result<u32, ExecError> {
    let fall = pc.wrapping_add(4);
    match *op {
        Op::Nop => {}
        Op::Halt => state.halted = true,
        Op::Alu { op, rd, rs, rt } => {
            let (a, b) = (state.regs[rs.index()], state.regs[rt.index()]);
            let v = match op {
                AluOp::Add | AluOp::Addu => (i64::from(a) + i64::from(b)) as u32,
                AluOp::Sub | AluOp::Subu => (i64::from(a) - i64::from(b)) as u32,
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Nor => !(a | b),
                AluOp::Slt => u32::from((a as i32) < (b as i32)),
                AluOp::Sltu => u32::from(a < b),
                AluOp::Sllv => b << (a & 31),
                AluOp::Srlv => b >> (a & 31),
                AluOp::Srav => ((b as i32) >> (a & 31)) as u32,
            };
            set_reg(state, rd, v);
        }
        Op::AluImm { op, rt, rs, imm } => {
            let a = state.regs[rs.index()];
            let v = match op {
                AluImmOp::Addi | AluImmOp::Addiu => (i64::from(a) + i64::from(imm)) as u32,
                AluImmOp::Slti => u32::from((a as i32) < i32::from(imm)),
                AluImmOp::Sltiu => u32::from(a < (i32::from(imm) as u32)),
                AluImmOp::Andi => a & u32::from(imm as u16),
                AluImmOp::Ori => a | u32::from(imm as u16),
                AluImmOp::Xori => a ^ u32::from(imm as u16),
            };
            set_reg(state, rt, v);
        }
        Op::Shift { op, rd, rt, shamt } => {
            let b = state.regs[rt.index()];
            let s = u32::from(shamt) & 31;
            let v = match op {
                ShiftOp::Sll => b << s,
                ShiftOp::Srl => b >> s,
                ShiftOp::Sra => ((b as i32) >> s) as u32,
            };
            set_reg(state, rd, v);
        }
        Op::Lui { rt, value } => set_reg(state, rt, value),
        Op::Load { op, rt, ea } => {
            let (addr, post) = ea.resolve(state);
            state.check_mem(pc, addr, op.size(), false)?;
            let v = match op {
                LoadOp::Lb => state.mem.read_u8(addr) as i8 as i32 as u32,
                LoadOp::Lbu => u32::from(state.mem.read_u8(addr)),
                LoadOp::Lh => state.mem.read_u16(addr) as i16 as i32 as u32,
                LoadOp::Lhu => u32::from(state.mem.read_u16(addr)),
                LoadOp::Lw => state.mem.read_u32(addr),
            };
            set_reg(state, rt, v);
            if let Some((base, updated)) = post {
                set_reg(state, base, updated);
            }
        }
        Op::Store { op, rt, ea } => {
            let (addr, post) = ea.resolve(state);
            state.check_mem(pc, addr, op.size(), true)?;
            let v = state.regs[rt.index()];
            match op {
                StoreOp::Sb => state.mem.write_u8(addr, v as u8),
                StoreOp::Sh => state.mem.write_u16(addr, v as u16),
                StoreOp::Sw => state.mem.write_u32(addr, v),
            }
            if let Some((base, updated)) = post {
                set_reg(state, base, updated);
            }
        }
        Op::Branch { cond, rs, rt, target } => {
            let (a, b) = (state.regs[rs.index()], state.regs[rt.index()]);
            let taken = match cond {
                BranchCond::Eq => a == b,
                BranchCond::Ne => a != b,
                BranchCond::Lez => (a as i32) <= 0,
                BranchCond::Gtz => (a as i32) > 0,
                BranchCond::Ltz => (a as i32) < 0,
                BranchCond::Gez => (a as i32) >= 0,
            };
            if taken {
                return Ok(target);
            }
        }
        Op::Jump { target } => return Ok(target),
        Op::Link { target, link } => {
            set_reg(state, Reg::RA, link);
            return Ok(target);
        }
        Op::JumpReg { rs } => return Ok(state.regs[rs.index()]),
        Op::LinkReg { rd, rs, link } => {
            let t = state.regs[rs.index()];
            set_reg(state, rd, link);
            return Ok(t);
        }
        Op::Bc1 { on_true, target } => {
            if state.fcc == on_true {
                return Ok(target);
            }
        }
        Op::MulDiv { op, rs, rt } => {
            let (a, b) = (state.regs[rs.index()], state.regs[rt.index()]);
            match op {
                MulDivOp::Mult => {
                    let p = (a as i32 as i64).wrapping_mul(b as i32 as i64) as u64;
                    state.lo = p as u32;
                    state.hi = (p >> 32) as u32;
                }
                MulDivOp::Multu => {
                    let p = u64::from(a).wrapping_mul(u64::from(b));
                    state.lo = p as u32;
                    state.hi = (p >> 32) as u32;
                }
                MulDivOp::Div => {
                    if b == 0 {
                        state.lo = 0;
                        state.hi = 0;
                    } else {
                        state.lo = (a as i32).wrapping_div(b as i32) as u32;
                        state.hi = (a as i32).wrapping_rem(b as i32) as u32;
                    }
                }
                MulDivOp::Divu => {
                    state.lo = a.checked_div(b).unwrap_or(0);
                    state.hi = a.checked_rem(b).unwrap_or(0);
                }
            }
        }
        Op::Mfhi { rd } => set_reg(state, rd, state.hi),
        Op::Mflo { rd } => set_reg(state, rd, state.lo),
        Op::LoadFp { fmt, ft, ea } => {
            let (addr, post) = ea.resolve(state);
            state.check_mem(pc, addr, fmt.size(), false)?;
            state.fregs[ft.index()] = match fmt {
                FpFmt::S => u64::from(state.mem.read_u32(addr)),
                FpFmt::D => state.mem.read_u64(addr),
            };
            if let Some((base, updated)) = post {
                set_reg(state, base, updated);
            }
        }
        Op::StoreFp { fmt, ft, ea } => {
            let (addr, post) = ea.resolve(state);
            state.check_mem(pc, addr, fmt.size(), true)?;
            match fmt {
                FpFmt::S => state.mem.write_u32(addr, state.fregs[ft.index()] as u32),
                FpFmt::D => state.mem.write_u64(addr, state.fregs[ft.index()]),
            }
            if let Some((base, updated)) = post {
                set_reg(state, base, updated);
            }
        }
        Op::Fp { op, fmt, fd, fs, ft } => match fmt {
            FpFmt::D => {
                let a = f64::from_bits(state.fregs[fs.index()]);
                let b = f64::from_bits(state.fregs[ft.index()]);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => div_f64(a, b),
                    FpOp::Abs => a.abs(),
                    FpOp::Neg => -a,
                    FpOp::Mov => a,
                    FpOp::Sqrt => a.sqrt(),
                };
                state.fregs[fd.index()] = v.to_bits();
            }
            FpFmt::S => {
                let a = f32::from_bits(state.fregs[fs.index()] as u32);
                let b = f32::from_bits(state.fregs[ft.index()] as u32);
                let v = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => div_f32(a, b),
                    FpOp::Abs => a.abs(),
                    FpOp::Neg => -a,
                    FpOp::Mov => a,
                    FpOp::Sqrt => a.sqrt(),
                };
                state.fregs[fd.index()] = u64::from(v.to_bits());
            }
        },
        Op::FpCmp { cond, fmt, fs, ft } => {
            let (a, b) = match fmt {
                FpFmt::D => (
                    f64::from_bits(state.fregs[fs.index()]),
                    f64::from_bits(state.fregs[ft.index()]),
                ),
                FpFmt::S => (
                    f64::from(f32::from_bits(state.fregs[fs.index()] as u32)),
                    f64::from(f32::from_bits(state.fregs[ft.index()] as u32)),
                ),
            };
            state.fcc = match cond {
                FpCond::Eq => a == b,
                FpCond::Lt => a < b,
                FpCond::Le => a <= b,
            };
        }
        Op::Mtc1 { rt, fs } => state.fregs[fs.index()] = u64::from(state.regs[rt.index()]),
        Op::Mfc1 { rt, fs } => {
            let bits = state.fregs[fs.index()] as u32;
            set_reg(state, rt, bits);
        }
        Op::CvtFromW { fmt, fd, fs } => {
            let w = state.fregs[fs.index()] as u32 as i32;
            state.fregs[fd.index()] = match fmt {
                FpFmt::D => f64::from(w).to_bits(),
                FpFmt::S => u64::from((w as f32).to_bits()),
            };
        }
        Op::Exec(insn) => {
            let eff = exec_insn(&mut ArchCore(state), pc, insn)?;
            return Ok(eff.next_pc);
        }
    }
    Ok(fall)
}

/// The fast functional tier: architectural state only, driven through the
/// decoded-block cache. 10–100× the detailed model's instruction
/// throughput (see EXPERIMENTS.md), bit-identical architectural results —
/// pinned by [`run_fast_verified`] and the three-way differential matrix
/// in the test suite.
#[derive(Debug)]
pub struct Functional<'p> {
    program: &'p Program,
    state: ArchState,
    cache: BlockCache,
    insts: u64,
    max_insts: u64,
}

impl<'p> Functional<'p> {
    /// Creates a functional interpreter at `program`'s entry point with
    /// lenient memory, a fresh block cache, and the default 2 × 10⁹
    /// instruction budget.
    pub fn new(program: &'p Program) -> Functional<'p> {
        let mut cache = BlockCache::new();
        cache.sync(program);
        Functional {
            program,
            state: ArchState::new(program),
            cache,
            insts: 0,
            max_insts: 2_000_000_000,
        }
    }

    /// Enables strict data-memory semantics (trap misaligned accesses and
    /// loads from unmapped pages), matching
    /// [`MachineConfig::with_strict_mem`](crate::MachineConfig).
    pub fn with_strict_mem(mut self, strict: bool) -> Functional<'p> {
        self.state.strict_mem = strict;
        self
    }

    /// Caps total retired instructions; the watchdog fires as
    /// [`SimError::Runaway`] at exactly the same boundary as every other
    /// tier (shared `check_budget` rule).
    pub fn with_max_insts(mut self, max: u64) -> Functional<'p> {
        self.max_insts = max;
        self
    }

    /// Replaces the block cache with one carried over from an earlier run
    /// (re-`sync`ed to this program, so a stale cache self-invalidates).
    pub fn with_cache(mut self, mut cache: BlockCache) -> Functional<'p> {
        cache.sync(self.program);
        self.cache = cache;
        self
    }

    /// The current architectural state.
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// Consumes the interpreter, yielding its architectural state.
    pub fn into_state(self) -> ArchState {
        self.state
    }

    /// Gives the block cache back for reuse by a later run.
    pub fn into_cache(self) -> BlockCache {
        self.cache
    }

    /// Retired instructions so far (including any adopted via
    /// [`Functional::adopt`]).
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Whether the program has executed its `halt`.
    pub fn halted(&self) -> bool {
        self.state.halted
    }

    /// Replaces the architectural state with one that progressed outside
    /// this tier — the sampled driver hands the detailed window's final
    /// state back here — and accounts its `retired` instructions against
    /// this tier's budget.
    pub fn adopt(&mut self, state: ArchState, retired: u64) {
        self.state = state;
        self.insts += retired;
    }

    /// Executes at most `fuel` instructions, stopping early at `halt`.
    /// Returns the number retired by this call.
    ///
    /// # Errors
    ///
    /// [`SimError::Runaway`] at budget exhaustion, [`SimError::Exec`] when
    /// the PC leaves the text segment or a strict-memory trap fires.
    pub fn run(&mut self, fuel: u64) -> Result<u64, SimError> {
        let mut done = 0u64;
        'blocks: while done < fuel && !self.state.halted {
            let Some(idx) = self.program.insn_index(self.state.pc) else {
                return Err(SimError::Exec(ExecError::BadPc(self.state.pc)));
            };
            let this = &mut *self;
            let block = this.cache.block(this.program, idx);
            // Whole blocks retire check-free when both the fuel and the
            // instruction budget admit every op — blocks are straight-line
            // by construction, so nothing inside can branch or halt early.
            // Near either limit the tail falls back to per-op accounting:
            // `Runaway` must fire at the identical count on every tier.
            let n = block.ops.len() as u64;
            let headroom = (fuel - done).min(this.max_insts.saturating_sub(this.insts));
            if n <= headroom {
                // `pc` rides in a local so the compiler keeps it in a
                // register across the whole block instead of spilling to
                // `state.pc` around every (opaque) `exec_op` call.
                let mut pc = this.state.pc;
                for (i, op) in block.ops.iter().enumerate() {
                    match exec_op(&mut this.state, pc, op) {
                        Ok(next) => pc = next,
                        Err(e) => {
                            this.state.pc = pc;
                            this.insts += i as u64;
                            return Err(SimError::Exec(e));
                        }
                    }
                }
                this.state.pc = pc;
                this.insts += n;
                done += n;
            } else {
                for op in &block.ops {
                    check_budget(this.insts, this.max_insts)?;
                    let pc = this.state.pc;
                    this.state.pc = exec_op(&mut this.state, pc, op).map_err(SimError::Exec)?;
                    this.insts += 1;
                    done += 1;
                    if this.state.halted || done >= fuel {
                        continue 'blocks;
                    }
                }
            }
        }
        Ok(done)
    }

    /// Runs until `halt` (or an error). Returns instructions retired by
    /// this call.
    ///
    /// # Errors
    ///
    /// Same as [`Functional::run`].
    pub fn run_to_halt(&mut self) -> Result<u64, SimError> {
        self.run(u64::MAX)
    }
}

/// The fast tier's answer: architectural outcome only — no cycles, no
/// cache statistics, because nothing timed was simulated.
#[derive(Debug, Clone, PartialEq)]
pub struct FastReport {
    /// Program name.
    pub program: String,
    /// Retired instructions.
    pub insts: u64,
    /// Final architectural state.
    pub final_state: ArchState,
}

/// Runs `program` to halt on the fast functional tier under `config`'s
/// memory discipline (only `strict_mem` matters to an untimed run).
///
/// # Errors
///
/// [`SimError::InvalidConfig`], [`SimError::Runaway`], or
/// [`SimError::Exec`] as for any run.
pub fn run_fast(
    config: &MachineConfig,
    program: &Program,
    max_insts: u64,
) -> Result<FastReport, SimError> {
    config.validate()?;
    let mut f = Functional::new(program)
        .with_strict_mem(config.strict_mem)
        .with_max_insts(max_insts);
    f.run_to_halt()?;
    Ok(FastReport {
        program: program.name.clone(),
        insts: f.insts(),
        final_state: f.into_state(),
    })
}

/// [`run_fast`] with the golden [`Oracle`] in lockstep: every retired
/// instruction's full architectural state (registers, FP registers, HI,
/// LO, the condition flag, the PC) is compared, and the final memory is
/// swept byte-for-byte. This is the fast-tier analogue of
/// [`crate::Lockstep`].
///
/// # Errors
///
/// [`SimError::Divergence`] naming the first mismatched quantity, plus
/// everything [`run_fast`] can return.
pub fn run_fast_verified(
    config: &MachineConfig,
    program: &Program,
    max_insts: u64,
) -> Result<FastReport, SimError> {
    config.validate()?;
    let mut fast = Functional::new(program)
        .with_strict_mem(config.strict_mem)
        .with_max_insts(max_insts);
    let mut oracle = Oracle::new(program);
    while !fast.halted() {
        let step = fast.insts();
        if fast.run(1)? == 0 {
            break;
        }
        oracle.step(program)?;
        compare_arch(step, fast.state(), &oracle)?;
    }
    if !oracle.halted {
        return Err(SimError::Divergence {
            step: fast.insts(),
            pc: oracle.pc,
            expected: "oracle still running".into(),
            actual: "fast tier halted".into(),
        });
    }
    compare_memory(fast.insts(), fast.state(), &oracle)?;
    Ok(FastReport {
        program: program.name.clone(),
        insts: fast.insts(),
        final_state: fast.into_state(),
    })
}

/// Compares the fast tier's complete architectural state against the
/// oracle's after the same number of retired instructions.
fn compare_arch(step: u64, state: &ArchState, oracle: &Oracle) -> Result<(), SimError> {
    for i in 0..32 {
        if state.regs[i] != oracle.regs[i] {
            return Err(diverged(step, state.pc, Reg::new(i as u8), oracle.regs[i], state.regs[i]));
        }
    }
    for i in 0..32 {
        if state.fregs[i] != oracle.fregs[i] {
            return Err(diverged(
                step,
                state.pc,
                format!("f{i}"),
                oracle.fregs[i],
                state.fregs[i],
            ));
        }
    }
    if state.hi != oracle.hi {
        return Err(diverged(step, state.pc, "hi", oracle.hi, state.hi));
    }
    if state.lo != oracle.lo {
        return Err(diverged(step, state.pc, "lo", oracle.lo, state.lo));
    }
    if state.fcc != oracle.fcc {
        return Err(diverged(step, state.pc, "fcc", u32::from(oracle.fcc), u32::from(state.fcc)));
    }
    if state.pc != oracle.pc {
        return Err(diverged(step, state.pc, "next pc", oracle.pc, state.pc));
    }
    Ok(())
}

/// The sampling regime: every `every` instructions, the first `window` of
/// them run through the detailed pipeline; the rest fast-forward
/// functionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Sampling period in instructions.
    pub every: u64,
    /// Detailed measurement window at the start of each period, in
    /// instructions. Must satisfy `1 <= window <= every`.
    pub window: u64,
}

impl SampleSpec {
    /// Validates `1 <= window <= every`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadSampleSpec`] otherwise.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == 0 || self.window > self.every {
            return Err(ConfigError::BadSampleSpec { every: self.every, window: self.window });
        }
        Ok(())
    }
}

/// One detailed measurement window of a sampled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStats {
    /// Whole-program instruction index at which the window began.
    pub start_inst: u64,
    /// Instructions the window retired (the last window may be short).
    pub insts: u64,
    /// Cycles the window consumed, including the pipeline drain.
    pub cycles: u64,
}

/// The sampled tier's answer: an extrapolated whole-program timing
/// estimate with its sampling error, plus the exact architectural outcome
/// (the functional tier retired every instruction between windows, so
/// `final_state` is not an estimate).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledReport {
    /// Program name.
    pub program: String,
    /// Total retired instructions (exact).
    pub insts: u64,
    /// Every measurement window, in program order.
    pub windows: Vec<WindowStats>,
    /// Instructions measured in detail (Σ window insts).
    pub measured_insts: u64,
    /// Cycles measured in detail (Σ window cycles).
    pub measured_cycles: u64,
    /// Estimated cycles per instruction: `measured_cycles /
    /// measured_insts`.
    pub cpi: f64,
    /// Standard error of the per-window CPI sample — `s / √n` with `s` the
    /// sample standard deviation over the `n` windows. `0.0` with fewer
    /// than two windows (no spread to estimate; treat the estimate as
    /// unbounded, see DESIGN.md §13).
    pub cpi_stderr: f64,
    /// Extrapolated whole-program cycles: `round(cpi × insts)`.
    pub est_cycles: u64,
    /// Final architectural state (exact, not sampled).
    pub final_state: ArchState,
}

/// Runs `program` under the SMARTS-style sampling regime: each period of
/// `spec.every` instructions opens with `spec.window` instructions through
/// the full detailed pipeline (cold timing structures — see DESIGN.md §13
/// for the bias discussion), and fast-forwards the remainder functionally.
/// The window-first phase guarantees at least one measurement window for
/// any program that retires at least one instruction.
///
/// The functional-to-detailed hand-off is a real checkpoint
/// ([`crate::functional_snapshot`] → [`crate::Machine::restore`]), so the
/// detailed window starts from exactly the architectural state the fast
/// tier produced, fingerprint-verified.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for a bad `config` or `spec`;
/// [`SimError::Runaway`] when `max_insts` is exhausted (unified budget
/// across both tiers); otherwise as [`crate::Machine::run`].
pub fn run_sampled(
    config: &MachineConfig,
    program: &Program,
    spec: SampleSpec,
    max_insts: u64,
) -> Result<SampledReport, SimError> {
    spec.validate()?;
    config.validate()?;
    // The global budget is enforced here, across both tiers; the detailed
    // session's own watchdog would double-count window instructions.
    let machine = Machine::new(*config).with_max_insts(u64::MAX);
    let mut fun = Functional::new(program)
        .with_strict_mem(config.strict_mem)
        .with_max_insts(max_insts);
    let mut windows = Vec::new();

    while !fun.halted() {
        let start = fun.insts();
        let snap = crate::ckpt::functional_snapshot(config, program, fun.state());
        let mut sess = machine.restore(program, &snap)?;
        let mut w = 0u64;
        while w < spec.window && !sess.halted() {
            check_budget(fun.insts() + w, max_insts)?;
            if !sess.step()? {
                break;
            }
            w += 1;
        }
        let rep = sess.finish()?;
        windows.push(WindowStats { start_inst: start, insts: rep.stats.insts, cycles: rep.stats.cycles });
        fun.adopt(rep.final_state, w);
        if !fun.halted() && spec.every > spec.window {
            fun.run(spec.every - spec.window)?;
        }
    }

    let measured_insts: u64 = windows.iter().map(|w| w.insts).sum();
    let measured_cycles: u64 = windows.iter().map(|w| w.cycles).sum();
    let cpi = if measured_insts == 0 {
        0.0
    } else {
        measured_cycles as f64 / measured_insts as f64
    };
    let cpis: Vec<f64> = windows
        .iter()
        .filter(|w| w.insts > 0)
        .map(|w| w.cycles as f64 / w.insts as f64)
        .collect();
    let cpi_stderr = if cpis.len() < 2 {
        0.0
    } else {
        let n = cpis.len() as f64;
        let mean = cpis.iter().sum::<f64>() / n;
        let var = cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1.0);
        (var / n).sqrt()
    };
    let insts = fun.insts();
    let est_cycles = (cpi * insts as f64).round() as u64;
    Ok(SampledReport {
        program: program.name.clone(),
        insts,
        windows,
        measured_insts,
        measured_cycles,
        cpi,
        cpi_stderr,
        est_cycles,
        final_state: fun.into_state(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_asm::{Asm, SoftwareSupport};

    fn sum_program() -> Program {
        let mut a = Asm::new();
        a.gp_array("data", 256, 4);
        a.gp_word("checksum", 0);
        a.gp_addr(Reg::S0, "data", 0);
        a.li(Reg::T0, 64);
        a.li(Reg::T1, 3);
        a.label("fill");
        a.sw_pi(Reg::T1, Reg::S0, 4);
        a.addiu(Reg::T1, Reg::T1, 7);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "fill");
        a.gp_addr(Reg::S0, "data", 0);
        a.li(Reg::T0, 64);
        a.li(Reg::T2, 0);
        a.label("sum");
        a.lw_pi(Reg::T3, Reg::S0, 4);
        a.addu(Reg::T2, Reg::T2, Reg::T3);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.bgtz(Reg::T0, "sum");
        a.sw_gp(Reg::T2, "checksum", 0);
        a.halt();
        a.link("sum", &SoftwareSupport::on()).unwrap()
    }

    #[test]
    fn fast_tier_matches_oracle_on_sum() {
        let program = sum_program();
        let cfg = MachineConfig::paper_baseline();
        let fast = run_fast_verified(&cfg, &program, 1_000_000).unwrap();
        let mut oracle = Oracle::new(&program);
        let steps = oracle.run(&program, 1_000_000).unwrap();
        assert_eq!(fast.insts, steps);
    }

    #[test]
    fn block_cache_invalidates_on_program_change() {
        let program = sum_program();
        let mut f = Functional::new(&program);
        f.run_to_halt().unwrap();
        let cache = f.into_cache();
        assert!(cache.decoded_blocks() > 0);
        assert_eq!(cache.invalidations(), 0);

        // A different program must flush the cache exactly once.
        let mut a = Asm::new();
        a.li(Reg::T0, 1);
        a.halt();
        let other = a.link("other", &SoftwareSupport::on()).unwrap();
        let mut f2 = Functional::new(&other).with_cache(cache);
        f2.run_to_halt().unwrap();
        let cache = f2.into_cache();
        assert_eq!(cache.invalidations(), 1);
    }

    #[test]
    fn sample_spec_validation() {
        assert!(SampleSpec { every: 100, window: 10 }.validate().is_ok());
        assert!(SampleSpec { every: 100, window: 100 }.validate().is_ok());
        assert!(SampleSpec { every: 100, window: 0 }.validate().is_err());
        assert!(SampleSpec { every: 100, window: 101 }.validate().is_err());
    }

    #[test]
    fn sampled_cpi_is_exact_when_every_inst_is_measured() {
        // window == every means the "sampled" run measures everything:
        // the estimate must equal the straight detailed run exactly.
        let program = sum_program();
        let cfg = MachineConfig::paper_baseline().with_fac();
        let full = Machine::new(cfg).run(&program).unwrap();
        let spec = SampleSpec { every: 50, window: 50 };
        let sampled = run_sampled(&cfg, &program, spec, 1_000_000).unwrap();
        assert_eq!(sampled.insts, full.stats.insts);
        assert_eq!(sampled.measured_insts, full.stats.insts);
        assert_eq!(sampled.final_state.regs, full.final_state.regs);
        assert_eq!(sampled.final_state.mem, full.final_state.mem);
    }
}
