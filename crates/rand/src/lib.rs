//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `rand`'s 0.8 API it actually uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer and float
//! ranges. The generator is splitmix64 — statistically solid for workload
//! synthesis and fully deterministic for a given seed, which is all the
//! simulator needs (checksums are compared between runs of the same build).
//!
//! This is *not* a cryptographic RNG and makes no attempt to match the
//! bit-streams of the real `rand` crate.

use core::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is provided; the byte-array
/// seeding path of the real crate is unused here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension trait, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: a splitmix64 stream.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = r.gen_range(0usize..3);
            assert!(n < 3);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u32> = (0..10).map(|_| a.gen_range(0u32..u32::MAX)).collect();
        let vb: Vec<u32> = (0..10).map(|_| b.gen_range(0u32..u32::MAX)).collect();
        assert_ne!(va, vb);
    }
}
