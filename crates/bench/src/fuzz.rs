//! The differential fuzzing campaign: seeded program generation, lockstep
//! oracle checking across a config matrix, and automatic failure shrinking.
//!
//! Each seed drives [`fac_asm::fuzz_source`] to a small, valid, halting
//! program stressing the four FAC failure classes, then runs it under the
//! [`Lockstep`] differential checker against every machine configuration in
//! [`config_matrix`]: the paper baseline, FAC, and FAC under each built-in
//! fault plan. The per-seed work — generation, checking, shrinking — is
//! self-contained, so seeds fan out over the [`crate::par::JobSet`] harness
//! and the campaign artifact is **byte-identical at any `--jobs` count**.
//!
//! A failing seed is shrunk on the spot by [`shrink`], a deterministic
//! delta-debugging loop (delete lines, halve constants, neutralize
//! registers) that re-checks every candidate against the same configuration
//! and keeps only changes that preserve the failure, yielding a minimal
//! `.fasm` repro ready to commit to `crates/sim/tests/corpus/`.
//!
//! The campaign also self-tests: [`CampaignConfig::escape`] wires the
//! lockstep's escaped-speculation saboteur in, modelling a verification
//! circuit that silently fails to repair bad speculations. In that mode a
//! seed that does *not* diverge is the failure — the oracle would have
//! missed real architectural corruption.
//!
//! Campaigns are crash-safe: each seed's work is journaled to a durable
//! [`Manifest`] the moment it finishes (see [`run_campaign_with`]), so a
//! killed campaign resumed with the same parameters skips finished seeds
//! and still produces a byte-identical artifact. Under the keep-going
//! policy a seed whose *job* fails (panic, deadline) degrades to a `null`
//! lane in the artifact instead of aborting the campaign.

use crate::manifest::Manifest;
use crate::par::{self, JobSet, RunOptions};
use fac_asm::{assemble_and_link, fuzz_source, SoftwareSupport};
use fac_core::FaultPlan;
use fac_sim::obs::Json;
use fac_sim::{Lockstep, MachineConfig, SimError};

/// Default per-program instruction budget. Generated programs retire a few
/// thousand instructions; anything near this bound is a runaway.
pub const FUZZ_MAX_STEPS: u64 = 2_000_000;

/// Candidate-evaluation budget for one [`shrink`] call. Bounds the worst
/// case (every pass keeps finding reductions) without affecting typical
/// shrinks, which converge in a few hundred candidates.
const SHRINK_BUDGET: usize = 4_000;

/// What one fuzzing campaign runs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of consecutive seeds.
    pub count: u64,
    /// Per-program instruction budget for both the machine and the oracle.
    pub max_steps: u64,
    /// When set, runs the self-test instead: the lockstep's
    /// escaped-speculation saboteur is armed with this plan and every seed
    /// is *expected* to diverge.
    pub escape: Option<FaultPlan>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { start: 0, count: 100, max_steps: FUZZ_MAX_STEPS, escape: None }
    }
}

/// One divergence (or other check failure) found for a seed, with its
/// shrunk repro.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Label of the machine configuration that failed (see
    /// [`config_matrix`]), or `"assemble"` when the generated source did
    /// not build.
    pub config: String,
    /// The rendered [`SimError`].
    pub error: String,
    /// Line count of the generated program.
    pub original_lines: usize,
    /// Line count after shrinking.
    pub shrunk_lines: usize,
    /// The minimal reproducing source (assembles, still fails the same
    /// way under the same configuration).
    pub shrunk: String,
}

/// Everything the campaign learned about one seed.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The generator seed.
    pub seed: u64,
    /// Retired instructions of the longest clean run (0 when nothing ran
    /// clean). Pinning this in the artifact makes silent nondeterminism in
    /// the generator or the simulator visible as an artifact diff.
    pub insts: u64,
    /// Check failures, in config-matrix order.
    pub failures: Vec<Failure>,
}

/// The campaign result: per-seed outcomes in seed order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign parameters.
    pub config: CampaignConfig,
    /// One outcome per seed, ordered by seed.
    pub outcomes: Vec<SeedOutcome>,
}

impl CampaignReport {
    /// Every failure across the campaign, with its seed.
    pub fn failures(&self) -> impl Iterator<Item = (u64, &Failure)> {
        self.outcomes.iter().flat_map(|o| o.failures.iter().map(move |f| (o.seed, f)))
    }

    /// Seeds that found no failure (in escape mode these are the *bad*
    /// seeds: the saboteur went unnoticed).
    pub fn clean_seeds(&self) -> impl Iterator<Item = u64> + '_ {
        self.outcomes.iter().filter(|o| o.failures.is_empty()).map(|o| o.seed)
    }

    /// The machine-readable campaign artifact. Deterministic: identical
    /// for identical campaign parameters at any worker count.
    pub fn to_json(&self) -> Json {
        campaign_doc(&self.config, self.outcomes.iter().map(seed_json).collect(), &[])
    }
}

/// The per-seed artifact cell — exactly the object that appears in the
/// campaign document's `seeds` array, and exactly what the resume
/// manifest journals per finished seed.
fn seed_json(o: &SeedOutcome) -> Json {
    let mut s = Json::obj();
    s.set("seed", Json::U64(o.seed));
    s.set("insts", Json::U64(o.insts));
    let mut fails = Vec::new();
    for f in &o.failures {
        let mut j = Json::obj();
        j.set("config", Json::Str(f.config.clone()));
        j.set("error", Json::Str(f.error.clone()));
        j.set("original_lines", Json::U64(f.original_lines as u64));
        j.set("shrunk_lines", Json::U64(f.shrunk_lines as u64));
        j.set("shrunk", Json::Str(f.shrunk.clone()));
        fails.push(j);
    }
    s.set("failures", Json::Arr(fails));
    s
}

/// Inverse of [`seed_json`]; the only way malformed cells arrive here is
/// through a tampered resume manifest, so failures are typed
/// [`SimError::Checkpoint`].
fn parse_seed(cell: &Json) -> Result<SeedOutcome, SimError> {
    let bad = |what: &str| SimError::Checkpoint {
        path: "campaign cell".to_string(),
        reason: format!("missing or malformed '{what}'"),
    };
    let seed = cell.get("seed").and_then(Json::as_u64).ok_or_else(|| bad("seed"))?;
    let insts = cell.get("insts").and_then(Json::as_u64).ok_or_else(|| bad("insts"))?;
    let Some(Json::Arr(fails)) = cell.get("failures") else {
        return Err(bad("failures"));
    };
    let mut failures = Vec::new();
    for f in fails {
        let s = |k: &'static str| {
            f.get(k).and_then(Json::as_str).map(str::to_string).ok_or_else(|| bad(k))
        };
        let n = |k: &'static str| f.get(k).and_then(Json::as_u64).ok_or_else(|| bad(k));
        failures.push(Failure {
            config: s("config")?,
            error: s("error")?,
            original_lines: n("original_lines")? as usize,
            shrunk_lines: n("shrunk_lines")? as usize,
            shrunk: s("shrunk")?,
        });
    }
    Ok(SeedOutcome { seed, insts, failures })
}

/// Assembles the campaign document from per-seed cells (possibly with
/// `null` lanes for degraded seeds) and the errors behind those lanes.
fn campaign_doc(cc: &CampaignConfig, seeds: Vec<Json>, errors: &[(String, SimError)]) -> Json {
    let mut doc = Json::obj();
    doc.set("start", Json::U64(cc.start));
    doc.set("count", Json::U64(cc.count));
    doc.set("max_steps", Json::U64(cc.max_steps));
    doc.set(
        "escape",
        match cc.escape {
            Some(p) => Json::Str(p.to_string()),
            None => Json::Null,
        },
    );
    doc.set("configs", Json::Arr(
        config_matrix(cc.escape).into_iter().map(|(label, _)| Json::Str(label)).collect(),
    ));
    let failure_count: u64 = seeds
        .iter()
        .map(|s| match s.get("failures") {
            Some(Json::Arr(v)) => v.len() as u64,
            _ => 0,
        })
        .sum();
    doc.set("failure_count", Json::U64(failure_count));
    doc.set("seeds", Json::Arr(seeds));
    if !errors.is_empty() {
        doc.set("errors", par::errors_json(errors));
    }
    doc
}

/// One campaign run through the crash-safety harness.
#[derive(Debug)]
pub struct Campaign {
    /// The campaign parameters.
    pub config: CampaignConfig,
    /// One artifact cell per seed, in seed order; [`Json::Null`] where the
    /// seed's job failed under the keep-going policy (the lane is kept so
    /// seed positions stay stable across runs).
    pub cells: Vec<Json>,
    /// The job failures behind the `null` lanes — always empty in strict
    /// mode, where the first failure aborts the campaign instead.
    pub errors: Vec<(String, SimError)>,
}

impl Campaign {
    /// The machine-readable campaign artifact, with `null` lanes for
    /// degraded seeds and an `errors` block when any seed degraded.
    /// Byte-identical at any worker count, and byte-identical whether the
    /// campaign ran straight through or was killed and resumed.
    pub fn to_json(&self) -> Json {
        campaign_doc(&self.config, self.cells.clone(), &self.errors)
    }

    /// The structured report over the seeds that did run (degraded lanes
    /// are skipped).
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] when a cell restored from a resume
    /// manifest does not have the campaign cell shape.
    pub fn report(&self) -> Result<CampaignReport, SimError> {
        let mut outcomes = Vec::new();
        for cell in &self.cells {
            if *cell == Json::Null {
                continue;
            }
            outcomes.push(parse_seed(cell)?);
        }
        Ok(CampaignReport { config: self.config, outcomes })
    }
}

/// The configurations every fuzzed program is checked under.
///
/// Normal mode: the paper baseline, FAC, and FAC under each of the
/// [`FaultPlan::builtin`] campaigns — the full fault matrix must stay
/// architecturally invisible. Escape mode checks a single FAC config; the
/// corruption is injected by the lockstep saboteur, not the fault plan
/// (whose faults the pipeline's own verification circuit repairs).
pub fn config_matrix(escape: Option<FaultPlan>) -> Vec<(String, MachineConfig)> {
    if let Some(plan) = escape {
        return vec![(format!("fac+escape:{plan}"), MachineConfig::paper_baseline().with_fac())];
    }
    let mut matrix = vec![
        ("baseline".to_string(), MachineConfig::paper_baseline()),
        ("fac".to_string(), MachineConfig::paper_baseline().with_fac()),
    ];
    for plan in FaultPlan::builtin() {
        matrix.push((
            format!("fac+{plan}"),
            MachineConfig::paper_baseline().with_fac().with_fault_plan(plan),
        ));
    }
    matrix
}

/// Builds the lockstep checker for one cell of the matrix.
fn lockstep(cfg: MachineConfig, cc: &CampaignConfig) -> Lockstep {
    let mut ls = Lockstep::new(cfg).with_max_insts(cc.max_steps);
    if let Some(plan) = cc.escape {
        ls = ls.with_escaped_speculation(plan);
    }
    ls
}

/// Runs the whole campaign across `jobs` worker threads with the default
/// robustness policy and no resume manifest.
///
/// Check failures do **not** abort the campaign — they are shrunk and
/// reported in the [`CampaignReport`]; only infrastructure failures (a
/// panicking job) propagate as errors.
///
/// # Errors
///
/// [`SimError::Panic`] if a seed's job panicked.
pub fn run_campaign(cc: &CampaignConfig, jobs: usize) -> Result<CampaignReport, SimError> {
    run_campaign_with(cc, jobs, &RunOptions::default(), None)?.report()
}

/// Runs the campaign under an explicit robustness policy, journaling each
/// finished seed to `manifest` (when resuming) and skipping seeds it
/// already holds. Under `opts.keep_going`, failed seed jobs become `null`
/// lanes in [`Campaign::cells`] instead of aborting.
///
/// # Errors
///
/// In strict mode (no `keep_going`), the lowest-seed job failure —
/// [`SimError::Panic`], [`SimError::Timeout`], or whatever the job
/// returned after its retries were exhausted.
pub fn run_campaign_with(
    cc: &CampaignConfig,
    jobs: usize,
    opts: &RunOptions,
    manifest: Option<&Manifest>,
) -> Result<Campaign, SimError> {
    let mut set = JobSet::new();
    for seed in cc.start..cc.start.saturating_add(cc.count) {
        set.push(format!("fuzz:{seed}"), move || Ok(seed_json(&run_seed(seed, cc))));
    }
    let results = set.run_cached(jobs, opts, manifest);
    let (cells, errors) = if opts.keep_going {
        par::degrade(results)
    } else {
        (par::strict(results)?, Vec::new())
    };
    Ok(Campaign { config: *cc, cells, errors })
}

/// Generates, checks and (on failure) shrinks one seed.
fn run_seed(seed: u64, cc: &CampaignConfig) -> SeedOutcome {
    let source = fuzz_source(seed);
    let original_lines = source.lines().count();
    let name = format!("fuzz-{seed}");
    let program = match assemble_and_link(&source, &name, &SoftwareSupport::on()) {
        Ok(p) => p,
        Err(e) => {
            // A generator bug: report it as a failure of the "assemble"
            // pseudo-config, unshrunk (there is no failing run to preserve).
            return SeedOutcome {
                seed,
                insts: 0,
                failures: vec![Failure {
                    config: "assemble".to_string(),
                    error: e.to_string(),
                    original_lines,
                    shrunk_lines: original_lines,
                    shrunk: source,
                }],
            };
        }
    };
    let mut insts = 0;
    let mut failures = Vec::new();
    for (label, cfg) in config_matrix(cc.escape) {
        match lockstep(cfg, cc).run(&program) {
            Ok(report) => insts = insts.max(report.stats.insts),
            Err(err) => {
                let kind = std::mem::discriminant(&err);
                let shrunk = shrink(&source, |candidate| {
                    let Ok(p) = assemble_and_link(candidate, &name, &SoftwareSupport::on())
                    else {
                        return false;
                    };
                    matches!(lockstep(cfg, cc).run(&p),
                             Err(e) if std::mem::discriminant(&e) == kind)
                });
                failures.push(Failure {
                    config: label,
                    error: err.to_string(),
                    original_lines,
                    shrunk_lines: shrunk.lines().count(),
                    shrunk,
                });
            }
        }
    }
    SeedOutcome { seed, insts, failures }
}

/// Shrinks `source` to a (locally) minimal program for which `reproduces`
/// still returns `true`.
///
/// Deterministic delta debugging over source lines, iterated to a
/// fixpoint under a fixed candidate budget:
///
/// 1. **delete** each line, last to first;
/// 2. **halve** each integer constant toward zero (and try zero first);
/// 3. **neutralize** each register operand to `$zero`.
///
/// `reproduces` must treat a non-assembling candidate as `false`; the
/// shrinker itself is syntax-agnostic and relies on that rejection.
pub fn shrink(source: &str, reproduces: impl Fn(&str) -> bool) -> String {
    let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
    let mut budget = SHRINK_BUDGET;
    let check = |candidate: &[String], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        reproduces(&(candidate.join("\n") + "\n"))
    };
    loop {
        let mut changed = false;

        // Pass 1: line deletion, back to front (later lines depend on
        // earlier definitions more often than the reverse).
        let mut i = lines.len();
        while i > 0 {
            i -= 1;
            let mut candidate = lines.clone();
            candidate.remove(i);
            if check(&candidate, &mut budget) {
                lines = candidate;
                changed = true;
            }
        }

        // Pass 2: constant shrinking. Retry a line until no rewrite of it
        // reproduces, so a constant can halve all the way to zero.
        for i in 0..lines.len() {
            loop {
                let mut applied = false;
                for rewritten in constant_shrinks(&lines[i]) {
                    let mut candidate = lines.clone();
                    candidate[i] = rewritten.clone();
                    if check(&candidate, &mut budget) {
                        lines[i] = rewritten;
                        applied = true;
                        changed = true;
                        break;
                    }
                }
                if !applied {
                    break;
                }
            }
        }

        // Pass 3: register neutralization.
        for i in 0..lines.len() {
            for rewritten in register_neutralizations(&lines[i]) {
                let mut candidate = lines.clone();
                candidate[i] = rewritten.clone();
                if check(&candidate, &mut budget) {
                    lines[i] = rewritten;
                    changed = true;
                }
            }
        }

        if !changed || budget == 0 {
            break;
        }
    }
    lines.join("\n") + "\n"
}

/// The decimal integer literals of a line as `(start, end, value)` spans.
/// Skips digits embedded in identifiers and register names (`$t0`, `L3`,
/// `glob_a`) by requiring the literal not to follow an alphanumeric, `_`
/// or `$`.
fn integer_spans(line: &str) -> Vec<(usize, usize, i64)> {
    let bytes = line.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let neg = bytes[i] == b'-';
        let digits_at = if neg { i + 1 } else { i };
        if digits_at < bytes.len() && bytes[digits_at].is_ascii_digit() {
            let prev = if i == 0 { None } else { Some(bytes[i - 1]) };
            let embedded =
                matches!(prev, Some(p) if p.is_ascii_alphanumeric() || p == b'_' || p == b'$');
            let mut end = digits_at;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            // `0x...` hex literals: the leading zero is not a shrinkable
            // decimal constant.
            let hex = end < bytes.len() && (bytes[end] | 0x20) == b'x';
            if !embedded && !hex {
                if let Ok(v) = line[i..end].parse::<i64>() {
                    spans.push((i, end, v));
                }
            }
            i = end;
        } else {
            i += 1;
        }
    }
    spans
}

/// Candidate rewrites of one line with one constant moved toward zero.
fn constant_shrinks(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (start, end, v) in integer_spans(line) {
        if v == 0 {
            continue;
        }
        for smaller in [0, v / 2] {
            if smaller == v {
                continue;
            }
            out.push(format!("{}{}{}", &line[..start], smaller, &line[end..]));
        }
    }
    out
}

/// Candidate rewrites of one line with one register operand replaced by
/// `$zero`. `$gp` and `$sp` are left alone — they anchor the data and
/// stack segments, and rewriting them only burns shrink budget on
/// candidates that fail for unrelated reasons.
fn register_neutralizations(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$' {
            let mut end = i + 1;
            while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
            {
                end += 1;
            }
            let name = &line[i..end];
            if !matches!(name, "$zero" | "$gp" | "$sp") && end > i + 1 {
                out.push(format!("{}$zero{}", &line[..i], &line[end..]));
            }
            i = end;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_spans_skip_registers_and_identifiers() {
        let spans = integer_spans("    lw      $t0, 4064($s1)   ; glob_a+32, L3");
        assert_eq!(spans.iter().map(|&(_, _, v)| v).collect::<Vec<_>>(), vec![4064, 32]);
        let spans = integer_spans("    addiu   $s3, $sp, -256");
        assert_eq!(spans.iter().map(|&(_, _, v)| v).collect::<Vec<_>>(), vec![-256]);
        // Hex literals are left alone (the trailing digits are "embedded").
        assert!(integer_spans("  li $t0, 0x1f").is_empty());
    }

    #[test]
    fn constant_shrinks_halve_toward_zero() {
        let c = constant_shrinks("    lw      $t0, 4064($s1)");
        assert_eq!(c[0], "    lw      $t0, 0($s1)");
        assert_eq!(c[1], "    lw      $t0, 2032($s1)");
        let c = constant_shrinks("    addiu   $t1, $t1, -64");
        assert_eq!(c[0], "    addiu   $t1, $t1, 0");
        assert_eq!(c[1], "    addiu   $t1, $t1, -32");
    }

    #[test]
    fn register_neutralizations_spare_anchors() {
        let c = register_neutralizations("    addu    $t0, $gp, $t9");
        assert_eq!(c, vec![
            "    addu    $zero, $gp, $t9".to_string(),
            "    addu    $t0, $gp, $zero".to_string(),
        ]);
        assert!(register_neutralizations("    lw $zero, 0($sp)").is_empty());
    }

    /// The shrinker minimizes a synthetic "failure": any program still
    /// containing a magic token. Everything else must be deleted.
    #[test]
    fn shrink_reaches_local_minimum() {
        let source = "a\nb\nMAGIC 128\nc\nd\n";
        let shrunk = shrink(source, |s| s.contains("MAGIC"));
        assert_eq!(shrunk, "MAGIC 0\n");
    }

    /// Same input and predicate, same shrink result: the shrinker has no
    /// hidden state.
    #[test]
    fn shrink_is_deterministic() {
        let source = fuzz_source(3);
        let a = shrink(&source, |s| s.lines().count() > 40);
        let b = shrink(&source, |s| s.lines().count() > 40);
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_covers_baseline_fac_and_every_builtin_plan() {
        let m = config_matrix(None);
        assert_eq!(m.len(), 2 + FaultPlan::builtin().len());
        assert_eq!(m[0].0, "baseline");
        assert_eq!(m[1].0, "fac");
        assert!(m[2..].iter().all(|(label, cfg)| {
            label.starts_with("fac+") && cfg.fac.is_some() && cfg.fault_plan.is_some()
        }));
        let e = config_matrix(Some(FaultPlan::parse("silent-wrong").unwrap()));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].0, "fac+escape:silent-wrong");
        assert!(e[0].1.fault_plan.is_none(), "escape corrupts via the saboteur, not the plan");
    }

    /// A tiny clean campaign: every seed runs the full matrix with zero
    /// divergences, and the artifact is byte-identical at any job count.
    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cc = CampaignConfig { start: 0, count: 4, ..CampaignConfig::default() };
        let serial = run_campaign(&cc, 1).unwrap();
        assert_eq!(serial.failures().count(), 0, "divergence in clean campaign");
        assert!(serial.outcomes.iter().all(|o| o.insts > 0));
        let parallel = run_campaign(&cc, 8).unwrap();
        assert_eq!(serial.to_json().to_pretty(2), parallel.to_json().to_pretty(2));
    }

    /// The self-test: with the saboteur armed, seeds diverge and shrink to
    /// a repro that still diverges and still assembles.
    #[test]
    fn escape_campaign_diverges_and_shrinks() {
        let cc = CampaignConfig {
            start: 0,
            count: 2,
            escape: Some(FaultPlan::parse("silent-wrong").unwrap()),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cc, 2).unwrap();
        let failures: Vec<_> = report.failures().collect();
        assert!(!failures.is_empty(), "saboteur went unnoticed by the oracle");
        for (seed, f) in failures {
            assert!(f.error.contains("divergence"), "seed {seed}: {}", f.error);
            assert!(f.shrunk_lines <= f.original_lines);
            // The repro assembles and still diverges under the same setup.
            let p = assemble_and_link(&f.shrunk, "repro", &SoftwareSupport::on()).unwrap();
            let (_, cfg) = config_matrix(cc.escape).remove(0);
            let err = lockstep(cfg, &cc).run(&p).unwrap_err();
            assert!(matches!(err, SimError::Divergence { .. }), "seed {seed}: {err}");
        }
    }
}
