//! A live terminal dashboard for a running `campaign_server` or
//! `campaign_supervisor` fleet.
//!
//! ```sh
//! campaign_top --connect tcp:127.0.0.1:7199             # refresh loop
//! campaign_top --connect unix:/tmp/fac.sock --once      # one frame
//! campaign_top --connect tcp:... --interval-secs 5
//! ```
//!
//! Polls the server's `stats` request — which carries the telemetry
//! histograms since DESIGN.md §12 — and renders hit ratio, load,
//! shed/quarantine rates, and latency percentiles per phase. The refresh
//! loop clears the screen each frame; `--once` prints a single frame
//! with no escape codes, which is what scripts and CI want.
//!
//! Pointed at a fleet supervisor (DESIGN.md §15), each frame leads with
//! a per-worker table — pid, state, uptime, restarts, inflight, hit
//! ratio — from the supervisor's `fleet-stats` RPC. A lone
//! `campaign_server` refuses `fleet-stats` with a bad-request error;
//! the viewer takes that refusal as its cue to render the
//! single-server view.

use fac_bench::serve::client::Client;
use fac_bench::serve::proto::{Request, Response};
use fac_bench::serve::Endpoint;
use fac_bench::Args;
use fac_sim::obs::Json;
use fac_sim::SimError;
use std::fmt::Write as _;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: campaign_top --connect <tcp:host:port|unix:path>");
    eprintln!("       [--interval-secs N] [--once]");
    std::process::exit(2);
}

/// Boolean flags this binary accepts.
const BOOL_FLAGS: &[&str] = &["--once"];
/// Value-taking flags this binary accepts.
const VALUE_FLAGS: &[&str] = &["--connect", "--interval-secs"];

/// Unwraps a parse result or exits with the typed error and the usage.
fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

/// A u64 leaf of the stats document, defaulting to 0 for missing lanes
/// (an older server simply shows zeros rather than crashing the viewer).
fn leaf(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// One latency lane (`count` plus percentile gauges) as a rendered line.
fn latency_line(out: &mut String, label: &str, hist: Option<&Json>) {
    let Some(h) = hist else { return };
    let count = leaf(h, "count");
    if count == 0 {
        let _ = writeln!(out, "  {label:<10} (no samples)");
        return;
    }
    let p = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "  {label:<10} p50 {:>9.0} us   p90 {:>9.0} us   p99 {:>9.0} us   n={count}",
        p("p50"),
        p("p90"),
        p("p99")
    );
}

/// The per-worker fleet table from a supervisor's `fleet-stats` reply.
fn render_fleet(out: &mut String, doc: &Json) {
    let quorum = matches!(doc.get("quorum"), Some(Json::Bool(true)));
    let _ = writeln!(
        out,
        "fleet      {} workers   {} alive   quorum {}   restarts {}   failovers {}   re-dispatched {}",
        leaf(doc, "workers"),
        leaf(doc, "alive"),
        if quorum { "yes" } else { "NO" },
        leaf(doc, "restarts"),
        leaf(doc, "failovers"),
        leaf(doc, "redispatched")
    );
    let Some(Json::Arr(rows)) = doc.get("rows") else { return };
    let _ = writeln!(
        out,
        "  {:<4} {:<12} {:>7} {:>7} {:>8} {:>9} {:>8} {:>6}",
        "idx", "state", "pid", "up(s)", "restarts", "forwarded", "inflight", "hit%"
    );
    for row in rows {
        let hits = leaf(row, "hits");
        let answered = hits + leaf(row, "misses") + leaf(row, "coalesced");
        let ratio = if answered == 0 { 0.0 } else { hits as f64 / answered as f64 * 100.0 };
        let _ = writeln!(
            out,
            "  {:<4} {:<12} {:>7} {:>7} {:>8} {:>9} {:>8} {:>6.1}",
            leaf(row, "index"),
            row.get("state").and_then(Json::as_str).unwrap_or("?"),
            leaf(row, "pid"),
            leaf(row, "uptime_secs"),
            leaf(row, "restarts"),
            leaf(row, "forwarded"),
            leaf(row, "inflight"),
            ratio
        );
    }
}

/// The counters every rate is derived from, captured per frame.
#[derive(Clone, Copy, Default)]
struct Counts {
    hits: u64,
    misses: u64,
    coalesced: u64,
    sheds: u64,
    quarantined: u64,
}

impl Counts {
    fn of(doc: &Json) -> Counts {
        Counts {
            hits: leaf(doc, "hits"),
            misses: leaf(doc, "misses"),
            coalesced: leaf(doc, "coalesced"),
            sheds: leaf(doc, "sheds"),
            quarantined: leaf(doc, "quarantined"),
        }
    }

    fn answered(self) -> u64 {
        self.hits + self.misses + self.coalesced
    }
}

/// Renders one dashboard frame from a stats document. `prev` (the last
/// frame's counters) and `interval` turn monotone counters into rates.
fn render(doc: &Json, prev: Option<Counts>, interval: Duration) -> (String, Counts) {
    let now = Counts::of(doc);
    let mut out = String::new();
    let version = match doc.get("build_version") {
        Some(Json::Str(v)) => v.as_str(),
        _ => "?",
    };
    let _ = writeln!(out, "campaign server — up {} s — {version}", leaf(doc, "uptime_secs"));

    let answered = now.answered();
    let ratio = if answered == 0 { 0.0 } else { now.hits as f64 / answered as f64 * 100.0 };
    let _ = writeln!(
        out,
        "requests   hits {}   misses {}   coalesced {}   hit ratio {ratio:.1}%",
        now.hits, now.misses, now.coalesced
    );
    let rate = |later: u64, earlier: u64| {
        later.saturating_sub(earlier) as f64 / interval.as_secs_f64().max(f64::EPSILON)
    };
    match prev {
        Some(prev) => {
            let _ = writeln!(
                out,
                "pressure   sheds {}  ({:.1}/s)   quarantined {}  ({:.1}/s)   throughput {:.1} req/s",
                now.sheds,
                rate(now.sheds, prev.sheds),
                now.quarantined,
                rate(now.quarantined, prev.quarantined),
                rate(now.answered(), prev.answered())
            );
        }
        None => {
            let _ = writeln!(
                out,
                "pressure   sheds {}   quarantined {}",
                now.sheds, now.quarantined
            );
        }
    }
    let _ = writeln!(
        out,
        "errors     sim {}   conn panics {}   store put {}",
        leaf(doc, "sim_errors"),
        leaf(doc, "conn_panics"),
        leaf(doc, "store_put_errors")
    );
    let _ = writeln!(
        out,
        "load       inflight {}   admitted {}/{}   store entries {}",
        leaf(doc, "inflight"),
        leaf(doc, "admitted"),
        leaf(doc, "max_queue"),
        leaf(doc, "entries")
    );
    if let Some(latency) = doc.get("latency") {
        let _ = writeln!(out, "latency");
        latency_line(&mut out, "request", latency.get("request_us"));
        for phase in ["queue", "coalesce", "simulate", "commit", "serialize"] {
            latency_line(&mut out, phase, latency.get(&format!("{phase}_us")));
        }
    }
    (out, now)
}

fn main() -> std::process::ExitCode {
    let args = or_usage(Args::parse(BOOL_FLAGS, VALUE_FLAGS));
    or_usage(args.no_positionals("--connect, --interval-secs, --once"));
    let Some(connect) = args.value("--connect") else { usage() };
    let endpoint = or_usage(Endpoint::parse("--connect", connect));
    let interval = or_usage(args.parse_value::<u64>(
        "--interval-secs",
        "a refresh interval in whole seconds, at least 1",
    ))
    .unwrap_or(2);
    if interval == 0 {
        eprintln!("error: --interval-secs must be at least 1");
        usage()
    }
    let interval = Duration::from_secs(interval);
    let once = args.flag("--once");

    let mut prev: Option<Counts> = None;
    loop {
        // A fresh connection per frame keeps the viewer robust to server
        // restarts and to the server's own idle-connection reaping. The
        // frame is (fleet table if talking to a supervisor, stats doc):
        // a lone server refuses `fleet-stats` with bad-request, which is
        // the documented cue to fall back to the single-server view.
        let frame = Client::connect(&endpoint, Duration::from_secs(30)).and_then(|mut c| {
            let fleet = match c.rpc(&Request::FleetStats)? {
                Response::Fleet(doc) => Some(doc),
                Response::Error { .. } => None,
                other => return Ok(Err(other)),
            };
            match c.rpc(&Request::Stats)? {
                Response::Stats(stats) => Ok(Ok((fleet, stats))),
                other => Ok(Err(other)),
            }
        });
        match frame {
            Ok(Ok((fleet, doc))) => {
                let (mut frame, counts) = render(&doc, prev, interval);
                if let Some(fleet) = fleet {
                    let mut headed = String::new();
                    render_fleet(&mut headed, &fleet);
                    headed.push_str(&frame);
                    frame = headed;
                }
                if !once {
                    // Clear and home, then draw — flicker-free enough for
                    // a 2 s cadence without pulling in a TUI dependency.
                    print!("\x1b[2J\x1b[H");
                }
                print!("{frame}");
                prev = Some(counts);
            }
            Ok(Err(other)) => {
                eprintln!("error: unexpected response: {other:?}");
                return std::process::ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return std::process::ExitCode::FAILURE;
            }
        }
        if once {
            return std::process::ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}
