//! Emits a machine-readable benchmark snapshot of the paper-baseline
//! workload sweep: every workload run on the baseline machine and on the
//! fast-address-calculation machine (both with §4 software support), with
//! cycles, IPC, speedup and prediction quality per program. The sweep
//! fans out over the `fac_bench::par` pool (`--jobs N`) with output
//! bit-identical at any worker count.
//!
//! Tiered execution (DESIGN.md §13): `--tier sampled` replaces each
//! detailed run with a SMARTS-style sampled run — est. cycles and CPI ±
//! stderr per cell, far faster at Paper scale — with `--sample-every N`
//! and `--sample-window W` controlling the regime; `--tier fast` runs the
//! functional tier only (no timing) and reports instruction counts, a
//! whole-suite architectural smoke check.
//!
//! Crash safety: `--resume <dir>` journals every finished cell to a
//! durable manifest and skips it on the next invocation, so a killed
//! sweep resumes where it stopped with a byte-identical final artifact;
//! `--keep-going` renders failed cells as `null` row lanes plus an
//! `errors` block instead of aborting; `--timeout-secs` / `--retries`
//! bound and retry individual cells.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin bench_snapshot -- --json BENCH_pr2.json
//! ```

use fac_bench::par::{degrade, errors_json, strict, JobSet};
use fac_bench::{build_suite, run, weighted_mean, Args, Cx, Exp, MAX_INSTS};
use fac_sim::obs::Json;
use fac_sim::tier::{run_fast, run_sampled, SampleSpec};
use fac_sim::{ConfigError, MachineConfig, SimError};
use std::fmt::Write as _;

/// Which execution tier the sweep's cells run under.
#[derive(Clone, Copy)]
enum Tier {
    /// Full detail (the default).
    Detail,
    /// Functional only: no timing, architectural outcome + insts.
    Fast,
    /// SMARTS-style sampled timing under the given regime.
    Sampled(SampleSpec),
}

fn parse_tier(args: &Args) -> Result<Tier, SimError> {
    let every = args.parse_value::<u64>("--sample-every", "a sampling period in instructions")?;
    let window = args.parse_value::<u64>("--sample-window", "a window length in instructions")?;
    let tier = args.value("--tier");
    if tier != Some("sampled") && (every.is_some() || window.is_some()) {
        return Err(ConfigError::BadFlagValue {
            flag: "--sample-every/--sample-window".to_string(),
            value: "(set)".to_string(),
            expected: "--tier sampled when a sampling regime is given",
        }
        .into());
    }
    match tier {
        None => Ok(Tier::Detail),
        Some("fast") => Ok(Tier::Fast),
        Some("sampled") => {
            let spec = SampleSpec {
                every: every.unwrap_or(100_000),
                window: window.unwrap_or(10_000),
            };
            spec.validate()?;
            Ok(Tier::Sampled(spec))
        }
        Some(other) => Err(ConfigError::BadFlagValue {
            flag: "--tier".to_string(),
            value: other.to_string(),
            expected: "fast or sampled",
        }
        .into()),
    }
}

/// One sweep cell under the requested tier. Returns the standard cell
/// envelope: `human` line, `row` document, `speedup` + `weight` lanes
/// (zero-weighted under `--tier fast`, which measures no cycles).
fn snapshot_cell(b: &fac_bench::Bench, tier: Tier) -> Result<Json, SimError> {
    let base_cfg = MachineConfig::paper_baseline();
    let fac_cfg = MachineConfig::paper_baseline().with_fac();
    let mut j = Json::obj();
    j.set("program", Json::Str(b.workload.name.to_string()));
    j.set("kind", Json::Str(if b.workload.fp { "fp" } else { "int" }.to_string()));
    let (human, speedup, weight) = match tier {
        Tier::Detail => {
            let base = run(&b.tuned, base_cfg)?;
            let fac = run(&b.tuned, fac_cfg)?;
            let speedup = base.stats.cycles as f64 / fac.stats.cycles as f64;
            let human = format!(
                "{:10} {:>10} -> {:>10} cycles  ({:.3}x, load fail {:.2}%)",
                b.workload.name,
                base.stats.cycles,
                fac.stats.cycles,
                speedup,
                fac.stats.pred_loads.fail_rate_all() * 100.0
            );
            j.set("cycles.baseline", Json::U64(base.stats.cycles));
            j.set("cycles.fac", Json::U64(fac.stats.cycles));
            j.set("ipc.baseline", Json::F64(base.stats.ipc()));
            j.set("ipc.fac", Json::F64(fac.stats.ipc()));
            j.set("speedup", Json::F64(speedup));
            j.set("load_fail_rate", Json::F64(fac.stats.pred_loads.fail_rate_all()));
            j.set("store_fail_rate", Json::F64(fac.stats.pred_stores.fail_rate_all()));
            j.set("bandwidth_overhead", Json::F64(fac.stats.bandwidth_overhead()));
            (human, speedup, base.stats.cycles)
        }
        Tier::Fast => {
            let r = run_fast(&base_cfg, &b.tuned, MAX_INSTS)?;
            let human = format!(
                "{:10} {:>10} insts (fast functional tier, no timing)",
                b.workload.name, r.insts
            );
            j.set("insts", Json::U64(r.insts));
            j.set("mem_footprint", Json::U64(r.final_state.mem.footprint()));
            (human, 0.0, 0)
        }
        Tier::Sampled(spec) => {
            let base = run_sampled(&base_cfg, &b.tuned, spec, MAX_INSTS)?;
            let fac = run_sampled(&fac_cfg, &b.tuned, spec, MAX_INSTS)?;
            let speedup = base.est_cycles as f64 / fac.est_cycles.max(1) as f64;
            let human = format!(
                "{:10} {:>10} -> {:>10} est.cycles  ({:.3}x, CPI {:.3}±{:.4}, {} windows)",
                b.workload.name,
                base.est_cycles,
                fac.est_cycles,
                speedup,
                fac.cpi,
                fac.cpi_stderr,
                fac.windows.len()
            );
            j.set("insts", Json::U64(fac.insts));
            j.set("est_cycles.baseline", Json::U64(base.est_cycles));
            j.set("est_cycles.fac", Json::U64(fac.est_cycles));
            j.set("cpi.baseline", Json::F64(base.cpi));
            j.set("cpi.fac", Json::F64(fac.cpi));
            j.set("cpi_stderr.baseline", Json::F64(base.cpi_stderr));
            j.set("cpi_stderr.fac", Json::F64(fac.cpi_stderr));
            j.set("windows", Json::U64(fac.windows.len() as u64));
            j.set("sample_every", Json::U64(spec.every));
            j.set("sample_window", Json::U64(spec.window));
            j.set("speedup", Json::F64(speedup));
            (human, speedup, base.est_cycles)
        }
    };
    let mut c = Json::obj();
    c.set("human", Json::Str(human));
    c.set("row", j);
    c.set("speedup", Json::F64(speedup));
    c.set("weight", Json::U64(weight));
    Ok(c)
}

fn sweep(cx: &Cx, args: &Args) -> Result<Exp, SimError> {
    let tier = parse_tier(args)?;
    let suite = build_suite(cx.scale);
    let mut jobs = JobSet::new();
    for b in &suite {
        jobs.push(format!("snapshot:{}", b.workload.name), move || snapshot_cell(b, tier));
    }
    let (results, wall) = jobs.run_cached_timed(cx.jobs, &cx.opts, cx.manifest);
    let (cells, errors) = if cx.opts.keep_going {
        degrade(results)
    } else {
        (strict(results)?, Vec::new())
    };

    let mut human = String::new();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut weights = Vec::new();
    for mut c in cells {
        // A degraded (`null`) cell keeps its row lane — positions stay
        // stable for diffing — but contributes nothing to the averages.
        if c == Json::Null {
            rows.push(Json::Null);
            continue;
        }
        if let Some(Json::Str(line)) = c.take("human") {
            let _ = writeln!(human, "{line}");
        }
        speedups.push(c.get("speedup").and_then(Json::as_f64).unwrap_or(0.0));
        weights.push(c.get("weight").and_then(Json::as_u64).unwrap_or(0));
        rows.push(c.take("row").unwrap_or_else(Json::obj));
    }
    for (job, e) in &errors {
        let _ = writeln!(human, "[degraded] {job}: {e}");
    }
    let mut doc = Json::obj();
    doc.set("benchmark", Json::Str("paper_baseline_sweep".to_string()));
    doc.set("config", Json::Str("paper_baseline vs paper_baseline+fac, sw support on".to_string()));
    doc.set(
        "tier",
        Json::Str(
            match tier {
                Tier::Detail => "detail",
                Tier::Fast => "fast",
                Tier::Sampled(_) => "sampled",
            }
            .to_string(),
        ),
    );
    doc.set("rows", Json::Arr(rows));
    doc.set("speedup.weighted_mean", Json::F64(weighted_mean(&speedups, &weights)));
    if !errors.is_empty() {
        doc.set("errors", errors_json(&errors));
    }
    // Wall-clock lanes are opt-in: default artifacts must stay
    // byte-identical cold vs. resumed and at any --jobs count, and timing
    // is exactly the lane that can't be.
    if cx.timings {
        let _ = writeln!(
            human,
            "cell wall-clock: p50 {:.0} ms, p99 {:.0} ms over {} simulated cells",
            wall.p(0.50),
            wall.p(0.99),
            wall.count()
        );
        doc.set("bench.cell_wall_ms", wall.to_json());
    }
    Ok(Exp { human, json: doc })
}

fn main() -> std::process::ExitCode {
    fac_bench::conclude_with(&[], &["--tier", "--sample-every", "--sample-window"], sweep)
}
