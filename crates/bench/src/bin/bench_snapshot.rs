//! Emits a machine-readable benchmark snapshot of the paper-baseline
//! workload sweep: every workload run on the baseline machine and on the
//! fast-address-calculation machine (both with §4 software support), with
//! cycles, IPC, speedup and prediction quality per program. The sweep
//! fans out over the `fac_bench::par` pool (`--jobs N`) with output
//! bit-identical at any worker count.
//!
//! Crash safety: `--resume <dir>` journals every finished cell to a
//! durable manifest and skips it on the next invocation, so a killed
//! sweep resumes where it stopped with a byte-identical final artifact;
//! `--keep-going` renders failed cells as `null` row lanes plus an
//! `errors` block instead of aborting; `--timeout-secs` / `--retries`
//! bound and retry individual cells.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin bench_snapshot -- --json BENCH_pr2.json
//! ```

use fac_bench::par::{degrade, errors_json, strict, JobSet};
use fac_bench::{build_suite, run, weighted_mean, Cx, Exp};
use fac_sim::obs::Json;
use fac_sim::{MachineConfig, SimError};
use std::fmt::Write as _;

fn sweep(cx: &Cx) -> Result<Exp, SimError> {
    let suite = build_suite(cx.scale);
    let mut jobs = JobSet::new();
    for b in &suite {
        jobs.push(format!("snapshot:{}", b.workload.name), move || {
            let base = run(&b.tuned, MachineConfig::paper_baseline())?;
            let fac = run(&b.tuned, MachineConfig::paper_baseline().with_fac())?;
            let speedup = base.stats.cycles as f64 / fac.stats.cycles as f64;
            let human = format!(
                "{:10} {:>10} -> {:>10} cycles  ({:.3}x, load fail {:.2}%)",
                b.workload.name,
                base.stats.cycles,
                fac.stats.cycles,
                speedup,
                fac.stats.pred_loads.fail_rate_all() * 100.0
            );
            let mut j = Json::obj();
            j.set("program", Json::Str(b.workload.name.to_string()));
            j.set("kind", Json::Str(if b.workload.fp { "fp" } else { "int" }.to_string()));
            j.set("cycles.baseline", Json::U64(base.stats.cycles));
            j.set("cycles.fac", Json::U64(fac.stats.cycles));
            j.set("ipc.baseline", Json::F64(base.stats.ipc()));
            j.set("ipc.fac", Json::F64(fac.stats.ipc()));
            j.set("speedup", Json::F64(speedup));
            j.set("load_fail_rate", Json::F64(fac.stats.pred_loads.fail_rate_all()));
            j.set("store_fail_rate", Json::F64(fac.stats.pred_stores.fail_rate_all()));
            j.set("bandwidth_overhead", Json::F64(fac.stats.bandwidth_overhead()));
            let mut c = Json::obj();
            c.set("human", Json::Str(human));
            c.set("row", j);
            c.set("speedup", Json::F64(speedup));
            c.set("weight", Json::U64(base.stats.cycles));
            Ok(c)
        });
    }
    let (results, wall) = jobs.run_cached_timed(cx.jobs, &cx.opts, cx.manifest);
    let (cells, errors) = if cx.opts.keep_going {
        degrade(results)
    } else {
        (strict(results)?, Vec::new())
    };

    let mut human = String::new();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut weights = Vec::new();
    for mut c in cells {
        // A degraded (`null`) cell keeps its row lane — positions stay
        // stable for diffing — but contributes nothing to the averages.
        if c == Json::Null {
            rows.push(Json::Null);
            continue;
        }
        if let Some(Json::Str(line)) = c.take("human") {
            let _ = writeln!(human, "{line}");
        }
        speedups.push(c.get("speedup").and_then(Json::as_f64).unwrap_or(0.0));
        weights.push(c.get("weight").and_then(Json::as_u64).unwrap_or(0));
        rows.push(c.take("row").unwrap_or_else(Json::obj));
    }
    for (job, e) in &errors {
        let _ = writeln!(human, "[degraded] {job}: {e}");
    }
    let mut doc = Json::obj();
    doc.set("benchmark", Json::Str("paper_baseline_sweep".to_string()));
    doc.set("config", Json::Str("paper_baseline vs paper_baseline+fac, sw support on".to_string()));
    doc.set("rows", Json::Arr(rows));
    doc.set("speedup.weighted_mean", Json::F64(weighted_mean(&speedups, &weights)));
    if !errors.is_empty() {
        doc.set("errors", errors_json(&errors));
    }
    // Wall-clock lanes are opt-in: default artifacts must stay
    // byte-identical cold vs. resumed and at any --jobs count, and timing
    // is exactly the lane that can't be.
    if cx.timings {
        let _ = writeln!(
            human,
            "cell wall-clock: p50 {:.0} ms, p99 {:.0} ms over {} simulated cells",
            wall.p(0.50),
            wall.p(0.99),
            wall.count()
        );
        doc.set("bench.cell_wall_ms", wall.to_json());
    }
    Ok(Exp { human, json: doc })
}

fn main() -> std::process::ExitCode {
    fac_bench::conclude(sweep)
}
