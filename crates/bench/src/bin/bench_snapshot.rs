//! Emits a machine-readable benchmark snapshot of the paper-baseline
//! workload sweep: every workload run on the baseline machine and on the
//! fast-address-calculation machine (both with §4 software support), with
//! cycles, IPC, speedup and prediction quality per program.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin bench_snapshot -- --json BENCH_pr2.json
//! ```

use fac_bench::{build_suite, run, scale_from_args, weighted_mean};
use fac_sim::obs::Json;
use fac_sim::{MachineConfig, SimError};

fn sweep() -> Result<Json, SimError> {
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut weights = Vec::new();
    for b in &build_suite(scale_from_args()) {
        let base = run(&b.tuned, MachineConfig::paper_baseline())?;
        let fac = run(&b.tuned, MachineConfig::paper_baseline().with_fac())?;
        let speedup = base.stats.cycles as f64 / fac.stats.cycles as f64;
        println!(
            "{:10} {:>10} -> {:>10} cycles  ({:.3}x, load fail {:.2}%)",
            b.workload.name,
            base.stats.cycles,
            fac.stats.cycles,
            speedup,
            fac.stats.pred_loads.fail_rate_all() * 100.0
        );
        let mut j = Json::obj();
        j.set("program", Json::Str(b.workload.name.to_string()));
        j.set("kind", Json::Str(if b.workload.fp { "fp" } else { "int" }.to_string()));
        j.set("cycles.baseline", Json::U64(base.stats.cycles));
        j.set("cycles.fac", Json::U64(fac.stats.cycles));
        j.set("ipc.baseline", Json::F64(base.stats.ipc()));
        j.set("ipc.fac", Json::F64(fac.stats.ipc()));
        j.set("speedup", Json::F64(speedup));
        j.set("load_fail_rate", Json::F64(fac.stats.pred_loads.fail_rate_all()));
        j.set("store_fail_rate", Json::F64(fac.stats.pred_stores.fail_rate_all()));
        j.set("bandwidth_overhead", Json::F64(fac.stats.bandwidth_overhead()));
        rows.push(j);
        speedups.push(speedup);
        weights.push(base.stats.cycles);
    }
    let mut doc = Json::obj();
    doc.set("benchmark", Json::Str("paper_baseline_sweep".to_string()));
    doc.set("config", Json::Str("paper_baseline vs paper_baseline+fac, sw support on".to_string()));
    doc.set("rows", Json::Arr(rows));
    doc.set("speedup.weighted_mean", Json::F64(weighted_mean(&speedups, &weights)));
    Ok(doc)
}

fn main() -> std::process::ExitCode {
    fac_bench::conclude(sweep())
}
