//! The campaign client: drives a `campaign_server` over TCP or a Unix
//! socket.
//!
//! ```sh
//! # Full sweep (19 workloads x {baseline, fac}), artifact to a file:
//! cargo run --release -p fac-bench --bin campaign_client -- \
//!     --connect unix:/tmp/fac.sock --smoke --json sweep.json
//! # One cell, liveness, counters:
//! campaign_client --connect tcp:127.0.0.1:7199 --cell compress --config fac
//! campaign_client --connect unix:/tmp/fac.sock --ping
//! campaign_client --connect unix:/tmp/fac.sock --stats
//! ```
//!
//! The sweep computes each cell's configuration and program fingerprints
//! locally and sends them with the request, so client/server version
//! skew is a typed refusal instead of silently incomparable numbers. The
//! `--json` artifact contains only the cell results — whether a cell was
//! served from the store never changes the bytes, so a cold sweep and a
//! fully cached re-run produce byte-identical artifacts (cache hits are
//! reported on stdout for humans).
//!
//! Every request carries a trace id derived from the cell's identity
//! (`sweep.<workload>.<config>.<scale>`), so a line in the server's
//! access log joins to a row of the client artifact without any shared
//! clock. Ids are deterministic on purpose: they land in the artifact's
//! `trace_ids` lane and must not break byte-identity. Wall-clock lanes
//! are different — `client_latency` (an rpc-latency histogram) appears
//! in the artifact only under `--timings`.
//!
//! Exit codes: 0 success, 1 simulation/transport failure, 2 bad usage or
//! a `bad-request` refusal, 3 shed by the server's admission bound.

use fac_bench::serve::client::Client;
use fac_bench::serve::proto::{CellRequest, ErrorKind, Request, Response};
use fac_bench::serve::{config_by_name, scale_name, sw_support, Endpoint, CONFIG_NAMES};
use fac_bench::telemetry::Hist;
use fac_bench::Args;
use fac_sim::obs::Json;
use fac_sim::{config_fingerprint, program_fingerprint, SimError};
use fac_workloads::Scale;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!("usage: campaign_client --connect <tcp:host:port|unix:path>");
    eprintln!("       [--smoke] [--json <path|->] [--timeout-secs N] [--timings]");
    eprintln!("       [--cell <workload> [--config <baseline|fac>]] | [--ping] | [--stats]");
    std::process::exit(2);
}

/// Boolean flags this binary accepts.
const BOOL_FLAGS: &[&str] = &["--smoke", "--ping", "--stats", "--timings"];
/// Value-taking flags this binary accepts.
const VALUE_FLAGS: &[&str] = &["--connect", "--json", "--cell", "--config", "--timeout-secs"];

/// Unwraps a parse result or exits with the typed error and the usage.
fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

fn fail(e: &SimError) -> std::process::ExitCode {
    eprintln!("error: {e}");
    std::process::ExitCode::FAILURE
}

/// Maps a protocol refusal to the documented exit codes.
fn refusal(kind: ErrorKind, message: &str) -> std::process::ExitCode {
    eprintln!("error: server refused ({}): {message}", kind.token());
    match kind {
        ErrorKind::BadRequest => std::process::ExitCode::from(2),
        ErrorKind::Overloaded => std::process::ExitCode::from(3),
        ErrorKind::Sim => std::process::ExitCode::FAILURE,
    }
}

/// Builds a cell request, computing fingerprints locally for real
/// workloads (test cells have no client-side build to fingerprint). The
/// trace id is derived from the cell's identity, not a clock or counter:
/// the ids land in the `--json` artifact and must not vary run to run.
fn cell_request(workload: &str, config: &str, scale: Scale) -> CellRequest {
    let mut req = CellRequest {
        workload: workload.to_string(),
        sw: true,
        scale,
        config: config.to_string(),
        config_fp: None,
        program_fp: None,
        trace_id: Some(format!("sweep.{workload}.{config}.{}", scale_name(scale))),
    };
    if let Some(cfg) = config_by_name(config) {
        req.config_fp = Some(config_fingerprint(&cfg));
    }
    if let Some(wl) = fac_workloads::find(workload) {
        req.program_fp = Some(program_fingerprint(&wl.build(&sw_support(true), scale)));
    }
    req
}

fn main() -> std::process::ExitCode {
    let args = or_usage(Args::parse(BOOL_FLAGS, VALUE_FLAGS));
    or_usage(args.no_positionals(
        "--connect, --smoke, --json, --cell, --config, --timeout-secs, --ping, --stats",
    ));
    let Some(connect) = args.value("--connect") else { usage() };
    let endpoint = or_usage(Endpoint::parse("--connect", connect));
    let timeout = or_usage(args.parse_value::<u64>(
        "--timeout-secs",
        "a response deadline in whole seconds, at least 1",
    ))
    .unwrap_or(600);
    if timeout == 0 {
        eprintln!("error: --timeout-secs must be at least 1");
        usage()
    }
    let scale = args.scale();

    let mut client = match Client::connect(&endpoint, Duration::from_secs(timeout)) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };

    if args.flag("--ping") {
        return match client.rpc(&Request::Ping) {
            Ok(Response::Pong) => {
                println!("pong");
                std::process::ExitCode::SUCCESS
            }
            Ok(other) => fail(&unexpected(&other)),
            Err(e) => fail(&e),
        };
    }
    if args.flag("--stats") {
        return match client.rpc(&Request::Stats) {
            Ok(Response::Stats(doc)) => {
                println!("{}", doc.to_pretty(2));
                std::process::ExitCode::SUCCESS
            }
            Ok(other) => fail(&unexpected(&other)),
            Err(e) => fail(&e),
        };
    }
    if let Some(workload) = args.value("--cell") {
        let config = args.value("--config").unwrap_or("fac");
        let req = cell_request(workload, config, scale);
        return match client.rpc(&Request::Cell(req)) {
            Ok(Response::Cell { cached, coalesced, trace_id, result, .. }) => {
                eprintln!(
                    "{workload} [{config}]: {} (trace {})",
                    if cached {
                        "served from store"
                    } else if coalesced {
                        "coalesced with an in-flight simulation"
                    } else {
                        "simulated fresh"
                    },
                    trace_id.as_deref().unwrap_or("-")
                );
                println!("{}", result.to_pretty(2));
                std::process::ExitCode::SUCCESS
            }
            Ok(Response::Error { kind, message }) => refusal(kind, &message),
            Ok(other) => fail(&unexpected(&other)),
            Err(e) => fail(&e),
        };
    }

    // Default: the full sweep, every workload under every named config.
    let mut rows = Vec::new();
    let mut trace_ids = Vec::new();
    let mut latency = Hist::new();
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut coalesces = 0usize;
    let mut total = 0usize;
    for workload in fac_workloads::suite() {
        for config in CONFIG_NAMES {
            total += 1;
            let req = cell_request(workload.name, config, scale);
            let sent_id = req.trace_id.clone().unwrap_or_default();
            let start = Instant::now();
            let resp = client.rpc(&Request::Cell(req));
            latency.record(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
            match resp {
                Ok(Response::Cell { cached, coalesced, trace_id, result, .. }) => {
                    let cycles = result.get("cycles").and_then(Json::as_u64).unwrap_or(0);
                    println!(
                        "{:10} {:8} {:>12} cycles{}",
                        workload.name,
                        config,
                        cycles,
                        if cached { "  (cached)" } else { "" }
                    );
                    if cached {
                        hits += 1;
                    } else if coalesced {
                        coalesces += 1;
                    } else {
                        misses += 1;
                    }
                    // The artifact records the id the server actually
                    // served under; for a stamped request that is the
                    // echo of our own deterministic id.
                    trace_ids.push(Json::Str(trace_id.unwrap_or(sent_id)));
                    rows.push(result);
                }
                Ok(Response::Error { kind, message }) => return refusal(kind, &message),
                Ok(other) => return fail(&unexpected(&other)),
                Err(e) => return fail(&e),
            }
        }
    }
    println!("cache hits: {hits}/{total}");
    println!(
        "sweep summary: {total} cells — {hits} hit, {misses} miss, {coalesces} coalesced; \
         rpc p50 {:.0} us, p99 {:.0} us",
        latency.p(0.50),
        latency.p(0.99)
    );

    if let Some(path) = args.value("--json") {
        // The artifact deliberately omits hit/coalesce flags: a cold
        // sweep and a fully cached re-run must be byte-identical. Trace
        // ids are deterministic, so they are safe to include; rpc
        // latency is not, so it rides behind --timings only.
        let mut doc = Json::obj();
        doc.set("campaign", Json::Str("server_sweep".to_string()));
        doc.set("scale", Json::Str(scale_name(scale).to_string()));
        doc.set("configs", Json::Arr(CONFIG_NAMES.iter().map(|c| Json::Str(c.to_string())).collect()));
        doc.set("trace_ids", Json::Arr(trace_ids));
        doc.set("rows", Json::Arr(rows));
        if args.flag("--timings") {
            doc.set("client_latency", latency.to_json());
        }
        if let Err(e) = fac_bench::write_json(path, &doc) {
            return fail(&e);
        }
    }
    std::process::ExitCode::SUCCESS
}

/// A response that violates the protocol's request/response pairing.
fn unexpected(resp: &Response) -> SimError {
    SimError::Io {
        path: "campaign server".to_string(),
        message: format!("unexpected response: {resp:?}"),
    }
}
