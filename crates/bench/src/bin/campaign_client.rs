//! The campaign client: drives a `campaign_server` over TCP or a Unix
//! socket.
//!
//! ```sh
//! # Full sweep (19 workloads x {baseline, fac}), artifact to a file:
//! cargo run --release -p fac-bench --bin campaign_client -- \
//!     --connect unix:/tmp/fac.sock --smoke --json sweep.json
//! # One cell, liveness, counters:
//! campaign_client --connect tcp:127.0.0.1:7199 --cell compress --config fac
//! campaign_client --connect unix:/tmp/fac.sock --ping
//! campaign_client --connect unix:/tmp/fac.sock --stats
//! ```
//!
//! The sweep computes each cell's configuration and program fingerprints
//! locally and sends them with the request, so client/server version
//! skew is a typed refusal instead of silently incomparable numbers. The
//! `--json` artifact contains only the cell results — whether a cell was
//! served from the store never changes the bytes, so a cold sweep and a
//! fully cached re-run produce byte-identical artifacts (cache hits are
//! reported on stdout for humans).
//!
//! Every request carries a trace id derived from the cell's identity
//! (`sweep.<workload>.<config>.<scale>`), so a line in the server's
//! access log joins to a row of the client artifact without any shared
//! clock. Ids are deterministic on purpose: they land in the artifact's
//! `trace_ids` lane and must not break byte-identity. Wall-clock lanes
//! are different — `client_latency` (an rpc-latency histogram) appears
//! in the artifact only under `--timings`.
//!
//! All RPCs ride the resilient client: dead connections are redialed
//! with jittered exponential backoff (`--attempts`, `--backoff-ms`,
//! `--seed`) and requests resent idempotently, so a killed connection
//! costs one RPC, not the campaign. Per-cell results are buffered: even
//! a sweep that aborts early writes its partial `--json` artifact, with
//! an `errors` block naming what failed (`--keep-going` records failures
//! and finishes the grid instead of aborting).
//!
//! Exit codes: 0 success, 1 simulation/transport failure, 2 bad usage or
//! a `bad-request` refusal, 3 shed by the server's admission bound.

use fac_bench::serve::client::{
    cell_request, run_sweep, sweep_artifact, CellError, ResilientClient, RetryPolicy,
};
use fac_bench::serve::proto::{ErrorKind, Request, Response};
use fac_bench::serve::Endpoint;
use fac_bench::Args;
use fac_sim::SimError;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: campaign_client --connect <tcp:host:port|unix:path>");
    eprintln!("       [--smoke] [--json <path|->] [--timeout-secs N] [--timings]");
    eprintln!("       [--attempts N] [--backoff-ms N] [--seed N] [--keep-going]");
    eprintln!("       [--cell <workload> [--config <baseline|fac>]] | [--ping] | [--stats]");
    std::process::exit(2);
}

/// Boolean flags this binary accepts.
const BOOL_FLAGS: &[&str] = &["--smoke", "--ping", "--stats", "--timings", "--keep-going"];
/// Value-taking flags this binary accepts.
const VALUE_FLAGS: &[&str] = &[
    "--connect",
    "--json",
    "--cell",
    "--config",
    "--timeout-secs",
    "--attempts",
    "--backoff-ms",
    "--seed",
];

/// Unwraps a parse result or exits with the typed error and the usage.
fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

fn fail(e: &SimError) -> std::process::ExitCode {
    eprintln!("error: {e}");
    std::process::ExitCode::FAILURE
}

/// Maps a protocol refusal to the documented exit codes.
fn refusal(kind: ErrorKind, message: &str) -> std::process::ExitCode {
    eprintln!("error: server refused ({}): {message}", kind.token());
    refusal_code(kind)
}

fn refusal_code(kind: ErrorKind) -> std::process::ExitCode {
    match kind {
        ErrorKind::BadRequest => std::process::ExitCode::from(2),
        ErrorKind::Overloaded => std::process::ExitCode::from(3),
        ErrorKind::Sim => std::process::ExitCode::FAILURE,
    }
}

fn main() -> std::process::ExitCode {
    let args = or_usage(Args::parse(BOOL_FLAGS, VALUE_FLAGS));
    or_usage(args.no_positionals(
        "--connect, --smoke, --json, --cell, --config, --timeout-secs, --attempts, \
         --backoff-ms, --seed, --keep-going, --ping, --stats",
    ));
    let Some(connect) = args.value("--connect") else { usage() };
    let endpoint = or_usage(Endpoint::parse("--connect", connect));
    let timeout = or_usage(args.parse_value::<u64>(
        "--timeout-secs",
        "a response deadline in whole seconds, at least 1",
    ))
    .unwrap_or(600);
    if timeout == 0 {
        eprintln!("error: --timeout-secs must be at least 1");
        usage()
    }
    let scale = args.scale();
    let mut policy = RetryPolicy::default();
    if let Some(attempts) =
        or_usage(args.parse_value::<u32>("--attempts", "a transport retry budget, at least 1"))
    {
        if attempts == 0 {
            eprintln!("error: --attempts must be at least 1");
            usage()
        }
        policy.attempts = attempts;
    }
    if let Some(base) =
        or_usage(args.parse_value::<u64>("--backoff-ms", "a backoff base in milliseconds"))
    {
        policy.base_ms = base.max(1);
    }
    if let Some(seed) = or_usage(args.parse_value::<u64>("--seed", "a backoff jitter seed")) {
        policy.seed = seed;
    }

    let mut client = ResilientClient::new(endpoint, Duration::from_secs(timeout), policy);

    if args.flag("--ping") {
        return match client.rpc(&Request::Ping) {
            Ok(Response::Pong) => {
                println!("pong");
                std::process::ExitCode::SUCCESS
            }
            Ok(other) => fail(&unexpected(&other)),
            Err(e) => fail(&e),
        };
    }
    if args.flag("--stats") {
        return match client.rpc(&Request::Stats) {
            Ok(Response::Stats(doc)) => {
                println!("{}", doc.to_pretty(2));
                std::process::ExitCode::SUCCESS
            }
            Ok(other) => fail(&unexpected(&other)),
            Err(e) => fail(&e),
        };
    }
    if let Some(workload) = args.value("--cell") {
        let config = args.value("--config").unwrap_or("fac");
        let req = cell_request(workload, config, scale);
        return match client.rpc(&Request::Cell(req)) {
            Ok(Response::Cell { cached, coalesced, trace_id, result, .. }) => {
                eprintln!(
                    "{workload} [{config}]: {} (trace {})",
                    if cached {
                        "served from store"
                    } else if coalesced {
                        "coalesced with an in-flight simulation"
                    } else {
                        "simulated fresh"
                    },
                    trace_id.as_deref().unwrap_or("-")
                );
                println!("{}", result.to_pretty(2));
                std::process::ExitCode::SUCCESS
            }
            Ok(Response::Error { kind, message, .. }) => refusal(kind, &message),
            Ok(other) => fail(&unexpected(&other)),
            Err(e) => fail(&e),
        };
    }

    // Default: the full sweep, every workload under every named config.
    // Results are buffered per cell, so the artifact below is written
    // even when the sweep stops early.
    let keep_going = args.flag("--keep-going");
    let report = run_sweep(&mut client, scale, keep_going, |line| println!("{line}"));
    println!("cache hits: {}/{}", report.hits, report.total);
    println!(
        "sweep summary: {} cells — {} hit, {} miss, {} coalesced; \
         rpc p50 {:.0} us, p99 {:.0} us",
        report.total,
        report.hits,
        report.misses,
        report.coalesces,
        report.latency.p(0.50),
        report.latency.p(0.99)
    );
    let s = client.stats;
    if s.reconnects + s.retries + s.breaker_trips + s.stale_discards > 0 {
        println!(
            "resilience: {} reconnects, {} retries, {} breaker trips, {} stale responses discarded",
            s.reconnects, s.retries, s.breaker_trips, s.stale_discards
        );
    }
    for (job, err) in &report.errors {
        eprintln!("error: {job}: {err}");
    }

    if let Some(path) = args.value("--json") {
        // The artifact deliberately omits hit/coalesce flags: a cold
        // sweep and a fully cached re-run must be byte-identical. Trace
        // ids are deterministic, so they are safe to include; rpc
        // latency is not, so it rides behind --timings only.
        let doc = sweep_artifact(&report, scale, args.flag("--timings"));
        if let Err(e) = fac_bench::write_json(path, &doc) {
            return fail(&e);
        }
    }
    match report.errors.first() {
        None => std::process::ExitCode::SUCCESS,
        Some((_, CellError::Refused { kind, .. })) => refusal_code(*kind),
        Some((_, CellError::Transport(_))) => std::process::ExitCode::FAILURE,
    }
}

/// A response that violates the protocol's request/response pairing.
fn unexpected(resp: &Response) -> SimError {
    SimError::Io {
        path: "campaign server".to_string(),
        message: format!("unexpected response: {resp:?}"),
    }
}
