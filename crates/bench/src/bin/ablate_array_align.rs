//! Runs the §5.4 large-array alignment extension study.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::ablate_array_align)
}
