//! Runs the §5.4 large-array alignment extension study.
fn main() {
    fac_bench::experiments::ablate_array_align(fac_bench::scale_from_args());
}
