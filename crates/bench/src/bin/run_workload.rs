//! CLI: run one workload on a chosen machine configuration and print its
//! full statistics report.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin run_workload -- compress --fac --sw
//! cargo run --release -p fac-bench --bin run_workload -- tomcatv --ltb 512 --smoke
//! ```

use fac_asm::SoftwareSupport;
use fac_core::{FaultPlan, PredictorConfig};
use fac_sim::{Machine, MachineConfig, RefClass};
use fac_workloads::{find, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("");
    let Some(wl) = find(name) else {
        eprintln!("usage: run_workload <name> [--fac] [--ltb N] [--agi] [--sw] [--smoke]");
        eprintln!("       [--block N] [--no-rr] [--no-store-spec] [--one-cycle] [--perfect]");
        eprintln!("       [--fault-plan <plan>] [--checks]");
        eprintln!(
            "fault plans: always-wrong, random-flip[:per1024], flip-index-bit:<bit>,"
        );
        eprintln!("             suppress-signals, silent-wrong  (each optionally @<seed>)");
        eprintln!(
            "names: {}",
            fac_workloads::suite()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    };
    let flag = |f: &str| args.iter().any(|a| a == f);
    let value = |f: &str| {
        args.iter()
            .position(|a| a == f)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u32>().ok())
    };

    let sw = if flag("--sw") { SoftwareSupport::on() } else { SoftwareSupport::off() };
    let scale = if flag("--smoke") { Scale::Smoke } else { Scale::Paper };
    let mut cfg = MachineConfig::paper_baseline();
    if let Some(block) = value("--block") {
        cfg = cfg.with_block_size(block);
    }
    if flag("--fac") {
        let pred = PredictorConfig {
            speculate_reg_reg: !flag("--no-rr"),
            speculate_stores: !flag("--no-store-spec"),
            ..PredictorConfig::default()
        };
        cfg = cfg.with_fac_config(pred);
    }
    if let Some(entries) = value("--ltb") {
        cfg = cfg.with_ltb(entries);
    }
    if flag("--agi") {
        cfg = cfg.with_agi_pipeline();
    }
    if flag("--one-cycle") {
        cfg = cfg.with_one_cycle_loads();
    }
    if flag("--perfect") {
        cfg = cfg.with_perfect_dcache();
    }
    if let Some(i) = args.iter().position(|a| a == "--fault-plan") {
        let spec = args.get(i + 1).map(String::as_str).unwrap_or("");
        match FaultPlan::parse(spec) {
            Ok(plan) => cfg = cfg.with_fault_plan(plan),
            Err(e) => {
                eprintln!("--fault-plan: {e}");
                std::process::exit(2);
            }
        }
    }
    if flag("--checks") {
        cfg = cfg.with_checks();
    }
    cfg = cfg.with_tlb();

    let program = wl.build(&sw, scale);
    let r = match Machine::new(cfg).run(&program) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{}: {e}", wl.name);
            std::process::exit(1);
        }
    };
    let s = &r.stats;

    println!("{} ({}, sw support {})", wl.name, if wl.fp { "fp" } else { "int" }, flag("--sw"));
    println!("  instructions      {:>12}", s.insts);
    println!("  cycles            {:>12}   (IPC {:.3})", s.cycles, s.ipc());
    println!("  loads / stores    {:>12} / {}", s.loads, s.stores);
    for class in RefClass::ALL {
        println!(
            "    {:7} loads   {:>12}   ({:.1}%)",
            class.label(),
            s.loads_by_class[class.index()],
            s.load_class_fraction(class) * 100.0
        );
    }
    println!("  i-cache           {}", s.icache);
    println!("  d-cache           {}", s.dcache);
    if let Some(t) = s.tlb {
        println!("  d-tlb             {} accesses, {:.3}% miss", t.accesses, t.miss_ratio() * 100.0);
    }
    println!("  branches          {:>12}   ({} mispredicted)", s.branches, s.branch_mispredicts);
    if s.pred_loads.attempts() + s.pred_stores.attempts() > 0 {
        println!(
            "  pred loads        {:>12} attempted, {} failed ({:.2}%)",
            s.pred_loads.attempts(),
            s.pred_loads.fails(),
            s.pred_loads.fail_rate_all() * 100.0
        );
        println!(
            "  pred stores       {:>12} attempted, {} failed ({:.2}%)",
            s.pred_stores.attempts(),
            s.pred_stores.fails(),
            s.pred_stores.fail_rate_all() * 100.0
        );
        println!(
            "  fail causes       overflow={} gen-carry={} large-neg={} neg-reg={} tag={}",
            s.fail_causes[0], s.fail_causes[1], s.fail_causes[2], s.fail_causes[3], s.fail_causes[4]
        );
        println!("  bandwidth overhead {:>10.2}%", s.bandwidth_overhead() * 100.0);
        if let Some(plan) = cfg.fault_plan {
            println!(
                "  fault plan        {plan}: {} bad speculations caught only by \
                 the decoupled verify compare",
                s.verify_catches
            );
        }
    }
    if let Some(l) = s.ltb {
        println!(
            "  ltb               {} predictions, {:.1}% accurate",
            l.predictions,
            l.accuracy() * 100.0
        );
    }
    println!("  sb full stalls    {:>12}", s.store_buffer_stalls);
    println!("  memory footprint  {:>12} KB", s.mem_footprint / 1024);
}
