//! CLI: run one workload on a chosen machine configuration and print its
//! full statistics report.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin run_workload -- compress --fac --sw
//! cargo run --release -p fac-bench --bin run_workload -- tomcatv --ltb 512 --smoke
//! cargo run --release -p fac-bench --bin run_workload -- \
//!     compress --fac --sw --json out.json --events out.jsonl --top-sites 10
//! ```
//!
//! `--json <path>` exports every statistic as a machine-readable metrics
//! document (`-` writes to stdout and suppresses the human report);
//! `--events <path>` streams the cycle-stamped event log as JSON Lines;
//! `--top-sites N` sizes the per-PC replay attribution table; `--sample K`
//! sets the interval-sampler window (cycles, default 10000).
//!
//! `--oracle` runs the whole simulation in lockstep with the golden
//! reference interpreter and fails with a typed divergence error on the
//! first architectural mismatch; `--max-steps N` bounds the instruction
//! budget of both executors (the watchdog reports a runaway instead of
//! hanging).
//!
//! `--tier fast` runs the fast functional tier only (architectural
//! results, no timing; combine with `--oracle` for per-instruction
//! lockstep against the golden reference). `--tier sampled` alternates
//! functional fast-forward with detailed measurement windows —
//! `--sample-every N` instructions per period, `--sample-window W`
//! detailed instructions at the start of each — and reports an
//! extrapolated CPI with its sampling error. `--tier detail` runs the
//! ordinary detailed machine but reports in the tiered format, so the
//! in-process wall-clock/throughput lines the fast and detail tiers print
//! (human lane only — never the JSON artifact) are directly comparable.

use fac_asm::{Program, SoftwareSupport};
use fac_core::{FailureCause, FaultPlan, PredictorConfig};
use fac_sim::obs::{Json, MetricsRegistry, Recorder, RegisterMetrics as _};
use fac_sim::tier::{run_fast, run_fast_verified, run_sampled, SampleSpec};
use fac_sim::{Lockstep, Machine, MachineConfig, RefClass, SimError, SimReport};
use fac_workloads::{find, Scale, Workload};

fn usage() -> ! {
    eprintln!("usage: run_workload <name> [--fac] [--ltb N] [--agi] [--sw] [--smoke]");
    eprintln!("       [--block N] [--no-rr] [--no-store-spec] [--one-cycle] [--perfect]");
    eprintln!("       [--fault-plan <plan>] [--checks] [--oracle] [--max-steps N]");
    eprintln!("       [--json <path|->] [--events <path>] [--top-sites N] [--sample K]");
    eprintln!("       [--tier fast|sampled|detail] [--sample-every N] [--sample-window W]");
    eprintln!("fault plans: always-wrong, random-flip[:per1024], flip-index-bit:<bit>,");
    eprintln!("             suppress-signals, silent-wrong  (each optionally @<seed>)");
    eprintln!(
        "names: {}",
        fac_workloads::suite().iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
    );
    std::process::exit(2);
}

/// Boolean flags this binary accepts.
const BOOL_FLAGS: &[&str] = &[
    "--fac", "--agi", "--sw", "--smoke", "--no-rr", "--no-store-spec", "--one-cycle",
    "--perfect", "--checks", "--oracle",
];
/// Value-taking flags this binary accepts.
const VALUE_FLAGS: &[&str] = &[
    "--ltb", "--block", "--fault-plan", "--json", "--events", "--top-sites", "--sample",
    "--max-steps", "--tier", "--sample-every", "--sample-window",
];

/// Unwraps a parse result or exits with the typed error and the usage.
fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

fn main() -> std::process::ExitCode {
    let args = or_usage(fac_bench::Args::parse(BOOL_FLAGS, VALUE_FLAGS));
    let name = match args.positionals() {
        [one] => one.as_str(),
        _ => usage(),
    };
    let Some(wl) = find(name) else { usage() };

    let sw = if args.flag("--sw") { SoftwareSupport::on() } else { SoftwareSupport::off() };
    let scale = if args.flag("--smoke") { Scale::Smoke } else { Scale::Paper };
    let mut cfg = MachineConfig::paper_baseline();
    if let Some(block) = or_usage(args.parse_value::<u32>("--block", "a block size in bytes")) {
        cfg = cfg.with_block_size(block);
    }
    if args.flag("--fac") {
        let pred = PredictorConfig {
            speculate_reg_reg: !args.flag("--no-rr"),
            speculate_stores: !args.flag("--no-store-spec"),
            ..PredictorConfig::default()
        };
        cfg = cfg.with_fac_config(pred);
    }
    if let Some(entries) = or_usage(args.parse_value::<u32>("--ltb", "an entry count")) {
        cfg = cfg.with_ltb(entries);
    }
    if args.flag("--agi") {
        cfg = cfg.with_agi_pipeline();
    }
    if args.flag("--one-cycle") {
        cfg = cfg.with_one_cycle_loads();
    }
    if args.flag("--perfect") {
        cfg = cfg.with_perfect_dcache();
    }
    if let Some(spec) = args.value("--fault-plan") {
        match FaultPlan::parse(spec) {
            Ok(plan) => cfg = cfg.with_fault_plan(plan),
            Err(e) => {
                eprintln!("--fault-plan: {e}");
                return std::process::ExitCode::from(2);
            }
        }
    }
    if args.flag("--checks") {
        cfg = cfg.with_checks();
    }
    cfg = cfg.with_tlb();

    let json_path = args.value("--json").map(String::from);
    let events_path = args.value("--events").map(String::from);
    let top_sites =
        or_usage(args.parse_value::<u32>("--top-sites", "a site count")).unwrap_or(10) as usize;
    let sample =
        or_usage(args.parse_value::<u32>("--sample", "a cycle window")).unwrap_or(10_000) as u64;
    let observe = json_path.is_some() || events_path.is_some();
    // `--json -` keeps stdout pure JSON.
    let human = json_path.as_deref() != Some("-");

    let oracle = args.flag("--oracle");
    let max_steps =
        or_usage(args.parse_value::<u64>("--max-steps", "an instruction budget of at least 1"));

    let tier = args.value("--tier").map(String::from);
    let sample_every =
        or_usage(args.parse_value::<u64>("--sample-every", "an instruction count"));
    let sample_window =
        or_usage(args.parse_value::<u64>("--sample-window", "an instruction count"));
    if tier.as_deref() != Some("sampled") && (sample_every.is_some() || sample_window.is_some()) {
        eprintln!("error: --sample-every/--sample-window require --tier sampled");
        usage()
    }

    let program = wl.build(&sw, scale);

    if let Some(tier) = tier.as_deref() {
        return run_tiered(
            tier,
            &wl,
            &program,
            cfg,
            oracle,
            max_steps.unwrap_or(2_000_000_000),
            SampleSpec {
                every: sample_every.unwrap_or(100_000),
                window: sample_window.unwrap_or(10_000),
            },
            json_path.as_deref(),
            human,
        );
    }
    let mut machine = Machine::new(cfg);
    let mut lockstep = Lockstep::new(cfg);
    if let Some(m) = max_steps {
        machine = machine.with_max_insts(m);
        lockstep = lockstep.with_max_insts(m);
    }
    let mut recorder = None;
    let run = if observe {
        let mut rec = Recorder::new().with_sampler(sample);
        if let Some(path) = &events_path {
            match std::fs::File::create(path) {
                Ok(f) => rec = rec.with_sink(Box::new(std::io::BufWriter::new(f))),
                Err(e) => {
                    eprintln!("error: {}", SimError::io(path, e));
                    return std::process::ExitCode::FAILURE;
                }
            }
        }
        let run = if oracle {
            lockstep.run_observed(&program, &mut rec)
        } else {
            machine.run_observed(&program, &mut rec)
        };
        recorder = Some(rec);
        run
    } else if oracle {
        lockstep.run(&program)
    } else {
        machine.run(&program)
    };
    let r = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {}: {e}", wl.name);
            return std::process::ExitCode::FAILURE;
        }
    };
    if let Some(rec) = &mut recorder {
        if let Err(message) = rec.finish_sink() {
            let path = events_path.as_deref().unwrap_or("--events").to_string();
            eprintln!("error: {}", SimError::Io { path, message });
            return std::process::ExitCode::FAILURE;
        }
    }

    if human {
        print_report(&wl, &r, &cfg, args.flag("--sw"));
        if oracle {
            println!(
                "  oracle            every retired instruction matched the golden reference"
            );
        }
        if let Some(rec) = &recorder {
            print_top_sites(rec, top_sites);
        }
    }

    if let Some(path) = &json_path {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let doc = json_document(&wl, &r, &cfg, &argv, recorder.as_ref(), top_sites);
        if let Err(e) = fac_bench::write_json(path, &doc) {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }
    std::process::ExitCode::SUCCESS
}

/// Minimum untimed work before the timed throughput run: long enough for
/// CPU frequency scaling to settle even on kernels that finish in a few
/// milliseconds.
const WARMUP: std::time::Duration = std::time::Duration::from_millis(300);

/// Timed repetitions per throughput line; the fastest is reported. The
/// minimum (not the mean) is the standard estimator for intrinsic runtime
/// on shared machines — external interference only ever adds time.
const TIMED_REPS: u32 = 3;

/// Runs the fast or sampled tier and renders its report.
#[allow(clippy::too_many_arguments)]
fn run_tiered(
    tier: &str,
    wl: &Workload,
    program: &Program,
    cfg: MachineConfig,
    oracle: bool,
    max_insts: u64,
    spec: SampleSpec,
    json_path: Option<&str>,
    human: bool,
) -> std::process::ExitCode {
    let mut doc = tier_document_header(wl, &cfg, tier);
    match tier {
        "fast" => {
            // Steady-state throughput: untimed warm-up runs absorb the cold
            // block decode, first-touch page allocation and CPU clock ramp
            // (short kernels need several runs before the clock settles),
            // then the timed run (identical, deterministic result) is the
            // one reported — the regime a campaign actually sees. Lockstep
            // verification is decode-bound either way, so the `--oracle`
            // form times its single run as-is.
            let (r, wall) = if oracle {
                let started = std::time::Instant::now();
                match run_fast_verified(&cfg, program, max_insts) {
                    Ok(r) => (r, started.elapsed()),
                    Err(e) => {
                        eprintln!("error: {}: {e}", wl.name);
                        return std::process::ExitCode::FAILURE;
                    }
                }
            } else {
                let warm = std::time::Instant::now();
                loop {
                    if let Err(e) = run_fast(&cfg, program, max_insts) {
                        eprintln!("error: {}: {e}", wl.name);
                        return std::process::ExitCode::FAILURE;
                    }
                    if warm.elapsed() >= WARMUP {
                        break;
                    }
                }
                let mut best: Option<(fac_sim::tier::FastReport, std::time::Duration)> = None;
                for _ in 0..TIMED_REPS {
                    let started = std::time::Instant::now();
                    match run_fast(&cfg, program, max_insts) {
                        Ok(r) => {
                            let dt = started.elapsed();
                            if best.as_ref().is_none_or(|(_, b)| dt < *b) {
                                best = Some((r, dt));
                            }
                        }
                        Err(e) => {
                            eprintln!("error: {}: {e}", wl.name);
                            return std::process::ExitCode::FAILURE;
                        }
                    }
                }
                best.expect("TIMED_REPS >= 1")
            };
            if human {
                println!("{} (fast functional tier, no timing)", wl.name);
                println!("  instructions      {:>12}", r.insts);
                println!("  memory footprint  {:>12} KB", r.final_state.mem.footprint() / 1024);
                print_throughput(r.insts, wall);
                if oracle {
                    println!(
                        "  oracle            every retired instruction matched the golden reference"
                    );
                }
            }
            let mut m = Json::obj();
            m.set("insts", Json::U64(r.insts));
            m.set("mem_footprint", Json::U64(r.final_state.mem.footprint()));
            m.set("verified", Json::Bool(oracle));
            doc.set("fast", m);
        }
        "sampled" => {
            let r = match run_sampled(&cfg, program, spec, max_insts) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {}: {e}", wl.name);
                    return std::process::ExitCode::FAILURE;
                }
            };
            if human {
                println!(
                    "{} (sampled: {} detailed of every {} insts)",
                    wl.name, spec.window, spec.every
                );
                println!("  instructions      {:>12}", r.insts);
                println!("  est. cycles       {:>12}   (CPI {:.4} ± {:.4})", r.est_cycles, r.cpi, r.cpi_stderr);
                println!(
                    "  measured          {:>12} insts / {} cycles in {} windows",
                    r.measured_insts,
                    r.measured_cycles,
                    r.windows.len()
                );
                println!("  memory footprint  {:>12} KB", r.final_state.mem.footprint() / 1024);
            }
            let mut m = Json::obj();
            m.set("insts", Json::U64(r.insts));
            m.set("est_cycles", Json::U64(r.est_cycles));
            m.set("cpi", Json::F64(r.cpi));
            m.set("cpi_stderr", Json::F64(r.cpi_stderr));
            m.set("windows", Json::U64(r.windows.len() as u64));
            m.set("measured_insts", Json::U64(r.measured_insts));
            m.set("measured_cycles", Json::U64(r.measured_cycles));
            m.set("sample_every", Json::U64(spec.every));
            m.set("sample_window", Json::U64(spec.window));
            m.set("mem_footprint", Json::U64(r.final_state.mem.footprint()));
            doc.set("sampled", m);
        }
        "detail" => {
            if oracle {
                eprintln!("error: --tier detail does not take --oracle (drop --tier for the lockstep run)");
                usage()
            }
            // Same warm-up and best-of-reps discipline as the fast tier so
            // the two throughput lines compare steady state fairly.
            let warm = std::time::Instant::now();
            loop {
                if let Err(e) = Machine::new(cfg).with_max_insts(max_insts).run(program) {
                    eprintln!("error: {}: {e}", wl.name);
                    return std::process::ExitCode::FAILURE;
                }
                if warm.elapsed() >= WARMUP {
                    break;
                }
            }
            let mut best = None;
            for _ in 0..TIMED_REPS {
                let started = std::time::Instant::now();
                match Machine::new(cfg).with_max_insts(max_insts).run(program) {
                    Ok(r) => {
                        let dt = started.elapsed();
                        if best.as_ref().is_none_or(|(_, b)| dt < *b) {
                            best = Some((r, dt));
                        }
                    }
                    Err(e) => {
                        eprintln!("error: {}: {e}", wl.name);
                        return std::process::ExitCode::FAILURE;
                    }
                }
            }
            let (r, wall) = best.expect("TIMED_REPS >= 1");
            if human {
                println!("{} (detailed tier)", wl.name);
                println!("  instructions      {:>12}", r.stats.insts);
                println!(
                    "  cycles            {:>12}   (IPC {:.3})",
                    r.stats.cycles,
                    r.stats.ipc()
                );
                println!("  memory footprint  {:>12} KB", r.stats.mem_footprint / 1024);
                print_throughput(r.stats.insts, wall);
            }
            let mut m = Json::obj();
            m.set("insts", Json::U64(r.stats.insts));
            m.set("cycles", Json::U64(r.stats.cycles));
            m.set("mem_footprint", Json::U64(r.stats.mem_footprint));
            doc.set("detail", m);
        }
        other => {
            eprintln!("error: unknown tier '{other}' (expected fast, sampled or detail)");
            usage()
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = fac_bench::write_json(path, &doc) {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }
    std::process::ExitCode::SUCCESS
}

/// In-process simulation throughput, human lane only — wall-clock never
/// enters the JSON artifact, which must stay byte-identical across runs.
fn print_throughput(insts: u64, wall: std::time::Duration) {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        println!(
            "  sim wall-clock    {:>12.1} ms   ({:.1} Minst/s)",
            secs * 1e3,
            insts as f64 / secs / 1e6
        );
    }
}

/// The workload/config/tier preamble of a tiered-run JSON document.
fn tier_document_header(wl: &Workload, cfg: &MachineConfig, tier: &str) -> Json {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut doc = Json::obj();
    let mut workload = Json::obj();
    workload.set("name", Json::Str(wl.name.to_string()));
    workload.set("kind", Json::Str(if wl.fp { "fp" } else { "int" }.to_string()));
    workload.set("args", Json::Arr(argv.into_iter().map(Json::Str).collect()));
    doc.set("workload", workload);
    let mut config = Json::obj();
    config.set("fac", Json::Bool(cfg.fac.is_some()));
    config.set("ltb", Json::Bool(cfg.ltb_entries.is_some()));
    config.set("block_bytes", Json::U64(cfg.dcache.block_bytes as u64));
    doc.set("config", config);
    doc.set("tier", Json::Str(tier.to_string()));
    doc
}

fn print_report(wl: &Workload, r: &SimReport, cfg: &MachineConfig, sw: bool) {
    let s = &r.stats;
    println!("{} ({}, sw support {})", wl.name, if wl.fp { "fp" } else { "int" }, sw);
    println!("  instructions      {:>12}", s.insts);
    println!("  cycles            {:>12}   (IPC {:.3})", s.cycles, s.ipc());
    println!("  loads / stores    {:>12} / {}", s.loads, s.stores);
    for class in RefClass::ALL {
        println!(
            "    {:7} loads   {:>12}   ({:.1}%)",
            class.label(),
            s.loads_by_class[class.index()],
            s.load_class_fraction(class) * 100.0
        );
    }
    println!("  i-cache           {}", s.icache);
    println!("  d-cache           {}", s.dcache);
    if let Some(t) = s.tlb {
        println!("  d-tlb             {} accesses, {:.3}% miss", t.accesses, t.miss_ratio() * 100.0);
    }
    println!("  branches          {:>12}   ({} mispredicted)", s.branches, s.branch_mispredicts);
    if s.pred_loads.attempts() + s.pred_stores.attempts() > 0 {
        println!(
            "  pred loads        {:>12} attempted, {} failed ({:.2}%)",
            s.pred_loads.attempts(),
            s.pred_loads.fails(),
            s.pred_loads.fail_rate_all() * 100.0
        );
        println!(
            "  pred stores       {:>12} attempted, {} failed ({:.2}%)",
            s.pred_stores.attempts(),
            s.pred_stores.fails(),
            s.pred_stores.fail_rate_all() * 100.0
        );
        println!(
            "  fail causes       overflow={} gen-carry={} large-neg={} neg-reg={} tag={}",
            s.fail_causes[0], s.fail_causes[1], s.fail_causes[2], s.fail_causes[3], s.fail_causes[4]
        );
        println!("  bandwidth overhead {:>10.2}%", s.bandwidth_overhead() * 100.0);
        if let Some(plan) = cfg.fault_plan {
            println!(
                "  fault plan        {plan}: {} bad speculations caught only by \
                 the decoupled verify compare",
                s.verify_catches
            );
        }
    }
    if let Some(l) = s.ltb {
        println!(
            "  ltb               {} predictions, {:.1}% accurate",
            l.predictions,
            l.accuracy() * 100.0
        );
    }
    println!("  sb full stalls    {:>12}", s.store_buffer_stalls);
    println!("  memory footprint  {:>12} KB", s.mem_footprint / 1024);
}

/// The per-PC replay attribution table, human-readable.
fn print_top_sites(rec: &Recorder, n: usize) {
    let mut sites = rec.attribution.top_sites(n);
    sites.retain(|s| s.replays > 0);
    if sites.is_empty() {
        println!("  top replay sites  none ({} speculating PCs, zero replays)", rec.attribution.len());
        return;
    }
    println!("  top replay sites  (of {} speculating PCs)", rec.attribution.len());
    println!(
        "    {:>10} {:>7} {:>6} {:>10} {:>8}  dominant cause",
        "pc", "class", "kind", "replays", "fail%"
    );
    for site in &sites {
        let cause = FailureCause::ALL
            .iter()
            .max_by_key(|c| site.causes[c.index()])
            .filter(|c| site.causes[c.index()] > 0)
            .map(|c| c.label())
            .unwrap_or("-");
        println!(
            "    {:>#10x} {:>7} {:>6} {:>10} {:>8.2}  {}",
            site.pc,
            site.class.label(),
            if site.is_store { "store" } else { "load" },
            site.replays,
            site.fail_rate() * 100.0,
            cause
        );
    }
}

/// The full machine-readable run document.
fn json_document(
    wl: &Workload,
    r: &SimReport,
    cfg: &MachineConfig,
    args: &[String],
    rec: Option<&Recorder>,
    top_sites: usize,
) -> Json {
    let mut doc = Json::obj();
    let mut workload = Json::obj();
    workload.set("name", Json::Str(wl.name.to_string()));
    workload.set("kind", Json::Str(if wl.fp { "fp" } else { "int" }.to_string()));
    workload.set("args", Json::Arr(args.iter().map(|a| Json::Str(a.clone())).collect()));
    doc.set("workload", workload);

    let mut config = Json::obj();
    config.set("fac", Json::Bool(cfg.fac.is_some()));
    config.set("ltb", Json::Bool(cfg.ltb_entries.is_some()));
    config.set("block_bytes", Json::U64(cfg.dcache.block_bytes as u64));
    config.set(
        "fault_plan",
        match cfg.fault_plan {
            Some(p) => Json::Str(p.to_string()),
            None => Json::Null,
        },
    );
    doc.set("config", config);

    let mut reg = MetricsRegistry::new();
    r.stats.register_metrics(&mut reg, "sim");
    doc.set("metrics", reg.to_json());

    if let Some(rec) = rec {
        doc.set("observability", rec.to_json(top_sites));
    }
    doc
}
