//! Offline store scrubber: one anti-entropy pass over a campaign store.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin store_scrub -- --store-dir /tmp/fac-store
//! ```
//!
//! Re-verifies every FACCELL frame with the same checks the read path
//! applies (magic, version, length, FNV-1a content digest, JSON shape)
//! and quarantines corrupt frames with `component=scrubber` provenance
//! in their `.reason` notes — exactly what the in-server background
//! scrubber (`campaign_server --scrub-interval-secs N`) does per pass,
//! but runnable against a store no server currently owns.
//!
//! Exit status: 0 when every frame scanned clean, 1 when anything was
//! corrupt or missing (CI's scrub smoke asserts a clean second pass
//! after recompute), 2 on usage errors.

use fac_bench::serve::store::{Scrub, Store};
use fac_bench::Args;
use fac_sim::SimError;

fn usage() -> ! {
    eprintln!("usage: store_scrub --store-dir <dir>");
    std::process::exit(2);
}

fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

fn main() -> std::process::ExitCode {
    let args = or_usage(Args::parse(&[], &["--store-dir"]));
    or_usage(args.no_positionals("--store-dir"));
    let Some(dir) = args.value("--store-dir") else { usage() };

    let run = || -> Result<(u64, u64, u64), SimError> {
        let store = Store::open(std::path::Path::new(dir))?;
        let (mut clean, mut corrupt, mut missing) = (0u64, 0u64, 0u64);
        for key in store.keys()? {
            match store.scrub_key(key)? {
                Scrub::Clean => clean += 1,
                Scrub::Missing => missing += 1,
                Scrub::Corrupt(fault) => {
                    corrupt += 1;
                    eprintln!(
                        "store_scrub: key {key:#018x} failed check {}: {} (quarantined)",
                        fault.check, fault.error
                    );
                }
            }
        }
        Ok((clean, corrupt, missing))
    };
    match run() {
        Ok((clean, corrupt, missing)) => {
            println!(
                "store_scrub: {} scanned, {clean} clean, {corrupt} corrupt, {missing} missing",
                clean + corrupt + missing
            );
            if corrupt == 0 && missing == 0 {
                std::process::ExitCode::SUCCESS
            } else {
                std::process::ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
