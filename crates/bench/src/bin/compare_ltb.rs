//! Runs the compare_ltb experiment.
fn main() {
    fac_bench::experiments::compare_ltb(fac_bench::scale_from_args());
}
