//! Runs the compare_ltb experiment.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::compare_ltb)
}
