//! Regenerates table6 of the paper's evaluation.
fn main() {
    fac_bench::experiments::table6(fac_bench::scale_from_args());
}
