//! CLI: assemble a `.s` file (the `fac-asm` text syntax) and run it.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin run_asm -- examples/programs/dotprod.s --fac
//! # Verify the run against the golden reference interpreter:
//! cargo run --release -p fac-bench --bin run_asm -- repro.fasm --fac --oracle
//! ```
//!
//! `--oracle` runs the program in lockstep with the golden reference and
//! fails with a typed divergence on the first architectural mismatch;
//! `--max-steps N` bounds the instruction budget of both executors.

use fac_asm::{assemble_and_link, SoftwareSupport};
use fac_sim::{render_diagram, Lockstep, Machine, MachineConfig};

fn usage() -> ! {
    eprintln!("usage: run_asm <file.s> [--fac] [--no-sw] [--trace] [--disasm] [--oracle]");
    eprintln!("       [--max-steps N]");
    std::process::exit(2);
}

fn main() {
    let args = match fac_bench::Args::parse(
        &["--fac", "--no-sw", "--trace", "--disasm", "--oracle"],
        &["--max-steps"],
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    let path = match args.positionals() {
        [one] => one.as_str(),
        _ => usage(),
    };
    let flag = |f: &str| args.flag(f);
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let sw = if flag("--no-sw") { SoftwareSupport::off() } else { SoftwareSupport::on() };
    let program = match assemble_and_link(&source, path, &sw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    if flag("--disasm") {
        print!("{}", program.disassemble());
    }
    let mut cfg = MachineConfig::paper_baseline();
    if flag("--fac") {
        cfg = cfg.with_fac();
    }
    let max_steps = match args.parse_value::<u64>("--max-steps", "an instruction budget") {
        Ok(v) => v.unwrap_or(1_000_000_000),
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    let machine = Machine::new(cfg).with_max_insts(max_steps);
    let outcome = if flag("--oracle") {
        Lockstep::new(cfg).with_max_insts(max_steps).run(&program)
    } else if flag("--trace") {
        machine.run_traced(&program).map(|(report, trace)| {
            println!("{}", render_diagram(&trace[trace.len().saturating_sub(24)..]));
            report
        })
    } else {
        machine.run(&program)
    };
    match outcome {
        Ok(report) => {
            print_summary(&report);
            if flag("--oracle") {
                println!("  oracle: every retired instruction matched the golden reference");
            }
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn print_summary(r: &fac_sim::SimReport) {
    println!(
        "{}: {} instructions, {} cycles (IPC {:.2}), {} loads / {} stores",
        r.program,
        r.stats.insts,
        r.stats.cycles,
        r.ipc(),
        r.stats.loads,
        r.stats.stores
    );
    if r.stats.pred_loads.attempts() > 0 {
        println!(
            "  address prediction: {:.2}% of loads failed, {:.2}% bandwidth overhead",
            r.stats.pred_loads.fail_rate_all() * 100.0,
            r.stats.bandwidth_overhead() * 100.0
        );
    }
}
