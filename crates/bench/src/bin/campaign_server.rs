//! The campaign server daemon: simulation-as-a-service with a
//! content-addressed result cache.
//!
//! ```sh
//! cargo run --release -p fac-bench --bin campaign_server -- \
//!     --listen unix:/tmp/fac.sock --store-dir /tmp/fac-store
//! ```
//!
//! Listens on a TCP or Unix-domain socket, answers repeated cells from
//! the on-disk store, coalesces concurrent requests for one cell into a
//! single simulation, sheds work past `--max-queue` with a typed
//! overload error, and drains gracefully on SIGTERM/SIGINT: in-flight
//! requests finish, the store is fsynced, and the process exits 0.
//!
//! Telemetry (DESIGN.md §12): `--metrics tcp-addr` serves Prometheus
//! text exposition on a read-only HTTP listener that keeps answering
//! while cell traffic is shed; `--access-log path` appends one JSONL
//! line per request (trace id, peer, phase timings, outcome); requests
//! slower than `--slow-ms` are flagged `"slow": true` in that log.

use fac_bench::serve::server::{Server, ServeOptions, Shutdown};
use fac_bench::serve::Endpoint;
use fac_bench::Args;
use fac_sim::{ConfigError, SimError};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!("usage: campaign_server --listen <tcp:host:port|unix:path> --store-dir <dir>");
    eprintln!("       [--max-queue N] [--request-timeout-secs N] [--idle-timeout-secs N]");
    eprintln!("       [--metrics host:port] [--access-log <path>] [--slow-ms N]");
    eprintln!("       [--test-cells] [--chaos-store <spec>] [--degrade-after N] [--store-probe-ms N]");
    eprintln!("       [--scrub-interval-secs N]");
    eprintln!("       (chaos spec: seed=N,enospc=PCT,burst=N,short=PCT,fsync=PCT,rename=PCT,read=PCT)");
    std::process::exit(2);
}

/// Boolean flags this binary accepts.
const BOOL_FLAGS: &[&str] = &["--test-cells"];
/// Value-taking flags this binary accepts.
const VALUE_FLAGS: &[&str] = &[
    "--listen",
    "--store-dir",
    "--max-queue",
    "--request-timeout-secs",
    "--idle-timeout-secs",
    "--metrics",
    "--access-log",
    "--slow-ms",
    "--chaos-store",
    "--degrade-after",
    "--store-probe-ms",
    "--scrub-interval-secs",
];

/// Unwraps a parse result or exits with the typed error and the usage.
fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

/// A positive-integer flag: zero is rejected with the flag's own name.
fn positive(args: &Args, flag: &'static str, expected: &'static str) -> Option<u64> {
    match or_usage(args.parse_value::<u64>(flag, expected)) {
        Some(0) => or_usage(Err(ConfigError::BadFlagValue {
            flag: flag.to_string(),
            value: "0".to_string(),
            expected,
        }
        .into())),
        other => other,
    }
}

/// Routes SIGTERM and SIGINT to the server's graceful-drain flag. Raw
/// `signal(2)` FFI — the flag store is a single atomic write, which is
/// async-signal-safe, and the container has no libc crate to lean on.
#[cfg(unix)]
fn install_signal_handlers(shutdown: Shutdown) {
    use std::sync::OnceLock;
    static DRAIN: OnceLock<Shutdown> = OnceLock::new();
    DRAIN.set(shutdown).ok();
    extern "C" fn on_signal(_signum: i32) {
        if let Some(drain) = DRAIN.get() {
            drain.trigger();
        }
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_shutdown: Shutdown) {}

fn main() -> std::process::ExitCode {
    let args = or_usage(Args::parse(BOOL_FLAGS, VALUE_FLAGS));
    or_usage(args.no_positionals(
        "--listen, --store-dir, --max-queue, --request-timeout-secs, --idle-timeout-secs, \
         --metrics, --access-log, --slow-ms, --test-cells, --chaos-store, --degrade-after, \
         --store-probe-ms, --scrub-interval-secs",
    ));
    let Some(listen) = args.value("--listen") else { usage() };
    let endpoint = or_usage(Endpoint::parse("--listen", listen));
    let Some(store_dir) = args.value("--store-dir") else { usage() };

    let mut opts = ServeOptions::new(store_dir);
    if let Some(n) = positive(&args, "--max-queue", "an admission bound of at least 1") {
        opts.max_queue = n as usize;
    }
    if let Some(n) =
        positive(&args, "--request-timeout-secs", "a per-request deadline in whole seconds, at least 1")
    {
        opts.request_timeout_secs = n;
    }
    if let Some(n) =
        positive(&args, "--idle-timeout-secs", "an idle deadline in whole seconds, at least 1")
    {
        opts.idle_timeout_secs = n;
    }
    opts.test_cells = args.flag("--test-cells");
    opts.metrics_addr = args.value("--metrics").map(str::to_string);
    opts.access_log = args.value("--access-log").map(std::path::PathBuf::from);
    if let Some(n) =
        positive(&args, "--slow-ms", "a slow-request threshold in whole milliseconds, at least 1")
    {
        opts.slow_ms = n;
    }
    // Fault injection for soak testing: the store's filesystem lies per
    // the spec's seeded schedule. Never useful in production — which is
    // the point.
    if let Some(spec) = args.value("--chaos-store") {
        match fac_bench::chaos::ChaosPlan::parse(spec) {
            Ok(plan) => opts.chaos_store = Some(plan),
            Err(e) => {
                eprintln!("error: --chaos-store: {e}");
                usage()
            }
        }
    }
    if let Some(n) =
        positive(&args, "--degrade-after", "consecutive store-write failures before degrading, at least 1")
    {
        opts.degrade_after = n as u32;
    }
    if let Some(n) =
        positive(&args, "--store-probe-ms", "a degraded-store probe interval in whole milliseconds, at least 1")
    {
        opts.store_probe_ms = n;
    }
    if let Some(n) = positive(
        &args,
        "--scrub-interval-secs",
        "a store-scrub interval in whole seconds, at least 1",
    ) {
        opts.scrub_interval_secs = n;
    }

    let server = match Server::bind(&endpoint, opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    install_signal_handlers(server.shutdown_handle());
    // Announce (and flush) the bound endpoint before serving, so a script
    // that started us knows when — and where — to connect. The metrics
    // address is announced the same way (`:0` resolved to a real port).
    println!("campaign server listening on {}", server.endpoint());
    if let Some(addr) = server.metrics_addr() {
        println!("campaign server metrics on tcp:{addr}");
    }
    std::io::stdout().flush().ok();

    match server.run() {
        Ok(()) => {
            println!("campaign server drained cleanly");
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}
