//! Regenerates ablate_store_buffer of the paper's evaluation.
fn main() {
    fac_bench::experiments::ablate_store_buffer(fac_bench::scale_from_args());
}
