//! Regenerates ablate_store_buffer of the paper's evaluation.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::ablate_store_buffer)
}
