//! Regenerates ablate_full_tag of the paper's evaluation.
fn main() {
    fac_bench::experiments::ablate_full_tag(fac_bench::scale_from_args());
}
