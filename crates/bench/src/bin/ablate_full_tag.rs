//! Regenerates ablate_full_tag of the paper's evaluation.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::ablate_full_tag)
}
