//! Regenerates table4 of the paper's evaluation.
fn main() {
    fac_bench::experiments::table4(fac_bench::scale_from_args());
}
