//! Runs the MSHR-count ablation.
fn main() {
    fac_bench::experiments::ablate_mshr(fac_bench::scale_from_args());
}
