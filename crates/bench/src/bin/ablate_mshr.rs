//! Runs the MSHR-count ablation.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::ablate_mshr)
}
