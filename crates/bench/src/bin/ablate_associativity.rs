//! Runs the ablate_associativity experiment.
fn main() {
    fac_bench::experiments::ablate_associativity(fac_bench::scale_from_args());
}
