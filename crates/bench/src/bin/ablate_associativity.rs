//! Runs the ablate_associativity experiment.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::ablate_associativity)
}
