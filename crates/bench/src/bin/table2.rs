//! Regenerates Table 2: the benchmark programs and their (scaled) inputs.
fn main() {
    fac_bench::experiments::table2();
}
