//! Regenerates Table 2: the benchmark programs and their (scaled) inputs.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::table2)
}
