//! Regenerates table3 of the paper's evaluation.
fn main() {
    fac_bench::experiments::table3(fac_bench::scale_from_args());
}
