//! Regenerates table1 of the paper's evaluation.
fn main() {
    fac_bench::experiments::table1(fac_bench::scale_from_args());
}
