//! Regenerates ablate_or_xor of the paper's evaluation.
fn main() {
    fac_bench::experiments::ablate_or_xor(fac_bench::scale_from_args());
}
