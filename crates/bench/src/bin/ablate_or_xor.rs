//! Regenerates ablate_or_xor of the paper's evaluation.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::ablate_or_xor)
}
