//! Regenerates fig6 of the paper's evaluation.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::fig6)
}
