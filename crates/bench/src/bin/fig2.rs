//! Regenerates fig2 of the paper's evaluation.
fn main() {
    fac_bench::experiments::fig2(fac_bench::scale_from_args());
}
