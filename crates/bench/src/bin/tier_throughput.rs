//! `tier_throughput` — paired steady-state throughput measurement of the
//! fast functional tier against the detailed pipeline.
//!
//! Cross-process wall-clock comparisons are unreliable: binary layout,
//! CPU frequency ramp and scheduler noise move single-shot numbers by
//! tens of percent. This tool measures both tiers back to back in one
//! process — same binary, same machine conditions — warming up first and
//! reporting the fastest of several timed runs (the minimum is the
//! standard estimator for intrinsic runtime on shared machines, since
//! interference only ever adds time).
//!
//! ```text
//! usage: tier_throughput [workload...]
//! ```
//!
//! With no positional arguments it measures `compress` and `tomcatv`, the
//! two kernels whose fast-tier speedup the experiment log tracks. Output
//! is human-lane only: wall-clock numbers never belong in a JSON artifact.

use fac_asm::SoftwareSupport;
use fac_sim::tier::run_fast;
use fac_sim::{Machine, MachineConfig};
use fac_workloads::{find, Scale};
use std::time::{Duration, Instant};

/// Minimum untimed work before timing starts, per workload: long enough
/// for CPU frequency scaling to settle even on millisecond kernels.
const WARMUP: Duration = Duration::from_millis(300);

/// Timed repetitions per tier; the fastest is reported.
const TIMED_REPS: u32 = 5;

fn usage() -> ! {
    eprintln!("usage: tier_throughput [workload...]");
    std::process::exit(2)
}

/// Times `run` with the warm-up/best-of-reps discipline, returning the
/// fastest wall-clock and the instruction count (identical across reps —
/// every tier is deterministic).
fn best_of<E: std::fmt::Display>(
    mut run: impl FnMut() -> Result<u64, E>,
) -> Result<(u64, Duration), E> {
    let warm = Instant::now();
    loop {
        run()?;
        if warm.elapsed() >= WARMUP {
            break;
        }
    }
    let mut best: Option<(u64, Duration)> = None;
    for _ in 0..TIMED_REPS {
        let started = Instant::now();
        let insts = run()?;
        let wall = started.elapsed();
        if best.as_ref().is_none_or(|(_, b)| wall < *b) {
            best = Some((insts, wall));
        }
    }
    Ok(best.expect("TIMED_REPS >= 1"))
}

fn minst_per_s(insts: u64, wall: Duration) -> f64 {
    insts as f64 / wall.as_secs_f64() / 1e6
}

fn main() -> std::process::ExitCode {
    let names: Vec<String> = std::env::args().skip(1).collect();
    if names.iter().any(|a| a.starts_with('-')) {
        usage()
    }
    let names = if names.is_empty() {
        vec!["compress".to_string(), "tomcatv".to_string()]
    } else {
        names
    };

    println!("== Tier throughput: fast functional vs detailed pipeline (best of {TIMED_REPS}) ==");
    println!(
        "{:10} {:>10} {:>12} {:>14} {:>9}",
        "program", "insts", "fast Mi/s", "detail Mi/s", "speedup"
    );
    for name in &names {
        let Some(wl) = find(name) else {
            eprintln!("error: unknown workload '{name}'");
            usage()
        };
        let program = wl.build(&SoftwareSupport::on(), Scale::Paper);
        let cfg = MachineConfig::paper_baseline().with_fac();

        let fast = best_of(|| run_fast(&cfg, &program, fac_bench::MAX_INSTS).map(|r| r.insts));
        let (fast_insts, fast_wall) = match fast {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        let detail = best_of(|| {
            Machine::new(cfg)
                .with_max_insts(fac_bench::MAX_INSTS)
                .run(&program)
                .map(|r| r.stats.insts)
        });
        let (detail_insts, detail_wall) = match detail {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {name}: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        assert_eq!(fast_insts, detail_insts, "{name}: tiers retired different counts");

        let (f, d) = (minst_per_s(fast_insts, fast_wall), minst_per_s(detail_insts, detail_wall));
        println!("{:10} {:>10} {:>12.1} {:>14.1} {:>8.1}x", name, fast_insts, f, d, f / d);
    }
    std::process::ExitCode::SUCCESS
}
