//! Prints the Table 5 baseline machine model.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::table5)
}
