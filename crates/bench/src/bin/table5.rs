//! Prints the Table 5 baseline machine model.
fn main() {
    fac_bench::experiments::table5();
}
