//! Runs the compare_pipelines experiment.
fn main() {
    fac_bench::experiments::compare_pipelines(fac_bench::scale_from_args());
}
