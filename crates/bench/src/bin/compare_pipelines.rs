//! Runs the compare_pipelines experiment.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::compare_pipelines)
}
