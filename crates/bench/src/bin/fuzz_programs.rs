//! CLI: the differential fuzzing campaign.
//!
//! ```sh
//! # 1000 random programs through the lockstep oracle, all fault plans:
//! cargo run --release -p fac-bench --bin fuzz_programs -- --seeds 1000
//!
//! # Self-test: arm the escaped-speculation saboteur; the campaign must
//! # diverge, and each divergence is shrunk to a minimal repro:
//! cargo run --release -p fac-bench --bin fuzz_programs -- \
//!     --seeds 10 --escape silent-wrong --repro-dir repros/
//! ```
//!
//! Exit status: nonzero when the campaign found a failure (normal mode),
//! when no seed diverged at all (escape mode — an oracle that cannot see
//! the saboteur is broken), or when `--keep-going` had to degrade any seed
//! (like `make -k`: finish everything, then report the run incomplete).
//! The `--json` artifact is byte-identical at any `--jobs` count.
//!
//! Crash safety: `--resume <dir>` journals every finished seed so a killed
//! campaign picks up where it stopped with a byte-identical artifact;
//! `--timeout-secs` / `--retries` bound and retry individual seeds;
//! `--keep-going` turns failed seed jobs into `null` artifact lanes plus
//! an `errors` block instead of aborting.

use fac_bench::fuzz::{run_campaign_with, CampaignConfig};
use fac_bench::manifest::Manifest;
use fac_bench::Args;
use fac_core::FaultPlan;
use fac_sim::SimError;
use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: fuzz_programs [--seeds N] [--start N] [--jobs N] [--json <path|->]");
    eprintln!("       [--max-steps N] [--repro-dir <dir>] [--escape <plan>]");
    eprintln!("       [--resume <dir>] [--timeout-secs N] [--retries N] [--keep-going]");
    eprintln!("fault plans: always-wrong, random-flip[:per1024], flip-index-bit:<bit>,");
    eprintln!("             suppress-signals, silent-wrong  (each optionally @<seed>)");
    std::process::exit(2);
}

const BOOL_FLAGS: &[&str] = &["--keep-going"];
const VALUE_FLAGS: &[&str] = &[
    "--seeds",
    "--start",
    "--jobs",
    "--json",
    "--max-steps",
    "--repro-dir",
    "--escape",
    "--resume",
    "--timeout-secs",
    "--retries",
];

fn or_usage<T>(result: Result<T, SimError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

/// Turns a config label into a filename fragment (`fac+flip-index-bit:3`
/// becomes `fac+flip-index-bit-3`).
fn sanitize(label: &str) -> String {
    label.chars().map(|c| if c == ':' || c == '@' || c == '/' { '-' } else { c }).collect()
}

fn main() -> std::process::ExitCode {
    let args = or_usage(Args::parse(BOOL_FLAGS, VALUE_FLAGS));
    if !args.positionals().is_empty() {
        usage();
    }
    let mut cc = CampaignConfig::default();
    if let Some(n) = or_usage(args.parse_value::<u64>("--seeds", "a seed count")) {
        cc.count = n;
    }
    if let Some(n) = or_usage(args.parse_value::<u64>("--start", "a first seed")) {
        cc.start = n;
    }
    if let Some(n) = or_usage(args.parse_value::<u64>("--max-steps", "an instruction budget")) {
        cc.max_steps = n;
    }
    if let Some(spec) = args.value("--escape") {
        match FaultPlan::parse(spec) {
            Ok(plan) => cc.escape = Some(plan),
            Err(e) => {
                eprintln!("--escape: {e}");
                return std::process::ExitCode::from(2);
            }
        }
    }
    let jobs = or_usage(args.jobs());
    let opts = or_usage(args.run_options());
    let manifest = match args.resume_dir() {
        None => None,
        Some(dir) => match Manifest::open(Path::new(dir)) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("error: {e}");
                return std::process::ExitCode::FAILURE;
            }
        },
    };
    let json_path = args.value("--json").map(String::from);
    let repro_dir = args.value("--repro-dir").map(String::from);
    // `--json -` keeps stdout pure JSON.
    let human = json_path.as_deref() != Some("-");

    let campaign = match run_campaign_with(&cc, jobs, &opts, manifest.as_ref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let report = match campaign.report() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };

    let failures: Vec<_> = report.failures().collect();
    let clean: Vec<u64> = report.clean_seeds().collect();
    if human {
        let mode = match cc.escape {
            Some(plan) => format!("escape self-test ({plan})"),
            None => "differential".to_string(),
        };
        println!(
            "fuzz: {} {} programs (seeds {}..{}), {} failures",
            cc.count,
            mode,
            cc.start,
            cc.start + cc.count,
            failures.len()
        );
        for (seed, f) in &failures {
            println!(
                "  seed {seed} [{}]: {} (shrunk {} -> {} lines)",
                f.config, f.error, f.original_lines, f.shrunk_lines
            );
        }
        for (job, e) in &campaign.errors {
            println!("  [degraded] {job}: {e}");
        }
    }

    if let Some(dir) = &repro_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: {}", SimError::io(dir, e));
            return std::process::ExitCode::FAILURE;
        }
        for (seed, f) in &failures {
            let path = format!("{dir}/seed{seed:06}-{}.fasm", sanitize(&f.config));
            if let Err(e) = fac_bench::io::write_atomic(Path::new(&path), f.shrunk.as_bytes()) {
                eprintln!("error: {e}");
                return std::process::ExitCode::FAILURE;
            }
            if human {
                println!("  wrote {path}");
            }
        }
    }

    if let Some(path) = &json_path {
        if let Err(e) = fac_bench::write_json(path, &campaign.to_json()) {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }

    // A broken resume journal means the run cannot claim durable success.
    if let Some(e) = manifest.as_ref().and_then(Manifest::take_error) {
        eprintln!("error: {e}");
        return std::process::ExitCode::FAILURE;
    }

    let bad = if cc.escape.is_some() {
        // Self-test: the campaign must catch the saboteur. Individual
        // seeds may legitimately stay clean (the wrongly-read location can
        // coincidentally hold the right value), but a campaign with zero
        // divergences means the oracle is blind.
        if !clean.is_empty() && human {
            println!("  no divergence for seeds: {clean:?}");
        }
        failures.is_empty()
    } else {
        // Degraded seeds make the exit nonzero too (as `make -k` does):
        // the artifact is usable, but the campaign did not fully run.
        !failures.is_empty() || !campaign.errors.is_empty()
    };
    if bad {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
