//! The fleet supervisor daemon: N `campaign_server` workers behind one
//! routing endpoint (DESIGN.md §15).
//!
//! ```sh
//! cargo run --release -p fac-bench --bin campaign_supervisor -- \
//!     --listen unix:/tmp/fac-fleet.sock --store-dir /tmp/fac-store \
//!     --run-dir /tmp/fac-fleet --workers 3
//! ```
//!
//! Spawns and owns the workers (one shared store, one Unix socket per
//! worker), routes cells by rendezvous hashing with inline failover,
//! heartbeats every worker, restarts the dead with seeded backoff,
//! quarantines crash-loopers, and replays the dispatch journal so a
//! `kill -9` of any worker loses zero cells. SIGTERM drains the fleet
//! one worker at a time.

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("error: campaign_supervisor needs Unix-domain sockets and kill(2)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    unix::main()
}

#[cfg(unix)]
mod unix {
    use fac_bench::fleet::{Fleet, FleetOptions};
    use fac_bench::serve::server::Shutdown;
    use fac_bench::serve::Endpoint;
    use fac_bench::Args;
    use fac_sim::{ConfigError, SimError};
    use std::io::Write as _;

    fn usage() -> ! {
        eprintln!(
            "usage: campaign_supervisor --listen <tcp:host:port|unix:path> --store-dir <dir> \
             --run-dir <dir>"
        );
        eprintln!("       [--workers N] [--worker-bin <path>] [--heartbeat-ms N] [--miss-budget N]");
        eprintln!("       [--seed N] [--backoff-base-ms N] [--backoff-cap-ms N]");
        eprintln!("       [--quarantine-after N] [--quarantine-window-secs N]");
        eprintln!("       [--request-timeout-secs N] [--scrub-interval-secs N]");
        eprintln!("       [--metrics host:port] [--test-cells]");
        std::process::exit(2);
    }

    const BOOL_FLAGS: &[&str] = &["--test-cells"];
    const VALUE_FLAGS: &[&str] = &[
        "--listen",
        "--store-dir",
        "--run-dir",
        "--workers",
        "--worker-bin",
        "--heartbeat-ms",
        "--miss-budget",
        "--seed",
        "--backoff-base-ms",
        "--backoff-cap-ms",
        "--quarantine-after",
        "--quarantine-window-secs",
        "--request-timeout-secs",
        "--scrub-interval-secs",
        "--metrics",
    ];

    fn or_usage<T>(result: Result<T, SimError>) -> T {
        match result {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        }
    }

    /// A positive-integer flag: zero is rejected with the flag's own name.
    fn positive(args: &Args, flag: &'static str, expected: &'static str) -> Option<u64> {
        match or_usage(args.parse_value::<u64>(flag, expected)) {
            Some(0) => or_usage(Err(ConfigError::BadFlagValue {
                flag: flag.to_string(),
                value: "0".to_string(),
                expected,
            }
            .into())),
            other => other,
        }
    }

    /// Routes SIGTERM and SIGINT to the fleet's rolling-drain flag.
    fn install_signal_handlers(shutdown: Shutdown) {
        use std::sync::OnceLock;
        static DRAIN: OnceLock<Shutdown> = OnceLock::new();
        DRAIN.set(shutdown).ok();
        extern "C" fn on_signal(_signum: i32) {
            if let Some(drain) = DRAIN.get() {
                drain.trigger();
            }
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// The sibling `campaign_server` binary: next to our own executable
    /// unless `--worker-bin` overrides it.
    fn default_worker_bin() -> std::path::PathBuf {
        std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("campaign_server")))
            .unwrap_or_else(|| std::path::PathBuf::from("campaign_server"))
    }

    pub fn main() -> std::process::ExitCode {
        let args = or_usage(Args::parse(BOOL_FLAGS, VALUE_FLAGS));
        or_usage(args.no_positionals(
            "--listen, --store-dir, --run-dir, --workers, --worker-bin, --heartbeat-ms, \
             --miss-budget, --seed, --backoff-base-ms, --backoff-cap-ms, --quarantine-after, \
             --quarantine-window-secs, --request-timeout-secs, --scrub-interval-secs, \
             --metrics, --test-cells",
        ));
        let Some(listen) = args.value("--listen") else { usage() };
        let endpoint = or_usage(Endpoint::parse("--listen", listen));
        let Some(store_dir) = args.value("--store-dir") else { usage() };
        let Some(run_dir) = args.value("--run-dir") else { usage() };

        let worker_bin = args
            .value("--worker-bin")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(default_worker_bin);
        let mut opts = FleetOptions::new(worker_bin, store_dir, run_dir);
        if let Some(n) = positive(&args, "--workers", "a fleet size of at least 1") {
            opts.workers = n as usize;
        }
        if let Some(n) =
            positive(&args, "--heartbeat-ms", "a heartbeat interval in whole milliseconds, at least 1")
        {
            opts.heartbeat_ms = n;
        }
        if let Some(n) =
            positive(&args, "--miss-budget", "consecutive missed heartbeats before a restart, at least 1")
        {
            opts.miss_budget = n as u32;
        }
        if let Some(n) = or_usage(args.parse_value::<u64>("--seed", "a backoff-jitter seed")) {
            opts.seed = n;
        }
        if let Some(n) =
            positive(&args, "--backoff-base-ms", "a first restart delay in whole milliseconds, at least 1")
        {
            opts.backoff_base_ms = n;
        }
        if let Some(n) =
            positive(&args, "--backoff-cap-ms", "a restart delay ceiling in whole milliseconds, at least 1")
        {
            opts.backoff_cap_ms = n;
        }
        if let Some(n) =
            positive(&args, "--quarantine-after", "restarts within the window before quarantine, at least 1")
        {
            opts.quarantine_after = n as u32;
        }
        if let Some(n) = positive(
            &args,
            "--quarantine-window-secs",
            "a crash-loop window in whole seconds, at least 1",
        ) {
            opts.quarantine_window_secs = n;
        }
        if let Some(n) = positive(
            &args,
            "--request-timeout-secs",
            "a forwarded-request deadline in whole seconds, at least 1",
        ) {
            opts.request_timeout_secs = n;
        }
        if let Some(n) = positive(
            &args,
            "--scrub-interval-secs",
            "a store-scrub interval in whole seconds, at least 1",
        ) {
            opts.scrub_interval_secs = n;
        }
        opts.metrics_addr = args.value("--metrics").map(str::to_string);
        opts.test_cells = args.flag("--test-cells");

        let fleet = match Fleet::start(&endpoint, opts) {
            Ok(fleet) => fleet,
            Err(e) => {
                eprintln!("error: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        install_signal_handlers(fleet.shutdown_handle());
        // Announce (and flush) after every worker answered its first
        // ping, so a script that started us can connect immediately.
        println!("campaign supervisor listening on {}", fleet.endpoint());
        if let Some(addr) = fleet.metrics_addr() {
            println!("campaign supervisor metrics on tcp:{addr}");
        }
        std::io::stdout().flush().ok();

        match fleet.run() {
            Ok(()) => {
                println!("campaign supervisor drained the fleet cleanly");
                std::process::ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::ExitCode::FAILURE
            }
        }
    }
}
