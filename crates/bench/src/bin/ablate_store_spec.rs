//! Regenerates ablate_store_spec of the paper's evaluation.
fn main() {
    fac_bench::experiments::ablate_store_spec(fac_bench::scale_from_args());
}
