//! Runs every experiment in paper order, fanned out over one parallel
//! job pool (`--jobs N`; results and output are bit-identical at any
//! worker count).
//!
//! With `--json <path>` (or `--json -` for stdout) the individual experiment
//! documents are bundled into one object keyed by experiment name.

fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::run_all)
}
