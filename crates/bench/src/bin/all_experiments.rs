//! Runs every experiment in paper order.
use fac_bench::experiments as ex;

fn main() {
    let scale = fac_bench::scale_from_args();
    ex::fig2(scale);
    ex::table1(scale);
    ex::table2();
    ex::fig3(scale);
    ex::table3(scale);
    ex::table4(scale);
    ex::table5();
    ex::fig6(scale);
    ex::table6(scale);
    ex::ablate_or_xor(scale);
    ex::ablate_full_tag(scale);
    ex::ablate_store_spec(scale);
    ex::ablate_store_buffer(scale);
    ex::ablate_mshr(scale);
    ex::ablate_array_align(scale);
    ex::ablate_associativity(scale);
    ex::compare_ltb(scale);
    ex::compare_pipelines(scale);
}
