//! Runs every experiment in paper order.
//!
//! With `--json <path>` (or `--json -` for stdout) the individual experiment
//! documents are bundled into one object keyed by experiment name.

use fac_bench::experiments as ex;
use fac_sim::obs::Json;
use fac_sim::SimError;

fn collect(scale: fac_workloads::Scale) -> Result<Json, SimError> {
    let mut doc = Json::obj();
    doc.set("fig2", ex::fig2(scale)?);
    doc.set("table1", ex::table1(scale)?);
    doc.set("table2", ex::table2()?);
    doc.set("fig3", ex::fig3(scale)?);
    doc.set("table3", ex::table3(scale)?);
    doc.set("table4", ex::table4(scale)?);
    doc.set("table5", ex::table5()?);
    doc.set("fig6", ex::fig6(scale)?);
    doc.set("table6", ex::table6(scale)?);
    doc.set("ablate_or_xor", ex::ablate_or_xor(scale)?);
    doc.set("ablate_full_tag", ex::ablate_full_tag(scale)?);
    doc.set("ablate_store_spec", ex::ablate_store_spec(scale)?);
    doc.set("ablate_store_buffer", ex::ablate_store_buffer(scale)?);
    doc.set("ablate_mshr", ex::ablate_mshr(scale)?);
    doc.set("ablate_array_align", ex::ablate_array_align(scale)?);
    doc.set("ablate_associativity", ex::ablate_associativity(scale)?);
    doc.set("compare_ltb", ex::compare_ltb(scale)?);
    doc.set("compare_pipelines", ex::compare_pipelines(scale)?);
    Ok(doc)
}

fn main() -> std::process::ExitCode {
    fac_bench::conclude(collect(fac_bench::scale_from_args()))
}
