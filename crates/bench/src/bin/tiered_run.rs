//! Tiered execution: fast-tier differential check plus sampled timing
//! accuracy against full detail, per workload.
fn main() -> std::process::ExitCode {
    fac_bench::conclude(fac_bench::experiments::tiered_run)
}
