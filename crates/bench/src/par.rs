//! A deterministic parallel job harness for the experiment sweeps.
//!
//! The paper's evaluation is an embarrassingly parallel grid — (machine
//! config × workload) cells that never share mutable state — yet the seed
//! harness ran every cell on one core. [`JobSet`] fans a set of named
//! closures out over `std::thread::scope` workers (std only, no new
//! dependencies) while keeping the three properties a reproducible
//! artifact pipeline needs:
//!
//! 1. **Submission-order results.** `run` returns job results indexed by
//!    submission order no matter which worker finished first, so a JSON
//!    document assembled from them is **bit-identical at any worker
//!    count** (pinned by `crates/bench/tests/parallel.rs`).
//! 2. **Deterministic error precedence.** Every job runs to completion —
//!    a failure never cancels in-flight or pending work mid-simulation —
//!    and the error from the *lowest job index* wins, which is exactly
//!    the error a serial run would have reported first.
//! 3. **Panic containment.** A panicking job is caught at the job
//!    boundary and surfaces as [`SimError::Panic`] carrying the job's
//!    name; the pool is not poisoned and every other job still runs.
//!
//! The `Send` bounds this module leans on are audited at compile time in
//! [`send_audit`]: programs, workloads, machines, observers and reports
//! all cross (or are shared across) the worker threads.

use fac_sim::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: every hardware thread the host offers.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// One named unit of work.
struct Job<'env, T> {
    name: String,
    work: Box<dyn FnOnce() -> Result<T, SimError> + Send + 'env>,
}

/// An ordered set of named jobs, executed across a scoped worker pool.
///
/// ```
/// use fac_bench::par::JobSet;
///
/// let mut jobs = JobSet::new();
/// for i in 0..8u64 {
///     jobs.push(format!("square:{i}"), move || Ok(i * i));
/// }
/// let squares = jobs.run(4).unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct JobSet<'env, T> {
    jobs: Vec<Job<'env, T>>,
}

impl<'env, T: Send> Default for JobSet<'env, T> {
    fn default() -> Self {
        JobSet::new()
    }
}

impl<'env, T: Send> JobSet<'env, T> {
    /// An empty job set.
    pub fn new() -> Self {
        JobSet { jobs: Vec::new() }
    }

    /// Appends a job. The name identifies the job in panic reports.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        work: impl FnOnce() -> Result<T, SimError> + Send + 'env,
    ) {
        self.jobs.push(Job { name: name.into(), work: Box::new(work) });
    }

    /// Moves every job of `other` to the back of this set, preserving
    /// submission order (used to drain many experiments into one pool).
    pub fn append(&mut self, mut other: JobSet<'env, T>) {
        self.jobs.append(&mut other.jobs);
    }

    /// Number of jobs submitted so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job has been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job across `workers` threads and returns the results in
    /// submission order.
    ///
    /// All jobs run to completion even when one fails — a simulation is
    /// never dropped mid-flight — and with `workers == 1` the jobs run on
    /// the calling thread in submission order, byte-for-byte the old
    /// serial harness.
    ///
    /// # Errors
    ///
    /// If any jobs failed, returns the error of the lowest-indexed one
    /// (the same error a serial run reports first, whatever the worker
    /// count or finish order). A panicking job yields [`SimError::Panic`].
    pub fn run(self, workers: usize) -> Result<Vec<T>, SimError> {
        let n = self.jobs.len();
        let workers = workers.max(1).min(n.max(1));
        let results = if workers == 1 {
            self.jobs.into_iter().map(run_one).collect()
        } else {
            run_pooled(self.jobs, workers)
        };
        let mut out = Vec::with_capacity(n);
        for result in results {
            out.push(result?);
        }
        Ok(out)
    }
}

/// Executes one job, converting a panic into a typed error.
fn run_one<T>(job: Job<'_, T>) -> Result<T, SimError> {
    let Job { name, work } = job;
    catch_unwind(AssertUnwindSafe(work)).unwrap_or_else(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Err(SimError::Panic { job: name, message })
    })
}

/// The scoped worker pool: a shared claim cursor hands out jobs in index
/// order; each worker writes its result into the slot matching the job's
/// index, so collection order is submission order by construction.
fn run_pooled<T: Send>(jobs: Vec<Job<'_, T>>, workers: usize) -> Vec<Result<T, SimError>> {
    let n = jobs.len();
    let jobs: Vec<Mutex<Option<Job<'_, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<Result<T, SimError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Claim the job, run it unlocked (a slow simulation must
                // never serialize the pool on a mutex), file the result
                // under the job's own index.
                let job = jobs[i].lock().expect("job slot").take().expect("unclaimed job");
                let result = run_one(job);
                *results[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot").expect("worker pool completed every job")
        })
        .collect()
}

/// Compile-time inventory of the `Send`/`Sync` bounds the harness relies
/// on. Jobs *share* built programs and workload descriptors by reference
/// (`Sync`) and *move* machines, reports and errors between threads
/// (`Send`); an accidental `Rc` or thread-bound sink anywhere in those
/// types would stop this module compiling rather than deadlocking a sweep.
#[allow(dead_code)]
mod send_audit {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    fn audit() {
        // Shared across workers by reference.
        assert_sync::<fac_asm::Program>();
        assert_sync::<fac_workloads::Workload>();
        assert_sync::<crate::Bench>();
        // Created inside (or returned from) jobs and moved to the collector.
        assert_send::<fac_sim::Machine>();
        assert_send::<fac_sim::MachineConfig>();
        assert_send::<fac_sim::SimReport>();
        assert_send::<fac_sim::ProfileReport>();
        assert_send::<fac_sim::SimError>();
        assert_send::<fac_sim::obs::Json>();
        // Observers ride along with observed runs (`Observer: Send` is a
        // supertrait); the Recorder's JSONL sink is `Box<dyn Write + Send>`.
        assert_send::<fac_sim::obs::NullObserver>();
        assert_send::<fac_sim::obs::VecObserver>();
        assert_send::<fac_sim::obs::Recorder>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_sim::obs::Json;
    use std::sync::atomic::AtomicU64;

    /// Results come back in submission order whatever the worker count,
    /// even when later jobs finish first.
    #[test]
    fn results_follow_submission_order() {
        for workers in [1, 2, 3, 8, 64] {
            let mut jobs = JobSet::new();
            for i in 0..37u64 {
                jobs.push(format!("cell:{i}"), move || {
                    // Early jobs sleep longest: finish order inverts
                    // submission order under real parallelism.
                    std::thread::sleep(std::time::Duration::from_micros(2 * (37 - i)));
                    Ok(Json::U64(i))
                });
            }
            let out = jobs.run(workers).unwrap();
            let expect: Vec<Json> = (0..37).map(Json::U64).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    /// The lowest-indexed failure wins, not the first to finish — and
    /// every other job still runs (nothing is dropped mid-simulation).
    #[test]
    fn lowest_index_error_wins_and_all_jobs_drain() {
        for workers in [1, 2, 8] {
            let ran = AtomicU64::new(0);
            let mut jobs = JobSet::new();
            for i in 0..16u64 {
                let ran = &ran;
                jobs.push(format!("job:{i}"), move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 3 || i == 11 {
                        Err(SimError::Runaway(i))
                    } else {
                        Ok(i)
                    }
                });
            }
            let err = jobs.run(workers).unwrap_err();
            assert_eq!(err, SimError::Runaway(3), "workers={workers}");
            assert_eq!(ran.load(Ordering::Relaxed), 16, "workers={workers}: jobs were dropped");
        }
    }

    /// A panicking job becomes a typed `SimError::Panic` naming the job;
    /// the pool is not poisoned — the remaining jobs all complete.
    #[test]
    fn panic_surfaces_as_typed_error_not_poison() {
        for workers in [1, 4] {
            let ran = AtomicU64::new(0);
            let mut jobs = JobSet::new();
            for i in 0..8u64 {
                let ran = &ran;
                jobs.push(format!("job:{i}"), move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 2 {
                        panic!("cell exploded");
                    }
                    Ok(i)
                });
            }
            match jobs.run(workers) {
                Err(SimError::Panic { job, message }) => {
                    assert_eq!(job, "job:2");
                    assert!(message.contains("cell exploded"), "got: {message}");
                }
                other => panic!("expected SimError::Panic, got {other:?}"),
            }
            assert_eq!(ran.load(Ordering::Relaxed), 8, "workers={workers}: pool was poisoned");
        }
    }

    /// An erroring job beats a panicking one at a higher index, and vice
    /// versa — precedence is by index, not failure kind.
    #[test]
    fn error_precedence_ignores_failure_kind() {
        let mut jobs: JobSet<'_, u64> = JobSet::new();
        jobs.push("ok", || Ok(0));
        jobs.push("errs", || Err(SimError::Runaway(1)));
        jobs.push("panics", || panic!("later panic"));
        assert_eq!(jobs.run(8).unwrap_err(), SimError::Runaway(1));

        let mut jobs: JobSet<'_, u64> = JobSet::new();
        jobs.push("panics", || panic!("first panic"));
        jobs.push("errs", || Err(SimError::Runaway(1)));
        assert!(matches!(jobs.run(8).unwrap_err(), SimError::Panic { .. }));
    }

    /// Worker counts above the job count are harmless, as is an empty set.
    #[test]
    fn degenerate_shapes() {
        let empty: JobSet<'_, u64> = JobSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.run(8).unwrap(), Vec::<u64>::new());

        let mut one = JobSet::new();
        one.push("only", || Ok(7u64));
        assert_eq!(one.len(), 1);
        assert_eq!(one.run(64).unwrap(), vec![7]);
    }

    /// `append` preserves submission order across merged sets.
    #[test]
    fn append_preserves_order() {
        let mut a = JobSet::new();
        a.push("a0", || Ok(0u64));
        a.push("a1", || Ok(1u64));
        let mut b = JobSet::new();
        b.push("b0", || Ok(10u64));
        a.append(b);
        assert_eq!(a.run(2).unwrap(), vec![0, 1, 10]);
    }
}
