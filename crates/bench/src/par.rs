//! A deterministic parallel job harness for the experiment sweeps.
//!
//! The paper's evaluation is an embarrassingly parallel grid — (machine
//! config × workload) cells that never share mutable state — yet the seed
//! harness ran every cell on one core. [`JobSet`] fans a set of named
//! closures out over `std::thread::scope` workers (std only, no new
//! dependencies) while keeping the three properties a reproducible
//! artifact pipeline needs:
//!
//! 1. **Submission-order results.** `run` returns job results indexed by
//!    submission order no matter which worker finished first, so a JSON
//!    document assembled from them is **bit-identical at any worker
//!    count** (pinned by `crates/bench/tests/parallel.rs`).
//! 2. **Deterministic error precedence.** Every job runs to completion —
//!    a failure never cancels in-flight or pending work mid-simulation —
//!    and the error from the *lowest job index* wins, which is exactly
//!    the error a serial run would have reported first.
//! 3. **Panic containment.** A panicking job is caught at the job
//!    boundary and surfaces as [`SimError::Panic`] carrying the job's
//!    name; the pool is not poisoned and every other job still runs.
//!
//! On top of those, [`RunOptions`] adds the crash-safety policies of a
//! long campaign:
//!
//! - **Watchdog.** With a deadline set, a job whose wall-clock time
//!   exceeds it is deadlined to [`SimError::Timeout`]. The watchdog is
//!   cooperative — a worker thread cannot be preempted, so the deadline
//!   is enforced when the job returns; a job that never returns at all is
//!   bounded by the simulator's own instruction budget.
//! - **Retry.** Transient failures (timeouts, I/O) are retried up to a
//!   bound with deterministic exponential backoff — no clocks or RNG in
//!   the schedule, so retried runs stay reproducible. Deterministic
//!   failures (panics, simulation errors) are never retried: they would
//!   fail identically again.
//! - **Graceful degradation.** [`JobSet::run_each`] reports every job's
//!   individual outcome; [`strict`] collapses them with the classic
//!   lowest-index error precedence, while [`degrade`] renders failures as
//!   `null` lanes plus an error summary so one bad cell no longer sinks a
//!   whole campaign (`--keep-going`).
//! - **Resume.** [`JobSet::run_cached`] consults a durable
//!   [`crate::manifest::Manifest`]: finished jobs are skipped and their
//!   journaled results re-merged in submission order, so an interrupted
//!   campaign resumes byte-identically.
//!
//! The `Send` bounds this module leans on are audited at compile time in
//! [`send_audit`]: programs, workloads, machines, observers and reports
//! all cross (or are shared across) the worker threads.

use crate::manifest::Manifest;
use crate::telemetry::Hist;
use fac_sim::obs::Json;
use fac_sim::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Robustness policy for one [`JobSet`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Per-job wall-clock deadline in seconds. A job that takes longer is
    /// deadlined to [`SimError::Timeout`] (its result, if any, is
    /// discarded — a cell that blew its budget must not be silently
    /// accepted). `None` disables the watchdog.
    pub timeout_secs: Option<u64>,
    /// How many times a transiently-failed job (timeout or I/O error) is
    /// re-run before its error stands. Zero retries nothing.
    pub retries: u32,
    /// Render failed cells as degraded artifact lanes instead of aborting
    /// the campaign on the first error (`--keep-going`).
    pub keep_going: bool,
}

/// Whether an error class is worth retrying: only failures that can
/// plausibly differ on a second attempt. Panics, simulation errors and
/// checkpoint rejections are deterministic and would fail identically.
fn transient(e: &SimError) -> bool {
    matches!(e, SimError::Timeout { .. } | SimError::Io { .. })
}

/// Deterministic exponential backoff: 50 ms doubling per attempt, capped
/// at 1.6 s. No jitter — retried campaigns must stay reproducible.
fn backoff_delay(attempt: u32) -> Duration {
    Duration::from_millis(50u64 << attempt.min(5))
}

/// One job's labelled outcome: `(name, result)` as returned by
/// [`JobSet::run_each`] and consumed by [`strict`] / [`degrade`].
pub type Outcome<T> = (String, Result<T, SimError>);

/// The default worker count: every hardware thread the host offers.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// One named unit of work. `Fn` rather than `FnOnce`: the retry policy
/// must be able to run a job again after a transient failure.
struct Job<'env, T> {
    name: String,
    work: Box<dyn Fn() -> Result<T, SimError> + Send + 'env>,
}

/// An ordered set of named jobs, executed across a scoped worker pool.
///
/// ```
/// use fac_bench::par::JobSet;
///
/// let mut jobs = JobSet::new();
/// for i in 0..8u64 {
///     jobs.push(format!("square:{i}"), move || Ok(i * i));
/// }
/// let squares = jobs.run(4).unwrap();
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct JobSet<'env, T> {
    jobs: Vec<Job<'env, T>>,
}

impl<'env, T: Send> Default for JobSet<'env, T> {
    fn default() -> Self {
        JobSet::new()
    }
}

impl<'env, T: Send> JobSet<'env, T> {
    /// An empty job set.
    pub fn new() -> Self {
        JobSet { jobs: Vec::new() }
    }

    /// Appends a job. The name identifies the job in panic and timeout
    /// reports and keys the resume manifest.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        work: impl Fn() -> Result<T, SimError> + Send + 'env,
    ) {
        self.jobs.push(Job { name: name.into(), work: Box::new(work) });
    }

    /// Moves every job of `other` to the back of this set, preserving
    /// submission order (used to drain many experiments into one pool).
    pub fn append(&mut self, mut other: JobSet<'env, T>) {
        self.jobs.append(&mut other.jobs);
    }

    /// Number of jobs submitted so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job has been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job across `workers` threads and returns the results in
    /// submission order.
    ///
    /// All jobs run to completion even when one fails — a simulation is
    /// never dropped mid-flight — and with `workers == 1` the jobs run on
    /// the calling thread in submission order, byte-for-byte the old
    /// serial harness.
    ///
    /// # Errors
    ///
    /// If any jobs failed, returns the error of the lowest-indexed one
    /// (the same error a serial run reports first, whatever the worker
    /// count or finish order). A panicking job yields [`SimError::Panic`].
    pub fn run(self, workers: usize) -> Result<Vec<T>, SimError> {
        strict(self.run_each(workers, &RunOptions::default()))
    }

    /// Runs every job under `opts` and returns each job's individual
    /// `(name, outcome)` in submission order — nothing is collapsed, so
    /// the caller chooses between [`strict`] failure and [`degrade`]d
    /// artifacts.
    pub fn run_each(self, workers: usize, opts: &RunOptions) -> Vec<Outcome<T>> {
        run_engine(self.jobs, workers, opts, &|_, _, _| {})
    }

    /// [`JobSet::run_each`] plus a latency histogram: each job's
    /// wall-clock milliseconds (including any retries and backoff) land in
    /// a merged [`Hist`], so a sweep can report `cell_wall_ms` percentiles
    /// without threading timing through every result type. The histogram
    /// is a side channel — the outcomes themselves are byte-identical to
    /// `run_each`, so timing stays out of deterministic artifacts unless a
    /// caller explicitly exports it (`--timings`).
    pub fn run_each_timed(self, workers: usize, opts: &RunOptions) -> (Vec<Outcome<T>>, Hist) {
        let hist = Mutex::new(Hist::new());
        let record = |_: &str, _: &Result<T, SimError>, elapsed: Duration| {
            hist.lock().expect("timing hist").record(elapsed.as_millis() as u64);
        };
        let out = run_engine(self.jobs, workers, opts, &record);
        (out, hist.into_inner().expect("timing hist"))
    }
}

impl<'env> JobSet<'env, Json> {
    /// [`JobSet::run_each`] backed by a durable campaign [`Manifest`]:
    /// jobs already journaled are skipped and their cached results merged
    /// back in submission order; fresh successes are journaled the moment
    /// they complete. With `manifest == None` this is `run_each`.
    pub fn run_cached(
        self,
        workers: usize,
        opts: &RunOptions,
        manifest: Option<&Manifest>,
    ) -> Vec<Outcome<Json>> {
        self.run_cached_timed(workers, opts, manifest).0
    }

    /// [`JobSet::run_cached`] plus the wall-clock [`Hist`] of
    /// [`JobSet::run_each_timed`]. Only cells that actually executed are
    /// timed — manifest-cached cells cost no simulation and would drown
    /// the distribution in near-zero samples.
    pub fn run_cached_timed(
        self,
        workers: usize,
        opts: &RunOptions,
        manifest: Option<&Manifest>,
    ) -> (Vec<Outcome<Json>>, Hist) {
        let n = self.jobs.len();
        let mut out: Vec<Option<Outcome<Json>>> = (0..n).map(|_| None).collect();
        let mut live = Vec::new();
        let mut live_slots = Vec::new();
        for (i, job) in self.jobs.into_iter().enumerate() {
            match manifest.and_then(|m| m.lookup(&job.name)) {
                Some(cached) => out[i] = Some((job.name, Ok(cached))),
                None => {
                    live_slots.push(i);
                    live.push(job);
                }
            }
        }
        let hist = Mutex::new(Hist::new());
        let journal = |name: &str, result: &Result<Json, SimError>, elapsed: Duration| {
            if let (Some(m), Ok(value)) = (manifest, result) {
                m.record(name, value);
            }
            hist.lock().expect("timing hist").record(elapsed.as_millis() as u64);
        };
        let fresh = run_engine(live, workers, opts, &journal);
        for (slot, result) in live_slots.into_iter().zip(fresh) {
            out[slot] = Some(result);
        }
        let out =
            out.into_iter().map(|slot| slot.expect("every slot filled")).collect::<Vec<_>>();
        (out, hist.into_inner().expect("timing hist"))
    }
}

/// Collapses per-job outcomes with the classic precedence: the error of
/// the lowest-indexed failed job wins (exactly what a serial run would
/// have reported first), otherwise all results in submission order.
///
/// # Errors
///
/// The lowest-indexed job failure, verbatim.
pub fn strict<T>(results: Vec<Outcome<T>>) -> Result<Vec<T>, SimError> {
    let mut out = Vec::with_capacity(results.len());
    for (_, result) in results {
        out.push(result?);
    }
    Ok(out)
}

/// Renders per-job outcomes as degraded artifact lanes: a failed job
/// becomes a `null` lane plus a `(job, error)` entry for the artifact's
/// error summary block. The lane vector keeps submission order and
/// length, so downstream table/figure assembly is position-stable.
pub fn degrade(results: Vec<Outcome<Json>>) -> (Vec<Json>, Vec<(String, SimError)>) {
    let mut lanes = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for (name, result) in results {
        match result {
            Ok(value) => lanes.push(value),
            Err(e) => {
                lanes.push(Json::Null);
                errors.push((name, e));
            }
        }
    }
    (lanes, errors)
}

/// Renders an error summary block for a degraded artifact: an array of
/// `{"job": ..., "error": ...}` objects in submission order.
pub fn errors_json(errors: &[(String, SimError)]) -> Json {
    Json::Arr(
        errors
            .iter()
            .map(|(job, e)| {
                let mut entry = Json::obj();
                entry.set("job", Json::Str(job.clone()));
                entry.set("error", Json::Str(e.to_string()));
                entry
            })
            .collect(),
    )
}

/// Per-job completion callback: job name, outcome, wall-clock spent.
type OnDone<'a, T> = &'a (dyn Fn(&str, &Result<T, SimError>, Duration) + Sync);

/// The engine: serial fast path or scoped worker pool, with the watchdog
/// and retry policy applied per job and `on_done` invoked (from the
/// executing worker, the moment the outcome is known) for journaling.
fn run_engine<'env, T: Send>(
    jobs: Vec<Job<'env, T>>,
    workers: usize,
    opts: &RunOptions,
    on_done: OnDone<'_, T>,
) -> Vec<Outcome<T>> {
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return jobs
            .into_iter()
            .map(|job| {
                let start = Instant::now();
                let result = run_with_policy(&job, opts);
                on_done(&job.name, &result, start.elapsed());
                (job.name, result)
            })
            .collect();
    }

    let jobs: Vec<Mutex<Option<Job<'env, T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<Outcome<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Claim the job, run it unlocked (a slow simulation must
                // never serialize the pool on a mutex), file the result
                // under the job's own index.
                let job = jobs[i].lock().expect("job slot").take().expect("unclaimed job");
                let start = Instant::now();
                let result = run_with_policy(&job, opts);
                on_done(&job.name, &result, start.elapsed());
                *results[i].lock().expect("result slot") = Some((job.name, result));
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot").expect("pool completed every job"))
        .collect()
}

/// Runs one job under the watchdog + retry policy.
fn run_with_policy<T>(job: &Job<'_, T>, opts: &RunOptions) -> Result<T, SimError> {
    let mut attempt = 0u32;
    loop {
        let result = run_once(job, opts);
        match result {
            Err(e) if transient(&e) && attempt < opts.retries => {
                std::thread::sleep(backoff_delay(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Executes one job attempt: panic containment plus the wall-clock
/// deadline check.
fn run_once<T>(job: &Job<'_, T>, opts: &RunOptions) -> Result<T, SimError> {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(&job.work)).unwrap_or_else(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Err(SimError::Panic { job: job.name.clone(), message })
    });
    if let Some(secs) = opts.timeout_secs {
        // An overrun with a successful result is still deadlined: a cell
        // that blew its wall-clock budget must be flagged (and retried),
        // never silently accepted. A failed result keeps its own, more
        // specific error.
        if result.is_ok() && start.elapsed() >= Duration::from_secs(secs) {
            return Err(SimError::Timeout { job: job.name.clone(), secs });
        }
    }
    result
}

/// Compile-time inventory of the `Send`/`Sync` bounds the harness relies
/// on. Jobs *share* built programs and workload descriptors by reference
/// (`Sync`) and *move* machines, reports and errors between threads
/// (`Send`); an accidental `Rc` or thread-bound sink anywhere in those
/// types would stop this module compiling rather than deadlocking a sweep.
#[allow(dead_code)]
mod send_audit {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    fn audit() {
        // Shared across workers by reference.
        assert_sync::<fac_asm::Program>();
        assert_sync::<fac_workloads::Workload>();
        assert_sync::<crate::Bench>();
        // Created inside (or returned from) jobs and moved to the collector.
        assert_send::<fac_sim::Machine>();
        assert_send::<fac_sim::MachineConfig>();
        assert_send::<fac_sim::SimReport>();
        assert_send::<fac_sim::ProfileReport>();
        assert_send::<fac_sim::SimError>();
        assert_send::<fac_sim::obs::Json>();
        // Observers ride along with observed runs (`Observer: Send` is a
        // supertrait); the Recorder's JSONL sink is `Box<dyn Write + Send>`.
        assert_send::<fac_sim::obs::NullObserver>();
        assert_send::<fac_sim::obs::VecObserver>();
        assert_send::<fac_sim::obs::Recorder>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fac_sim::obs::Json;
    use std::sync::atomic::AtomicU64;

    /// Results come back in submission order whatever the worker count,
    /// even when later jobs finish first.
    #[test]
    fn results_follow_submission_order() {
        for workers in [1, 2, 3, 8, 64] {
            let mut jobs = JobSet::new();
            for i in 0..37u64 {
                jobs.push(format!("cell:{i}"), move || {
                    // Early jobs sleep longest: finish order inverts
                    // submission order under real parallelism.
                    std::thread::sleep(std::time::Duration::from_micros(2 * (37 - i)));
                    Ok(Json::U64(i))
                });
            }
            let out = jobs.run(workers).unwrap();
            let expect: Vec<Json> = (0..37).map(Json::U64).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    /// The lowest-indexed failure wins, not the first to finish — and
    /// every other job still runs (nothing is dropped mid-simulation).
    #[test]
    fn lowest_index_error_wins_and_all_jobs_drain() {
        for workers in [1, 2, 8] {
            let ran = AtomicU64::new(0);
            let mut jobs = JobSet::new();
            for i in 0..16u64 {
                let ran = &ran;
                jobs.push(format!("job:{i}"), move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 3 || i == 11 {
                        Err(SimError::Runaway(i))
                    } else {
                        Ok(i)
                    }
                });
            }
            let err = jobs.run(workers).unwrap_err();
            assert_eq!(err, SimError::Runaway(3), "workers={workers}");
            assert_eq!(ran.load(Ordering::Relaxed), 16, "workers={workers}: jobs were dropped");
        }
    }

    /// A panicking job becomes a typed `SimError::Panic` naming the job;
    /// the pool is not poisoned — the remaining jobs all complete.
    #[test]
    fn panic_surfaces_as_typed_error_not_poison() {
        for workers in [1, 4] {
            let ran = AtomicU64::new(0);
            let mut jobs = JobSet::new();
            for i in 0..8u64 {
                let ran = &ran;
                jobs.push(format!("job:{i}"), move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 2 {
                        panic!("cell exploded");
                    }
                    Ok(i)
                });
            }
            match jobs.run(workers) {
                Err(SimError::Panic { job, message }) => {
                    assert_eq!(job, "job:2");
                    assert!(message.contains("cell exploded"), "got: {message}");
                }
                other => panic!("expected SimError::Panic, got {other:?}"),
            }
            assert_eq!(ran.load(Ordering::Relaxed), 8, "workers={workers}: pool was poisoned");
        }
    }

    /// An erroring job beats a panicking one at a higher index, and vice
    /// versa — precedence is by index, not failure kind.
    #[test]
    fn error_precedence_ignores_failure_kind() {
        let mut jobs: JobSet<'_, u64> = JobSet::new();
        jobs.push("ok", || Ok(0));
        jobs.push("errs", || Err(SimError::Runaway(1)));
        jobs.push("panics", || panic!("later panic"));
        assert_eq!(jobs.run(8).unwrap_err(), SimError::Runaway(1));

        let mut jobs: JobSet<'_, u64> = JobSet::new();
        jobs.push("panics", || panic!("first panic"));
        jobs.push("errs", || Err(SimError::Runaway(1)));
        assert!(matches!(jobs.run(8).unwrap_err(), SimError::Panic { .. }));
    }

    /// Worker counts above the job count are harmless, as is an empty set.
    #[test]
    fn degenerate_shapes() {
        let empty: JobSet<'_, u64> = JobSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.run(8).unwrap(), Vec::<u64>::new());

        let mut one = JobSet::new();
        one.push("only", || Ok(7u64));
        assert_eq!(one.len(), 1);
        assert_eq!(one.run(64).unwrap(), vec![7]);
    }

    /// `append` preserves submission order across merged sets.
    #[test]
    fn append_preserves_order() {
        let mut a = JobSet::new();
        a.push("a0", || Ok(0u64));
        a.push("a1", || Ok(1u64));
        let mut b = JobSet::new();
        b.push("b0", || Ok(10u64));
        a.append(b);
        assert_eq!(a.run(2).unwrap(), vec![0, 1, 10]);
    }

    /// The watchdog deadlines a job that returns Ok past its budget — the
    /// result is discarded, not silently accepted.
    #[test]
    fn watchdog_deadlines_overrunning_jobs() {
        let mut jobs = JobSet::new();
        jobs.push("fast", || Ok(1u64));
        jobs.push("slow", || {
            std::thread::sleep(Duration::from_millis(1100));
            Ok(2u64)
        });
        let opts = RunOptions { timeout_secs: Some(1), ..RunOptions::default() };
        let out = jobs.run_each(1, &opts);
        assert_eq!(out[0].1, Ok(1));
        match &out[1].1 {
            Err(SimError::Timeout { job, secs }) => {
                assert_eq!(job, "slow");
                assert_eq!(*secs, 1);
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    /// A transient failure is retried up to the bound and the eventual
    /// success stands; with too few retries the transient error stands.
    #[test]
    fn transient_failures_are_retried() {
        let attempts = AtomicU64::new(0);
        let mut jobs = JobSet::new();
        jobs.push("flaky", || {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(SimError::Io { path: "net".to_string(), message: "transient".to_string() })
            } else {
                Ok(7u64)
            }
        });
        let opts = RunOptions { retries: 2, ..RunOptions::default() };
        assert_eq!(jobs.run_each(1, &opts)[0].1, Ok(7));
        assert_eq!(attempts.load(Ordering::Relaxed), 3);

        let attempts = AtomicU64::new(0);
        let mut jobs = JobSet::new();
        jobs.push("flaky", || {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(SimError::Io { path: "net".to_string(), message: "transient".to_string() })
            } else {
                Ok(7u64)
            }
        });
        let opts = RunOptions { retries: 1, ..RunOptions::default() };
        assert!(matches!(jobs.run_each(1, &opts)[0].1, Err(SimError::Io { .. })));
        assert_eq!(attempts.load(Ordering::Relaxed), 2, "retries must stop at the bound");
    }

    /// Deterministic failures (simulation errors, panics) are never
    /// retried — they would fail identically again.
    #[test]
    fn deterministic_failures_are_not_retried() {
        let attempts = AtomicU64::new(0);
        let mut jobs: JobSet<'_, u64> = JobSet::new();
        jobs.push("doomed", || {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(SimError::Runaway(9))
        });
        let opts = RunOptions { retries: 5, ..RunOptions::default() };
        assert_eq!(jobs.run_each(1, &opts)[0].1, Err(SimError::Runaway(9)));
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
    }

    /// The backoff schedule is a pure function of the attempt number:
    /// doubling from 50 ms, capped at 1.6 s.
    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        assert_eq!(backoff_delay(0), Duration::from_millis(50));
        assert_eq!(backoff_delay(1), Duration::from_millis(100));
        assert_eq!(backoff_delay(4), Duration::from_millis(800));
        assert_eq!(backoff_delay(5), Duration::from_millis(1600));
        for attempt in 6..100 {
            assert_eq!(backoff_delay(attempt), Duration::from_millis(1600));
        }
    }

    /// `degrade` keeps lanes position-stable (`null` where a job failed)
    /// and collects the errors for the artifact summary block.
    #[test]
    fn degrade_keeps_lanes_and_collects_errors() {
        for workers in [1, 4] {
            let mut jobs = JobSet::new();
            for i in 0..6u64 {
                jobs.push(format!("cell:{i}"), move || {
                    if i % 2 == 1 {
                        Err(SimError::Runaway(i))
                    } else {
                        Ok(Json::U64(i))
                    }
                });
            }
            let (lanes, errors) = degrade(jobs.run_each(workers, &RunOptions::default()));
            assert_eq!(lanes, vec![
                Json::U64(0),
                Json::Null,
                Json::U64(2),
                Json::Null,
                Json::U64(4),
                Json::Null,
            ]);
            let summary = errors_json(&errors).to_string();
            assert_eq!(
                summary,
                r#"[{"job":"cell:1","error":"no halt within 1 instructions"},{"job":"cell:3","error":"no halt within 3 instructions"},{"job":"cell:5","error":"no halt within 5 instructions"}]"#,
                "workers={workers}"
            );
        }
    }

    /// Timed runs record one wall-clock sample per executed job — and the
    /// outcomes themselves are identical to the untimed path, so timing
    /// can never leak into a deterministic artifact.
    #[test]
    fn timed_runs_sample_every_executed_job() {
        for workers in [1, 4] {
            let mut jobs = JobSet::new();
            for i in 0..9u64 {
                jobs.push(format!("cell:{i}"), move || {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(Json::U64(i))
                });
            }
            let (out, hist) = jobs.run_each_timed(workers, &RunOptions::default());
            assert_eq!(strict(out).unwrap(), (0..9).map(Json::U64).collect::<Vec<_>>());
            assert_eq!(hist.count(), 9, "workers={workers}");
            assert!(hist.min().unwrap() >= 1, "jobs slept 2ms, min {:?}", hist.min());
        }

        // Manifest-cached cells are not timed: only live execution counts.
        let dir = std::env::temp_dir().join(format!("fac_par_timed_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let build = || {
            let mut jobs = JobSet::new();
            for i in 0..4u64 {
                jobs.push(format!("cell:{i}"), move || Ok(Json::U64(i)));
            }
            jobs
        };
        let m = Manifest::open(&dir).unwrap();
        let (_, first) = build().run_cached_timed(2, &RunOptions::default(), Some(&m));
        assert_eq!(first.count(), 4);
        drop(m);
        let m = Manifest::open(&dir).unwrap();
        let (out, second) = build().run_cached_timed(2, &RunOptions::default(), Some(&m));
        assert_eq!(strict(out).unwrap().len(), 4);
        assert_eq!(second.count(), 0, "cached cells must not be timed");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `run_cached` journals fresh results, skips journaled jobs on the
    /// next run, and merges cached and live results in submission order.
    #[test]
    fn run_cached_skips_journaled_jobs_and_merges_in_order() {
        let dir = std::env::temp_dir()
            .join(format!("fac_par_cached_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let executed = AtomicU64::new(0);
        let build = |upto: u64| {
            let mut jobs = JobSet::new();
            for i in 0..upto {
                let executed = &executed;
                jobs.push(format!("cell:{i}"), move || {
                    executed.fetch_add(1, Ordering::Relaxed);
                    Ok(Json::U64(i * i))
                });
            }
            jobs
        };

        // First run: half the campaign, all executed, all journaled.
        let m = Manifest::open(&dir).unwrap();
        let first = strict(build(3).run_cached(2, &RunOptions::default(), Some(&m))).unwrap();
        assert_eq!(first, vec![Json::U64(0), Json::U64(1), Json::U64(4)]);
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert!(m.take_error().is_none());
        drop(m);

        // Resumed run: the full campaign. Journaled cells are not re-run,
        // yet the merged results are the complete set in submission order.
        let m = Manifest::open(&dir).unwrap();
        assert_eq!(m.len(), 3);
        let second = strict(build(5).run_cached(2, &RunOptions::default(), Some(&m))).unwrap();
        assert_eq!(
            second,
            (0..5u64).map(|i| Json::U64(i * i)).collect::<Vec<_>>()
        );
        assert_eq!(executed.load(Ordering::Relaxed), 3 + 2, "cached cells must not re-run");
        std::fs::remove_dir_all(&dir).ok();
    }
}
