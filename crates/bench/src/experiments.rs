//! The experiment implementations, one per paper table/figure.
//!
//! Every experiment is a [`Spec`]: a set of named (config × workload)
//! jobs for the [`crate::par`] harness plus a pure render step that turns
//! the job results — in submission order — into the human table and the
//! JSON document ([`crate::Exp`]). Because rendering never looks at
//! anything but the ordered results, both output lanes are bit-identical
//! at any `--jobs` count, and `all_experiments` can merge every
//! experiment's jobs into **one** pool ([`run_specs`]) so a slow table
//! never leaves workers idle. Simulation failures propagate as typed
//! [`SimError`]s instead of panicking; a panic inside a job surfaces as
//! [`SimError::Panic`] naming the job.

use crate::par::JobSet;
use crate::{
    build_suite, pct, pct_change, pct_change_json, profile, rule, run, weighted_mean, Bench, Cx,
    Exp,
};
use fac_core::{IndexCompose, PredictorConfig};
use fac_sim::obs::Json;
use fac_sim::{MachineConfig, RefClass, SimError};
use fac_workloads::Scale;

/// Appends a line (or a blank line) to a table buffer, `println!`-style.
macro_rules! say {
    ($out:expr) => {
        $out.push('\n')
    };
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out, $($arg)*);
    }};
}

/// Appends a partial line to a table buffer, `print!`-style.
macro_rules! put {
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = write!($out, $($arg)*);
    }};
}

fn doc(experiment: &str, rows: Vec<Json>) -> Json {
    let mut d = Json::obj();
    d.set("experiment", Json::Str(experiment.to_string()));
    d.set("rows", Json::Arr(rows));
    d
}

fn row(program: &str) -> Json {
    let mut r = Json::obj();
    r.set("program", Json::Str(program.to_string()));
    r
}

// ---------------------------------------------------------------------------
// Job-result envelopes
//
// Each job returns one `Json` cell: the artifact row under "row", the
// rendered table line under "human", and whatever render-side extras the
// artifact doesn't carry (weights for the paper's cycle-weighted averages,
// the int/fp grouping flag). The render step unwraps the envelope; the
// exported document only ever contains the rows.
// ---------------------------------------------------------------------------

fn cell(human: String, row: Json) -> Json {
    let mut c = Json::obj();
    c.set("human", Json::Str(human));
    c.set("row", row);
    c
}

fn take_human(c: &mut Json) -> String {
    match c.take("human") {
        Some(Json::Str(s)) => s,
        _ => String::new(),
    }
}

fn take_row(c: &mut Json) -> Json {
    c.take("row").unwrap_or_else(Json::obj)
}

fn cell_bool(c: &Json, key: &str) -> bool {
    matches!(c.get(key), Some(Json::Bool(true)))
}

fn cell_u64(c: &Json, key: &str) -> u64 {
    c.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn cell_f64(c: &Json, key: &str) -> f64 {
    c.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn cell_str<'c>(c: &'c Json, key: &str) -> &'c str {
    c.get(key).and_then(Json::as_str).unwrap_or("")
}

fn cell_vals(c: &Json, key: &str) -> Vec<f64> {
    match c.get(key) {
        Some(Json::Arr(a)) => a.iter().filter_map(Json::as_f64).collect(),
        _ => Vec::new(),
    }
}

fn f64_arr(vals: &[f64]) -> Json {
    Json::Arr(vals.iter().map(|v| Json::F64(*v)).collect())
}

/// One planned experiment: its name (the key in the `all_experiments`
/// bundle), its job grid, and the pure render step.
pub struct Spec<'a> {
    /// The experiment name (`"fig2"`, `"table3"`, …).
    pub name: &'static str,
    jobs: JobSet<'a, Json>,
    render: Box<dyn FnOnce(Vec<Json>) -> Exp + 'a>,
}

impl<'a> Spec<'a> {
    fn new(
        name: &'static str,
        jobs: JobSet<'a, Json>,
        render: impl FnOnce(Vec<Json>) -> Exp + 'a,
    ) -> Spec<'a> {
        Spec { name, jobs, render: Box::new(render) }
    }

    /// Runs the experiment's grid under the context's worker count and
    /// robustness policy (resume manifest included) and renders.
    ///
    /// # Errors
    ///
    /// The lowest-indexed job failure, per [`crate::par::strict`].
    pub fn run(self, cx: &Cx) -> Result<Exp, SimError> {
        let cells = crate::par::strict(self.jobs.run_cached(cx.jobs, &cx.opts, cx.manifest))?;
        Ok((self.render)(cells))
    }
}

/// The shape every experiment's spec builder shares.
pub type SpecFn = for<'a> fn(&'a [Bench], Scale) -> Spec<'a>;

/// Every experiment, in paper order (the order `all_experiments` prints
/// and bundles them).
pub const ALL: &[SpecFn] = &[
    spec_fig2,
    spec_table1,
    spec_table2,
    spec_fig3,
    spec_table3,
    spec_table4,
    spec_table5,
    spec_fig6,
    spec_table6,
    spec_ablate_or_xor,
    spec_ablate_full_tag,
    spec_ablate_store_spec,
    spec_ablate_store_buffer,
    spec_ablate_mshr,
    spec_ablate_array_align,
    spec_ablate_associativity,
    spec_compare_ltb,
    spec_compare_pipelines,
    spec_tiered_run,
];

/// Runs many specs over **one** merged job pool and renders each, in
/// order. Merging matters: with per-experiment pools the tail of each
/// experiment would leave `workers - 1` threads idle 18 times per sweep.
///
/// # Errors
///
/// The lowest-indexed job failure across the merged pool.
pub fn run_specs(specs: Vec<Spec<'_>>, cx: &Cx) -> Result<Vec<Exp>, SimError> {
    let mut pool = JobSet::new();
    let mut tails = Vec::new();
    for spec in specs {
        tails.push((spec.render, spec.jobs.len()));
        pool.append(spec.jobs);
    }
    let results = crate::par::strict(pool.run_cached(cx.jobs, &cx.opts, cx.manifest))?;
    let mut results = results.into_iter();
    Ok(tails.into_iter().map(|(render, n)| render(results.by_ref().take(n).collect())).collect())
}

/// The whole evaluation — every experiment of [`ALL`] over one job pool,
/// bundled into one table stream and one JSON object keyed by experiment
/// name.
///
/// Under `--keep-going` a failed experiment degrades instead of sinking
/// the sweep: its key carries `null`, its table slot a one-line notice,
/// and the bundle gains an `errors` block naming every failed job —
/// experiments whose cells all succeeded render exactly as they would
/// have in a clean run.
///
/// # Errors
///
/// The lowest-indexed job failure across the merged pool (strict mode
/// only; `--keep-going` reports failures in the artifact instead).
pub fn run_all(cx: &Cx) -> Result<Exp, SimError> {
    let suite = build_suite(cx.scale);
    let specs: Vec<Spec<'_>> = ALL.iter().map(|f| f(&suite, cx.scale)).collect();
    let mut pool = JobSet::new();
    let mut tails = Vec::new();
    for spec in specs {
        tails.push((spec.name, spec.render, spec.jobs.len()));
        pool.append(spec.jobs);
    }
    let results = pool.run_cached(cx.jobs, &cx.opts, cx.manifest);

    if !cx.opts.keep_going {
        let mut cells = crate::par::strict(results)?.into_iter();
        let mut human = String::new();
        let mut json = Json::obj();
        for (name, render, n) in tails {
            let exp = render(cells.by_ref().take(n).collect());
            human.push_str(&exp.human);
            json.set(name, exp.json);
        }
        return Ok(Exp { human, json });
    }

    // Keep-going: degrade at whole-experiment granularity. Render steps
    // index into their cell grids, so one failed cell voids its
    // experiment's document — never the other experiments'.
    let mut results = results.into_iter();
    let mut human = String::new();
    let mut json = Json::obj();
    let mut all_errors = Vec::new();
    for (name, render, n) in tails {
        let chunk: Vec<_> = results.by_ref().take(n).collect();
        let (lanes, errors) = crate::par::degrade(chunk);
        if errors.is_empty() {
            let exp = render(lanes);
            human.push_str(&exp.human);
            json.set(name, exp.json);
        } else {
            human.push_str(&degraded_note(name, &errors, n));
            json.set(name, Json::Null);
            all_errors.extend(errors);
        }
    }
    if !all_errors.is_empty() {
        json.set("errors", crate::par::errors_json(&all_errors));
    }
    Ok(Exp { human, json })
}

/// The one-line table notice for a degraded experiment.
fn degraded_note(name: &str, errors: &[(String, SimError)], cells: usize) -> String {
    let (job, first) = &errors[0];
    format!(
        "[{name}] degraded: {} of {cells} cells failed; first: {job}: {first}\n\n",
        errors.len()
    )
}

fn single(spec: SpecFn, cx: &Cx) -> Result<Exp, SimError> {
    let suite = build_suite(cx.scale);
    let s = spec(&suite, cx.scale);
    let name = s.name;
    let n = s.jobs.len();
    let results = s.jobs.run_cached(cx.jobs, &cx.opts, cx.manifest);
    if !cx.opts.keep_going {
        return Ok((s.render)(crate::par::strict(results)?));
    }
    let (lanes, errors) = crate::par::degrade(results);
    if errors.is_empty() {
        return Ok((s.render)(lanes));
    }
    let mut json = Json::obj();
    json.set(name, Json::Null);
    json.set("errors", crate::par::errors_json(&errors));
    Ok(Exp { human: degraded_note(name, &errors, n), json })
}

/// Figure 2: IPC with 2-cycle loads (baseline), 1-cycle loads, perfect
/// cache, and 1-cycle + perfect.
pub fn fig2(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_fig2, cx)
}

fn spec_fig2<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    const COLS: [&str; 4] = ["baseline", "one_cycle", "perfect", "one_cycle_perfect"];
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("fig2:{}", b.workload.name), move || {
            let configs = [
                MachineConfig::paper_baseline(),
                MachineConfig::paper_baseline().with_one_cycle_loads(),
                MachineConfig::paper_baseline().with_perfect_dcache(),
                MachineConfig::paper_baseline().with_one_cycle_loads().with_perfect_dcache(),
            ];
            let mut ipc = [0.0; 4];
            let mut weight = 0;
            for (i, cfg) in configs.iter().enumerate() {
                let r = run(&b.plain, *cfg)?;
                ipc[i] = r.stats.ipc();
                if i == 0 {
                    weight = r.stats.cycles;
                }
            }
            let human = format!(
                "{:10} {:>9.2} {:>13.2} {:>13.2} {:>15.2}",
                b.workload.name, ipc[0], ipc[1], ipc[2], ipc[3]
            );
            let mut j = row(b.workload.name);
            for (name, v) in COLS.iter().zip(ipc) {
                j.set(&format!("ipc.{name}"), Json::F64(v));
            }
            let mut c = cell(human, j);
            c.set("fp", Json::Bool(b.workload.fp));
            c.set("weight", Json::U64(weight));
            c.set("vals", f64_arr(&ipc));
            Ok(c)
        });
    }
    Spec::new("fig2", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Figure 2: Impact of Load Latency on IPC ==");
        say!(
            out,
            "{:10} {:>9} {:>13} {:>13} {:>15}",
            "program",
            "baseline",
            "1-cyc loads",
            "perfect $",
            "1-cyc+perfect"
        );
        say!(out, "{}", rule(64));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        say!(out, "{}", rule(64));
        let mut d = doc("fig2", rows);
        for (label, key, fp) in [("Int-Avg", "int_avg", false), ("FP-Avg", "fp_avg", true)] {
            let group: Vec<&Json> = cells.iter().filter(|c| cell_bool(c, "fp") == fp).collect();
            let weights: Vec<u64> = group.iter().map(|c| cell_u64(c, "weight")).collect();
            let avg: Vec<f64> = (0..4)
                .map(|i| {
                    let vals: Vec<f64> = group.iter().map(|c| cell_vals(c, "vals")[i]).collect();
                    weighted_mean(&vals, &weights)
                })
                .collect();
            say!(
                out,
                "{:10} {:>9.2} {:>13.2} {:>13.2} {:>15.2}",
                label,
                avg[0],
                avg[1],
                avg[2],
                avg[3]
            );
            let mut j = Json::obj();
            for (name, v) in COLS.iter().zip(&avg) {
                j.set(&format!("ipc.{name}"), Json::F64(*v));
            }
            d.set(key, j);
        }
        Exp { human: out, json: d }
    })
}

/// Table 1: program reference behavior (without software support).
pub fn table1(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_table1, cx)
}

fn spec_table1<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("table1:{}", b.workload.name), move || {
            let p = profile(&b.plain, 32, PredictorConfig::default())?;
            let refs = p.refs();
            let human = format!(
                "{:10} {:>8} {:>9} {:>7} {:>7} | {:>7} {:>7} {:>8}",
                b.workload.name,
                p.insts,
                refs,
                pct(p.loads as f64 / refs.max(1) as f64),
                pct(p.stores as f64 / refs.max(1) as f64),
                pct(p.loads_by_class[0] as f64 / p.loads.max(1) as f64),
                pct(p.loads_by_class[1] as f64 / p.loads.max(1) as f64),
                pct(p.loads_by_class[2] as f64 / p.loads.max(1) as f64),
            );
            let mut j = row(b.workload.name);
            j.set("insts", Json::U64(p.insts));
            j.set("refs", Json::U64(refs));
            j.set("loads", Json::U64(p.loads));
            j.set("stores", Json::U64(p.stores));
            for class in RefClass::ALL {
                j.set(
                    &format!("load_fraction.{}", class.label()),
                    Json::F64(p.load_class_fraction(class)),
                );
            }
            Ok(cell(human, j))
        });
    }
    Spec::new("table1", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Table 1: Program Reference Behavior ==");
        say!(
            out,
            "{:10} {:>8} {:>9} {:>7} {:>7} | {:>7} {:>7} {:>8}",
            "program",
            "insts",
            "refs",
            "%loads",
            "%store",
            "%global",
            "%stack",
            "%general"
        );
        say!(out, "{}", rule(76));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("table1", rows) }
    })
}

/// Figure 3: cumulative load-offset size distributions for gcc, sc, doduc
/// and spice.
pub fn fig3(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_fig3, cx)
}

fn spec_fig3<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let names = ["gcc", "sc", "doduc", "spice"];
    let mut jobs = JobSet::new();
    // Class-major job order matches the printed table: one block per
    // reference class, one line per program within it.
    for class in RefClass::ALL {
        for name in names {
            let b = suite.iter().find(|b| b.workload.name == name).expect("known program");
            jobs.push(format!("fig3:{}:{name}", class.label()), move || {
                let p = profile(&b.plain, 32, PredictorConfig::default())?;
                let h = &p.load_offsets[class.index()];
                let mut line = String::new();
                put!(line, "{name:8}");
                for bits in 0..=15u32 {
                    put!(line, "{:>6.1}", h.cumulative_at(bits) * 100.0);
                }
                let total = h.total().max(1) as f64;
                put!(
                    line,
                    "{:>6.1} {:>6.1}",
                    (h.more as f64 / total) * 100.0,
                    h.neg_fraction() * 100.0
                );
                let mut j = row(name);
                j.set("class", Json::Str(class.label().to_string()));
                j.set(
                    "cumulative",
                    Json::Arr((0..=15u32).map(|b| Json::F64(h.cumulative_at(b))).collect()),
                );
                j.set("more", Json::U64(h.more));
                j.set("neg_fraction", Json::F64(h.neg_fraction()));
                Ok(cell(line, j))
            });
        }
    }
    Spec::new("fig3", jobs, move |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Figure 3: Load Offset Cumulative Distributions ==");
        let mut rows = Vec::new();
        for (ci, class) in RefClass::ALL.into_iter().enumerate() {
            say!(out, "\n-- {} pointer offsets (cumulative % by bits) --", class.label());
            put!(out, "{:8}", "bits");
            for bits in 0..=15 {
                put!(out, "{bits:>6}");
            }
            say!(out, "{:>6} {:>6}", ">15", "neg");
            for c in &mut cells[ci * names.len()..(ci + 1) * names.len()] {
                say!(out, "{}", take_human(c));
                rows.push(take_row(c));
            }
        }
        Exp { human: out, json: doc("fig3", rows) }
    })
}

/// Table 2: the benchmark programs and their inputs (our scaled analogue
/// of the paper's table).
pub fn table2(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_table2, cx)
}

fn spec_table2<'a>(_suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for wl in fac_workloads::suite() {
        jobs.push(format!("table2:{}", wl.name), move || {
            let human = format!(
                "{:10} {:>4}  {}",
                wl.name,
                if wl.fp { "fp" } else { "int" },
                wl.description
            );
            let mut j = row(wl.name);
            j.set("kind", Json::Str(if wl.fp { "fp" } else { "int" }.to_string()));
            j.set("description", Json::Str(wl.description.to_string()));
            Ok(cell(human, j))
        });
    }
    Spec::new("table2", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Table 2: Benchmark Programs and Inputs (scaled) ==");
        say!(out, "{:10} {:>4}  input / model", "program", "kind");
        say!(out, "{}", rule(86));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("table2", rows) }
    })
}

/// Table 3: program statistics without software support, including the
/// prediction failure rates for 16- and 32-byte blocks.
pub fn table3(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_table3, cx)
}

fn spec_table3<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("table3:{}", b.workload.name), move || {
            let r = run(&b.plain, MachineConfig::paper_baseline())?;
            let p16 = profile(&b.plain, 16, PredictorConfig::default())?;
            let p32 = profile(&b.plain, 32, PredictorConfig::default())?;
            let human = format!(
                "{:10} {:>9} {:>10} {:>9} {:>8} {:>6} {:>6} {:>8} | {:>6} {:>6} {:>6} {:>6}",
                b.workload.name,
                r.stats.insts,
                r.stats.cycles,
                r.stats.loads,
                r.stats.stores,
                pct(r.stats.icache.miss_ratio()),
                pct(r.stats.dcache.miss_ratio()),
                r.stats.mem_footprint / 1024,
                pct(p16.pred_loads.fail_rate_all()),
                pct(p16.pred_stores.fail_rate_all()),
                pct(p32.pred_loads.fail_rate_all()),
                pct(p32.pred_stores.fail_rate_all()),
            );
            let mut j = row(b.workload.name);
            j.set("insts", Json::U64(r.stats.insts));
            j.set("cycles", Json::U64(r.stats.cycles));
            j.set("loads", Json::U64(r.stats.loads));
            j.set("stores", Json::U64(r.stats.stores));
            j.set("icache_miss_ratio", Json::F64(r.stats.icache.miss_ratio()));
            j.set("dcache_miss_ratio", Json::F64(r.stats.dcache.miss_ratio()));
            j.set("mem_footprint", Json::U64(r.stats.mem_footprint));
            j.set("load_fail_rate.b16", Json::F64(p16.pred_loads.fail_rate_all()));
            j.set("store_fail_rate.b16", Json::F64(p16.pred_stores.fail_rate_all()));
            j.set("load_fail_rate.b32", Json::F64(p32.pred_loads.fail_rate_all()));
            j.set("store_fail_rate.b32", Json::F64(p32.pred_stores.fail_rate_all()));
            Ok(cell(human, j))
        });
    }
    Spec::new("table3", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Table 3: Program Statistics Without Software Support ==");
        say!(
            out,
            "{:10} {:>9} {:>10} {:>9} {:>8} {:>6} {:>6} {:>8} | {:>6} {:>6} {:>6} {:>6}",
            "program",
            "insts",
            "cycles",
            "loads",
            "stores",
            "i$m%",
            "d$m%",
            "mem(KB)",
            "L16%",
            "S16%",
            "L32%",
            "S32%"
        );
        say!(out, "{}", rule(110));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("table3", rows) }
    })
}

/// Table 4: program statistics with software support — percentage changes
/// against the unoptimized build, and failure rates All / No-R+R. The
/// JSON lane carries the same derived percent-changes as the human lane
/// (via [`pct_change_json`]: `null` where the table shows `"-"`), plus
/// the raw counts.
pub fn table4(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_table4, cx)
}

fn spec_table4<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("table4:{}", b.workload.name), move || {
            let base = run(&b.plain, MachineConfig::paper_baseline())?;
            let opt = run(&b.tuned, MachineConfig::paper_baseline())?;
            let p = profile(&b.tuned, 32, PredictorConfig::default())?;
            let human = format!(
                "{:10} {:>7} {:>7} {:>7} {:>7} {:>7.2} {:>7.2} {:>7} | {:>6} {:>6} {:>6} {:>6}",
                b.workload.name,
                pct_change(opt.stats.insts as f64, base.stats.insts as f64),
                pct_change(opt.stats.cycles as f64, base.stats.cycles as f64),
                pct_change(opt.stats.loads as f64, base.stats.loads as f64),
                pct_change(opt.stats.stores as f64, base.stats.stores as f64),
                (opt.stats.icache.miss_ratio() - base.stats.icache.miss_ratio()) * 100.0,
                (opt.stats.dcache.miss_ratio() - base.stats.dcache.miss_ratio()) * 100.0,
                pct_change(opt.stats.mem_footprint as f64, base.stats.mem_footprint as f64),
                pct(p.pred_loads.fail_rate_all()),
                pct(p.pred_loads.fail_rate_no_rr()),
                pct(p.pred_stores.fail_rate_all()),
                pct(p.pred_stores.fail_rate_no_rr()),
            );
            let mut j = row(b.workload.name);
            j.set("insts.base", Json::U64(base.stats.insts));
            j.set("insts.sw", Json::U64(opt.stats.insts));
            j.set("cycles.base", Json::U64(base.stats.cycles));
            j.set("cycles.sw", Json::U64(opt.stats.cycles));
            for (key, new, old) in [
                ("insts.pct_change", opt.stats.insts, base.stats.insts),
                ("cycles.pct_change", opt.stats.cycles, base.stats.cycles),
                ("loads.pct_change", opt.stats.loads, base.stats.loads),
                ("stores.pct_change", opt.stats.stores, base.stats.stores),
                ("mem_footprint.pct_change", opt.stats.mem_footprint, base.stats.mem_footprint),
            ] {
                j.set(key, pct_change_json(new as f64, old as f64));
            }
            j.set("load_fail_rate.all", Json::F64(p.pred_loads.fail_rate_all()));
            j.set("load_fail_rate.no_rr", Json::F64(p.pred_loads.fail_rate_no_rr()));
            j.set("store_fail_rate.all", Json::F64(p.pred_stores.fail_rate_all()));
            j.set("store_fail_rate.no_rr", Json::F64(p.pred_stores.fail_rate_no_rr()));
            Ok(cell(human, j))
        });
    }
    Spec::new("table4", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Table 4: Program Statistics With Software Support (32-byte blocks) ==");
        say!(
            out,
            "{:10} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} {:>6}",
            "program",
            "insts%",
            "cycle%",
            "loads%",
            "store%",
            "di$m",
            "dd$m",
            "mem%",
            "L-all",
            "L-nRR",
            "S-all",
            "S-nRR"
        );
        say!(out, "{}", rule(108));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("table4", rows) }
    })
}

/// Table 5: the baseline machine model.
pub fn table5(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_table5, cx)
}

fn spec_table5<'a>(_suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    jobs.push("table5", || {
        let c = MachineConfig::paper_baseline();
        let mut out = String::new();
        say!(out, "fetch width            {} instructions (any contiguous, one I-cache block)", c.fetch_width);
        say!(
            out,
            "i-cache                {}k direct-mapped, {}B blocks, {}-cycle miss",
            c.icache.size_bytes / 1024,
            c.icache.block_bytes,
            c.miss_latency
        );
        say!(out, "branch predictor       {}-entry direct-mapped BTB, 2-bit counters, {}-cycle mispredict", c.btb_entries, c.branch_mispredict_penalty);
        say!(out, "issue                  in-order, {} ops/cycle, out-of-order completion", c.issue_width);
        say!(
            out,
            "mem issue              up to {} loads or {} store per cycle",
            c.max_loads_per_cycle,
            c.max_stores_per_cycle
        );
        say!(
            out,
            "functional units       {} int ALU, {} ld/st, {} FP add, {} int mul/div, {} FP mul/div",
            c.fu.int_alu_units,
            c.fu.load_store_units,
            c.fu.fp_add_units,
            c.fu.int_mul_units,
            c.fu.fp_mul_units
        );
        say!(
            out,
            "latencies (tot/issue)  ALU {}/{}, ld/st 2/1, int mul {}/{}, int div {}/{}, FP add {}/{}, FP mul {}/{}, FP div {}/{}",
            c.fu.int_alu.latency, c.fu.int_alu.interval,
            c.fu.int_mul.latency, c.fu.int_mul.interval,
            c.fu.int_div.latency, c.fu.int_div.interval,
            c.fu.fp_add.latency, c.fu.fp_add.interval,
            c.fu.fp_mul.latency, c.fu.fp_mul.interval,
            c.fu.fp_div.latency, c.fu.fp_div.interval,
        );
        say!(
            out,
            "d-cache                {}k direct-mapped write-back write-allocate, {}B blocks, {}-cycle miss, {} read ports / {} write port, non-blocking",
            c.dcache.size_bytes / 1024,
            c.dcache.block_bytes,
            c.miss_latency,
            c.dcache_read_ports,
            c.dcache_write_ports
        );
        say!(out, "store buffer           {} entries, non-merging", c.store_buffer_entries);

        let mut j = Json::obj();
        j.set("experiment", Json::Str("table5".to_string()));
        j.set("fetch_width", Json::U64(c.fetch_width as u64));
        j.set("issue_width", Json::U64(c.issue_width as u64));
        j.set("icache_bytes", Json::U64(c.icache.size_bytes as u64));
        j.set("dcache_bytes", Json::U64(c.dcache.size_bytes as u64));
        j.set("block_bytes", Json::U64(c.dcache.block_bytes as u64));
        j.set("miss_latency", Json::U64(c.miss_latency));
        j.set("btb_entries", Json::U64(c.btb_entries as u64));
        j.set("store_buffer_entries", Json::U64(c.store_buffer_entries as u64));
        Ok(cell(out, j))
    });
    Spec::new("table5", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Table 5: Baseline Simulation Model ==");
        let c = &mut cells[0];
        out.push_str(&take_human(c));
        Exp { human: out, json: take_row(c) }
    })
}

/// Figure 6: speedups over the baseline, with and without software support,
/// for 16- and 32-byte blocks, with and without reg+reg speculation.
pub fn fig6(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_fig6, cx)
}

/// Figure 6's six (block size, sw support, reg+reg) combinations, in
/// column order. The (32, hw-only, reg+reg) column doubles as the
/// weighting base for the averages.
const FIG6_COMBOS: [(u32, bool, bool); 6] = [
    (16, false, true),
    (16, true, true),
    (32, false, true),
    (32, true, true),
    (32, false, false),
    (32, true, false),
];

fn spec_fig6<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    const COLS: [&str; 6] = ["hw16", "hwsw16", "hw32", "hwsw32", "hw32_no_rr", "hwsw32_no_rr"];
    let mut jobs = JobSet::new();
    // One job per (workload × combo) cell: the finest grid in the sweep,
    // which keeps every worker busy through the whole figure.
    for b in suite {
        for (block, tuned, rr) in FIG6_COMBOS {
            jobs.push(format!("fig6:{}:b{block}{}{}", b.workload.name, if tuned { ":sw" } else { "" }, if rr { "" } else { ":no_rr" }), move || {
                let base = run(&b.plain, MachineConfig::paper_baseline().with_block_size(block))?;
                let pred =
                    PredictorConfig { speculate_reg_reg: rr, ..PredictorConfig::default() };
                let cfg = MachineConfig::paper_baseline()
                    .with_block_size(block)
                    .with_fac_config(pred);
                let fac = run(if tuned { &b.tuned } else { &b.plain }, cfg)?;
                let mut c = Json::obj();
                c.set("speedup", Json::F64(base.stats.cycles as f64 / fac.stats.cycles as f64));
                c.set("base_cycles", Json::U64(base.stats.cycles));
                c.set("program", Json::Str(b.workload.name.to_string()));
                c.set("fp", Json::Bool(b.workload.fp));
                Ok(c)
            });
        }
    }
    Spec::new("fig6", jobs, |cells| {
        let mut out = String::new();
        say!(out, "\n== Figure 6: Speedups over baseline (same block size) ==");
        say!(
            out,
            "{:10} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9}",
            "program",
            "HW,16",
            "HW+SW,16",
            "HW,32",
            "HW+SW,32",
            "HW32,nRR",
            "HWSW32,nRR"
        );
        say!(out, "{}", rule(78));
        let mut rows = Vec::new();
        let mut stats: Vec<(bool, Vec<f64>, u64)> = Vec::new();
        for chunk in cells.chunks(FIG6_COMBOS.len()) {
            let name = cell_str(&chunk[0], "program");
            let vals: Vec<f64> = chunk.iter().map(|c| cell_f64(c, "speedup")).collect();
            // Weight by baseline cycles of the (32, hw, reg+reg) column.
            let weight = cell_u64(&chunk[2], "base_cycles");
            say!(
                out,
                "{:10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>9.3} {:>9.3}",
                name,
                vals[0],
                vals[1],
                vals[2],
                vals[3],
                vals[4],
                vals[5]
            );
            let mut j = row(name);
            for (col, v) in COLS.iter().zip(&vals) {
                j.set(&format!("speedup.{col}"), Json::F64(*v));
            }
            rows.push(j);
            stats.push((cell_bool(&chunk[0], "fp"), vals, weight));
        }
        say!(out, "{}", rule(78));
        let mut d = doc("fig6", rows);
        for (label, key, fp) in [("Int-Avg", "int_avg", false), ("FP-Avg", "fp_avg", true)] {
            let group: Vec<&(bool, Vec<f64>, u64)> =
                stats.iter().filter(|r| r.0 == fp).collect();
            let weights: Vec<u64> = group.iter().map(|r| r.2).collect();
            let avg: Vec<f64> = (0..6)
                .map(|i| {
                    let vals: Vec<f64> = group.iter().map(|r| r.1[i]).collect();
                    weighted_mean(&vals, &weights)
                })
                .collect();
            say!(
                out,
                "{:10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>9.3} {:>9.3}",
                label,
                avg[0],
                avg[1],
                avg[2],
                avg[3],
                avg[4],
                avg[5]
            );
            let mut j = Json::obj();
            for (col, v) in COLS.iter().zip(&avg) {
                j.set(&format!("speedup.{col}"), Json::F64(*v));
            }
            d.set(key, j);
        }
        Exp { human: out, json: d }
    })
}

/// Table 6: memory bandwidth overhead — failed speculative accesses as a
/// percentage of total references.
pub fn table6(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_table6, cx)
}

fn spec_table6<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    const COLS: [&str; 4] = ["hw_rr", "sw_rr", "hw_no_rr", "sw_no_rr"];
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("table6:{}", b.workload.name), move || {
            let mut vals = [0.0f64; 4];
            for (i, (tuned, rr)) in
                [(false, true), (true, true), (false, false), (true, false)].iter().enumerate()
            {
                let pred =
                    PredictorConfig { speculate_reg_reg: *rr, ..PredictorConfig::default() };
                let cfg = MachineConfig::paper_baseline().with_fac_config(pred);
                let r = run(if *tuned { &b.tuned } else { &b.plain }, cfg)?;
                vals[i] = r.stats.bandwidth_overhead();
            }
            let human = format!(
                "{:10} {:>9} {:>9} | {:>9} {:>9}",
                b.workload.name,
                pct(vals[0]),
                pct(vals[1]),
                pct(vals[2]),
                pct(vals[3])
            );
            let mut j = row(b.workload.name);
            for (name, v) in COLS.iter().zip(vals) {
                j.set(&format!("bandwidth_overhead.{name}"), Json::F64(v));
            }
            Ok(cell(human, j))
        });
    }
    Spec::new("table6", jobs, |mut cells| {
        let mut out = String::new();
        say!(
            out,
            "\n== Table 6: Memory Bandwidth Overhead (failed speculative accesses, % of refs) =="
        );
        say!(
            out,
            "{:10} {:>9} {:>9} | {:>9} {:>9}",
            "program",
            "HW,R+R",
            "SW,R+R",
            "HW,noRR",
            "SW,noRR"
        );
        say!(out, "{}", rule(56));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("table6", rows) }
    })
}

/// Ablation: OR vs XOR carry-free composition (paper footnote 1).
pub fn ablate_or_xor(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_or_xor, cx)
}

fn spec_ablate_or_xor<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("ablate_or_xor:{}", b.workload.name), move || {
            let or = profile(&b.plain, 32, PredictorConfig::default())?;
            let xor = profile(
                &b.plain,
                32,
                PredictorConfig { compose: IndexCompose::Xor, ..PredictorConfig::default() },
            )?;
            let human = format!(
                "{:10} {:>10} {:>10}",
                b.workload.name,
                pct(or.pred_loads.fail_rate_all()),
                pct(xor.pred_loads.fail_rate_all())
            );
            let mut j = row(b.workload.name);
            j.set("load_fail_rate.or", Json::F64(or.pred_loads.fail_rate_all()));
            j.set("load_fail_rate.xor", Json::F64(xor.pred_loads.fail_rate_all()));
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_or_xor", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Ablation: OR vs XOR index composition ==");
        say!(out, "{:10} {:>10} {:>10}", "program", "OR fail%", "XOR fail%");
        say!(out, "{}", rule(34));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_or_xor", rows) }
    })
}

/// Ablation: full tag adder vs carry-free tag (§3.1).
pub fn ablate_full_tag(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_full_tag, cx)
}

fn spec_ablate_full_tag<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("ablate_full_tag:{}", b.workload.name), move || {
            let full = profile(&b.tuned, 32, PredictorConfig::default())?;
            let ortag = profile(
                &b.tuned,
                32,
                PredictorConfig { full_tag_add: false, ..PredictorConfig::default() },
            )?;
            let human = format!(
                "{:10} {:>12} {:>12}",
                b.workload.name,
                pct(full.pred_loads.fail_rate_all()),
                pct(ortag.pred_loads.fail_rate_all())
            );
            let mut j = row(b.workload.name);
            j.set("load_fail_rate.full_tag", Json::F64(full.pred_loads.fail_rate_all()));
            j.set("load_fail_rate.or_tag", Json::F64(ortag.pred_loads.fail_rate_all()));
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_full_tag", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Ablation: full tag addition vs carry-free tag ==");
        say!(out, "{:10} {:>12} {:>12}", "program", "full-tag f%", "or-tag f%");
        say!(out, "{}", rule(38));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_full_tag", rows) }
    })
}

/// Ablation: store speculation on/off (§3.1's store discussion).
pub fn ablate_store_spec(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_store_spec, cx)
}

fn spec_ablate_store_spec<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("ablate_store_spec:{}", b.workload.name), move || {
            let base = run(&b.tuned, MachineConfig::paper_baseline())?;
            let on = run(&b.tuned, MachineConfig::paper_baseline().with_fac())?;
            let off_cfg = MachineConfig::paper_baseline().with_fac_config(PredictorConfig {
                speculate_stores: false,
                ..PredictorConfig::default()
            });
            let off = run(&b.tuned, off_cfg)?;
            let human = format!(
                "{:10} {:>10.3} {:>10.3}",
                b.workload.name,
                base.stats.cycles as f64 / on.stats.cycles as f64,
                base.stats.cycles as f64 / off.stats.cycles as f64
            );
            let mut j = row(b.workload.name);
            j.set("speedup.spec", Json::F64(base.stats.cycles as f64 / on.stats.cycles as f64));
            j.set(
                "speedup.no_spec",
                Json::F64(base.stats.cycles as f64 / off.stats.cycles as f64),
            );
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_store_spec", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Ablation: store speculation on/off (speedup over baseline) ==");
        say!(out, "{:10} {:>10} {:>10}", "program", "spec", "no-spec");
        say!(out, "{}", rule(34));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_store_spec", rows) }
    })
}

/// Related work (§6): fast address calculation vs a load target buffer
/// (Golden & Mudge). FAC predicts from the operands, the LTB from the load
/// PC — and needs a real table to do it.
pub fn compare_ltb(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_compare_ltb, cx)
}

fn spec_compare_ltb<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("compare_ltb:{}", b.workload.name), move || {
            let base = run(&b.tuned, MachineConfig::paper_baseline())?;
            let fac = run(&b.tuned, MachineConfig::paper_baseline().with_fac())?;
            let ltb_s = run(&b.tuned, MachineConfig::paper_baseline().with_ltb(512))?;
            let ltb_l = run(&b.tuned, MachineConfig::paper_baseline().with_ltb(4096))?;
            let s = ltb_l.stats.ltb.expect("ltb stats");
            let cover = s.predictions as f64 / (s.predictions + s.no_prediction).max(1) as f64;
            let vals = [
                base.stats.cycles as f64 / fac.stats.cycles as f64,
                base.stats.cycles as f64 / ltb_s.stats.cycles as f64,
                base.stats.cycles as f64 / ltb_l.stats.cycles as f64,
            ];
            let human = format!(
                "{:10} {:>8.3} {:>8.3} {:>8.3} {:>9.1} {:>10.1}",
                b.workload.name,
                vals[0],
                vals[1],
                vals[2],
                s.accuracy() * 100.0,
                cover * 100.0
            );
            let mut j = row(b.workload.name);
            j.set("speedup.fac", Json::F64(vals[0]));
            j.set("speedup.ltb512", Json::F64(vals[1]));
            j.set("speedup.ltb4096", Json::F64(vals[2]));
            j.set("ltb_accuracy", Json::F64(s.accuracy()));
            j.set("ltb_coverage", Json::F64(cover));
            let mut c = cell(human, j);
            c.set("fp", Json::Bool(b.workload.fp));
            c.set("weight", Json::U64(base.stats.cycles));
            c.set("vals", f64_arr(&vals));
            Ok(c)
        });
    }
    Spec::new("compare_ltb", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Related work: FAC vs load target buffer (speedup over baseline) ==");
        say!(
            out,
            "{:10} {:>8} {:>8} {:>8} {:>9} {:>10}",
            "program",
            "FAC",
            "LTB-512",
            "LTB-4096",
            "ltb-acc%",
            "ltb-cover%"
        );
        say!(out, "{}", rule(60));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        say!(out, "{}", rule(60));
        let mut d = doc("compare_ltb", rows);
        for (label, key, fp) in [("Int-Avg", "int_avg", false), ("FP-Avg", "fp_avg", true)] {
            let group: Vec<&Json> = cells.iter().filter(|c| cell_bool(c, "fp") == fp).collect();
            let weights: Vec<u64> = group.iter().map(|c| cell_u64(c, "weight")).collect();
            let avg: Vec<f64> = (0..3)
                .map(|i| {
                    weighted_mean(
                        &group.iter().map(|c| cell_vals(c, "vals")[i]).collect::<Vec<_>>(),
                        &weights,
                    )
                })
                .collect();
            say!(out, "{:10} {:>8.3} {:>8.3} {:>8.3}", label, avg[0], avg[1], avg[2]);
            let mut j = Json::obj();
            j.set("speedup.fac", Json::F64(avg[0]));
            j.set("speedup.ltb512", Json::F64(avg[1]));
            j.set("speedup.ltb4096", Json::F64(avg[2]));
            d.set(key, j);
        }
        Exp { human: out, json: d }
    })
}

/// Related work (§6): LUI vs AGI pipeline organizations (Golden & Mudge),
/// each compared with fast address calculation on the LUI pipe.
pub fn compare_pipelines(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_compare_pipelines, cx)
}

fn spec_compare_pipelines<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("compare_pipelines:{}", b.workload.name), move || {
            let lui = run(&b.plain, MachineConfig::paper_baseline())?;
            let agi = run(&b.plain, MachineConfig::paper_baseline().with_agi_pipeline())?;
            let fac = run(&b.plain, MachineConfig::paper_baseline().with_fac())?;
            let human = format!(
                "{:10} {:>10} {:>10} {:>10} {:>10.3}x",
                b.workload.name,
                lui.stats.cycles,
                agi.stats.cycles,
                fac.stats.cycles,
                lui.stats.cycles as f64 / agi.stats.cycles as f64
            );
            let mut j = row(b.workload.name);
            j.set("cycles.lui", Json::U64(lui.stats.cycles));
            j.set("cycles.agi", Json::U64(agi.stats.cycles));
            j.set("cycles.lui_fac", Json::U64(fac.stats.cycles));
            Ok(cell(human, j))
        });
    }
    Spec::new("compare_pipelines", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Related work: pipeline organizations (cycles, lower is better) ==");
        say!(
            out,
            "{:10} {:>10} {:>10} {:>10} {:>11}",
            "program",
            "LUI",
            "AGI",
            "LUI+FAC",
            "AGI-vs-LUI"
        );
        say!(out, "{}", rule(56));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("compare_pipelines", rows) }
    })
}

/// Ablation: data-cache associativity. Associativity shrinks the set index
/// (fewer bits to compose carry-free), shifting which accesses fail.
pub fn ablate_associativity(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_associativity, cx)
}

fn spec_ablate_associativity<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("ablate_associativity:{}", b.workload.name), move || {
            let mut rates = Vec::new();
            for ways in [1u32, 2, 4] {
                let fields = fac_core::AddrFields::for_set_associative(16 * 1024, 32, ways);
                let rep = fac_sim::profile_predictions(
                    &b.plain,
                    fields,
                    PredictorConfig::default(),
                    crate::MAX_INSTS,
                )?;
                rates.push(rep.pred_loads.fail_rate_all());
            }
            let human = format!(
                "{:10} {:>8} {:>8} {:>8}",
                b.workload.name,
                pct(rates[0]),
                pct(rates[1]),
                pct(rates[2])
            );
            let mut j = row(b.workload.name);
            for (ways, rate) in [1u32, 2, 4].iter().zip(&rates) {
                j.set(&format!("load_fail_rate.ways{ways}"), Json::F64(*rate));
            }
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_associativity", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Ablation: D-cache associativity (profile failure rates, 32B blocks) ==");
        say!(out, "{:10} {:>8} {:>8} {:>8}", "program", "1-way", "2-way", "4-way");
        say!(out, "{}", rule(40));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_associativity", rows) }
    })
}

/// Extension (§5.4 footnote 3): the large-array placement strategy the
/// paper proposes to eliminate array-index failures.
pub fn ablate_array_align(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_array_align, cx)
}

fn spec_ablate_array_align<'a>(_suite: &'a [Bench], scale: Scale) -> Spec<'a> {
    use fac_asm::SoftwareSupport;
    const COLS: [&str; 3] = ["none", "sw", "sw_arrays"];
    let mut jobs = JobSet::new();
    // This ablation rebuilds each workload under a third software policy,
    // so it works from the workload descriptors rather than the prebuilt
    // suite.
    for wl in fac_workloads::suite() {
        jobs.push(format!("ablate_array_align:{}", wl.name), move || {
            let mut rates = Vec::new();
            for sw in [
                SoftwareSupport::off(),
                SoftwareSupport::on(),
                SoftwareSupport::on_with_array_alignment(),
            ] {
                let p = wl.build(&sw, scale);
                let rep = profile(&p, 32, PredictorConfig::default())?;
                rates.push(rep.pred_loads.fail_rate_all());
            }
            let human = format!(
                "{:10} {:>8} {:>10} {:>10}",
                wl.name,
                pct(rates[0]),
                pct(rates[1]),
                pct(rates[2])
            );
            let mut j = row(wl.name);
            for (name, rate) in COLS.iter().zip(&rates) {
                j.set(&format!("load_fail_rate.{name}"), Json::F64(*rate));
            }
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_array_align", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Extension: §5.4 large-array alignment (load failure %, profile) ==");
        say!(out, "{:10} {:>8} {:>10} {:>10}", "program", "no sw", "sw (§4)", "sw+arrays");
        say!(out, "{}", rule(42));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_array_align", rows) }
    })
}

/// Ablation: miss-status-holding-register count (non-blocking depth).
pub fn ablate_mshr(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_mshr, cx)
}

fn spec_ablate_mshr<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("ablate_mshr:{}", b.workload.name), move || {
            let mut cycles = Vec::new();
            for mshrs in [1u32, 8, 32] {
                let mut cfg = MachineConfig::paper_baseline().with_fac();
                cfg.mshr_entries = mshrs;
                cycles.push(run(&b.tuned, cfg)?.stats.cycles);
            }
            let human = format!(
                "{:10} {:>10} {:>10} {:>10}",
                b.workload.name, cycles[0], cycles[1], cycles[2]
            );
            let mut j = row(b.workload.name);
            for (mshrs, c) in [1u32, 8, 32].iter().zip(&cycles) {
                j.set(&format!("cycles.mshr{mshrs}"), Json::U64(*c));
            }
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_mshr", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Ablation: MSHR count (cycles, FAC machine) ==");
        say!(out, "{:10} {:>10} {:>10} {:>10}", "program", "mshr=1", "mshr=8", "mshr=32");
        say!(out, "{}", rule(44));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_mshr", rows) }
    })
}

/// Ablation: store-buffer depth sensitivity.
pub fn ablate_store_buffer(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_ablate_store_buffer, cx)
}

fn spec_ablate_store_buffer<'a>(suite: &'a [Bench], _scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("ablate_store_buffer:{}", b.workload.name), move || {
            let mut cycles = Vec::new();
            for depth in [2usize, 4, 16, 64] {
                let mut cfg = MachineConfig::paper_baseline().with_fac();
                cfg.store_buffer_entries = depth;
                cycles.push(run(&b.tuned, cfg)?.stats.cycles);
            }
            let human = format!(
                "{:10} {:>10} {:>10} {:>10} {:>10}",
                b.workload.name, cycles[0], cycles[1], cycles[2], cycles[3]
            );
            let mut j = row(b.workload.name);
            for (depth, c) in [2usize, 4, 16, 64].iter().zip(&cycles) {
                j.set(&format!("cycles.sb{depth}"), Json::U64(*c));
            }
            Ok(cell(human, j))
        });
    }
    Spec::new("ablate_store_buffer", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Ablation: store buffer depth (cycles, FAC machine) ==");
        say!(
            out,
            "{:10} {:>10} {:>10} {:>10} {:>10}",
            "program",
            "sb=2",
            "sb=4",
            "sb=16",
            "sb=64"
        );
        say!(out, "{}", rule(56));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("ablate_store_buffer", rows) }
    })
}

/// Tiered execution: the fast functional tier differentially checked
/// against the detailed machine, plus the SMARTS-style sampled timing
/// estimate and its error against full detail (DESIGN.md §13).
pub fn tiered_run(cx: &Cx) -> Result<Exp, SimError> {
    single(spec_tiered_run, cx)
}

/// The sampling plan `tiered_run` uses at each scale. Windows must be
/// long enough that pipeline fill and drain do not dominate the measured
/// CPI (the cold-start bias of DESIGN.md §13); the Paper plan measures
/// ~10% of instructions in detail, the Smoke plan 50% because smoke
/// kernels only retire a few thousand instructions.
pub fn tiered_sample_spec(scale: Scale) -> fac_sim::tier::SampleSpec {
    match scale {
        Scale::Smoke => fac_sim::tier::SampleSpec { every: 4_000, window: 2_000 },
        _ => fac_sim::tier::SampleSpec { every: 100_000, window: 10_000 },
    }
}

fn spec_tiered_run<'a>(suite: &'a [Bench], scale: Scale) -> Spec<'a> {
    let mut jobs = JobSet::new();
    for b in suite {
        jobs.push(format!("tiered_run:{}", b.workload.name), move || {
            let cfg = MachineConfig::paper_baseline().with_fac();
            let full = run(&b.tuned, cfg)?;
            let fast = fac_sim::tier::run_fast(&cfg, &b.tuned, crate::MAX_INSTS)?;
            // The fast tier must reproduce the detailed machine's
            // architectural outcome exactly; a mismatch fails the cell
            // with a typed divergence, never a silently wrong row.
            if fast.insts != full.stats.insts
                || fast.final_state.regs != full.final_state.regs
                || fast.final_state.mem != full.final_state.mem
            {
                return Err(SimError::Divergence {
                    step: fast.insts.min(full.stats.insts),
                    pc: fast.final_state.pc,
                    expected: format!("detailed machine retired {} insts", full.stats.insts),
                    actual: format!("fast tier retired {} insts", fast.insts),
                });
            }
            let spec = tiered_sample_spec(scale);
            let s = fac_sim::tier::run_sampled(&cfg, &b.tuned, spec, crate::MAX_INSTS)?;
            let full_cpi = full.stats.cycles as f64 / full.stats.insts.max(1) as f64;
            let rel_err = (s.cpi - full_cpi) / full_cpi;
            let human = format!(
                "{:10} {:>9} {:>10} {:>7.3} {:>10} {:>7.3} {:>7.4} {:>7} {:>5}",
                b.workload.name,
                full.stats.insts,
                full.stats.cycles,
                full_cpi,
                s.est_cycles,
                s.cpi,
                s.cpi_stderr,
                pct_change(s.cpi, full_cpi),
                s.windows.len(),
            );
            let mut j = row(b.workload.name);
            j.set("insts", Json::U64(full.stats.insts));
            j.set("cycles.detail", Json::U64(full.stats.cycles));
            j.set("cpi.detail", Json::F64(full_cpi));
            j.set("est_cycles.sampled", Json::U64(s.est_cycles));
            j.set("cpi.sampled", Json::F64(s.cpi));
            j.set("cpi_stderr.sampled", Json::F64(s.cpi_stderr));
            j.set("cpi_rel_err", Json::F64(rel_err));
            j.set("windows", Json::U64(s.windows.len() as u64));
            j.set("measured_insts", Json::U64(s.measured_insts));
            j.set("sample_every", Json::U64(spec.every));
            j.set("sample_window", Json::U64(spec.window));
            j.set("fast_verified", Json::Bool(true));
            Ok(cell(human, j))
        });
    }
    Spec::new("tiered_run", jobs, |mut cells| {
        let mut out = String::new();
        say!(out, "\n== Tiered execution: sampled timing vs full detail (FAC machine) ==");
        say!(
            out,
            "{:10} {:>9} {:>10} {:>7} {:>10} {:>7} {:>7} {:>7} {:>5}",
            "program",
            "insts",
            "cycles",
            "CPI",
            "est.cyc",
            "sCPI",
            "stderr",
            "err%",
            "win"
        );
        say!(out, "{}", rule(80));
        let mut rows = Vec::new();
        for c in &mut cells {
            say!(out, "{}", take_human(c));
            rows.push(take_row(c));
        }
        Exp { human: out, json: doc("tiered_run", rows) }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rendering from job results in submission order is pure: the same
    /// cells give the same table and document whatever ran them.
    #[test]
    fn spec_render_is_pure_and_ordered() {
        let suite = build_suite(Scale::Smoke);
        let workers_variants = [1usize, 4];
        let mut outputs = Vec::new();
        for workers in workers_variants {
            let spec = spec_table2(&suite, Scale::Smoke);
            assert_eq!(spec.name, "table2");
            let exp = spec.run(&crate::Cx::simple(Scale::Smoke, workers)).unwrap();
            outputs.push((exp.human, exp.json.to_string()));
        }
        assert_eq!(outputs[0], outputs[1], "table2 must not depend on worker count");
        assert!(outputs[0].0.starts_with("\n== Table 2"));
    }

    /// The registry covers the full evaluation, in paper order.
    #[test]
    fn registry_names_are_in_paper_order() {
        let suite = build_suite(Scale::Smoke);
        let names: Vec<&str> = ALL.iter().map(|f| f(&suite, Scale::Smoke).name).collect();
        assert_eq!(
            names,
            [
                "fig2",
                "table1",
                "table2",
                "fig3",
                "table3",
                "table4",
                "table5",
                "fig6",
                "table6",
                "ablate_or_xor",
                "ablate_full_tag",
                "ablate_store_spec",
                "ablate_store_buffer",
                "ablate_mshr",
                "ablate_array_align",
                "ablate_associativity",
                "compare_ltb",
                "compare_pipelines",
                "tiered_run",
            ]
        );
    }
}
